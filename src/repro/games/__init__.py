"""Game-theory substrate.

Implements everything in Sections 1.1.2 and Appendix B: the donation-game
reward structure, the strategy types (AC, AD, GTFT and the general
memory-one/reactive families they live in), a Monte Carlo engine for repeated
donation games with the δ-restart rule and optional execution noise, the
exact expected payoffs ``f(S1, S2)`` via the absorbing-chain formula
``q₁(I − δM)^{-1}v`` (eq. 33), the paper's closed forms (eqs. 44–46) and
payoff derivatives (eqs. 47/57), and classical Nash/equilibrium utilities
that ground the distributional-equilibrium concept (Definition 1.1).
"""

from repro.games.base import Action, GAME_STATES, MatrixGame
from repro.games.best_response import (
    BestResponse,
    best_memory_one_deviation,
    best_memory_one_response,
    deterministic_memory_one_strategies,
    memory_one_de_gap,
)
from repro.games.closed_forms import (
    expected_payoff_closed_form,
    payoff_gtft_vs_ac,
    payoff_gtft_vs_ad,
    payoff_gtft_vs_gtft,
    payoff_derivative_in_g,
    payoff_second_derivative_in_g,
    proposition_2_2_conditions,
)
from repro.games.donation import DonationGame, PrisonersDilemma
from repro.games.expected_payoff import (
    expected_game_length,
    expected_payoff,
    expected_payoff_pair,
    joint_action_chain,
)
from repro.games.nash import (
    best_response_payoff,
    distributional_equilibrium_gap,
    is_epsilon_distributional_equilibrium,
    is_epsilon_nash,
    pure_nash_equilibria,
    symmetric_de_gap,
)
from repro.games.cooperation import (
    discounted_cooperation_rates,
    limit_cooperation_rates,
    mutual_cooperation_index,
)
from repro.games.moran import (
    MoranProcess,
    interior_equilibrium,
    one_third_rule_prediction,
)
from repro.games.repeated import GameRecord, RepeatedGameEngine, monte_carlo_payoff
from repro.games.tournament import Tournament, TournamentResult
from repro.games.zd import (
    average_payoff_pair,
    extortionate_zd,
    generous_zd,
    max_feasible_phi,
    zd_relation_residual,
    zd_strategy,
)
from repro.games.strategies import (
    MemoryOneStrategy,
    always_cooperate,
    always_defect,
    generous_tit_for_tat,
    grim_trigger,
    reactive,
    tit_for_tat,
    win_stay_lose_shift,
    with_execution_noise,
)

__all__ = [
    "Action",
    "GAME_STATES",
    "MatrixGame",
    "BestResponse",
    "best_memory_one_response",
    "best_memory_one_deviation",
    "deterministic_memory_one_strategies",
    "memory_one_de_gap",
    "DonationGame",
    "PrisonersDilemma",
    "MemoryOneStrategy",
    "reactive",
    "always_cooperate",
    "always_defect",
    "tit_for_tat",
    "generous_tit_for_tat",
    "grim_trigger",
    "win_stay_lose_shift",
    "with_execution_noise",
    "RepeatedGameEngine",
    "GameRecord",
    "monte_carlo_payoff",
    "expected_payoff",
    "expected_payoff_pair",
    "expected_game_length",
    "joint_action_chain",
    "expected_payoff_closed_form",
    "payoff_gtft_vs_ac",
    "payoff_gtft_vs_ad",
    "payoff_gtft_vs_gtft",
    "payoff_derivative_in_g",
    "payoff_second_derivative_in_g",
    "proposition_2_2_conditions",
    "best_response_payoff",
    "is_epsilon_nash",
    "pure_nash_equilibria",
    "distributional_equilibrium_gap",
    "symmetric_de_gap",
    "is_epsilon_distributional_equilibrium",
    "Tournament",
    "TournamentResult",
    "MoranProcess",
    "interior_equilibrium",
    "one_third_rule_prediction",
    "discounted_cooperation_rates",
    "limit_cooperation_rates",
    "mutual_cooperation_index",
    "zd_strategy",
    "extortionate_zd",
    "generous_zd",
    "max_feasible_phi",
    "average_payoff_pair",
    "zd_relation_residual",
]
