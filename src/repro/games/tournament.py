"""Axelrod-style round-robin tournaments of memory-one strategies.

The paper grounds its strategy choices in the repeated-prisoner's-dilemma
tournament tradition (Axelrod–Hamilton, Section 1.1.2); this module plays
that tradition out on the exact payoff machinery: every pair of entrants
meets in a repeated donation game, scores are exact expected payoffs (no
sampling noise unless Monte Carlo mode is requested), and the results
support Nash/ESS analysis over the entrant set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.games.expected_payoff import expected_payoff_pair
from repro.games.repeated import monte_carlo_payoff
from repro.games.strategies import MemoryOneStrategy
from repro.utils import as_generator, check_positive_int
from repro.utils.errors import InvalidParameterError


@dataclass
class TournamentResult:
    """Outcome of a round-robin tournament.

    Attributes
    ----------
    names:
        Entrant display names, aligned with matrix indices.
    payoff_matrix:
        ``M[i, j]`` = expected payoff of entrant ``i`` against entrant ``j``
        in one repeated game.
    scores:
        Mean payoff of each entrant across all opponents (including
        self-play when the tournament was configured that way).
    """

    names: list[str]
    payoff_matrix: np.ndarray
    scores: np.ndarray

    def ranking(self) -> list[tuple[str, float]]:
        """Entrants sorted by score, best first."""
        order = np.argsort(-self.scores)
        return [(self.names[i], float(self.scores[i])) for i in order]

    def winner(self) -> str:
        """Name of the top-scoring entrant."""
        return self.names[int(np.argmax(self.scores))]


class Tournament:
    """A round-robin tournament over a fixed set of memory-one strategies.

    Parameters
    ----------
    strategies:
        The entrants.
    game:
        Stage game (e.g. :class:`~repro.games.DonationGame`).
    delta:
        Continuation probability of the repeated game.
    names:
        Optional display names (defaults to each strategy's ``name``).
    include_self_play:
        Whether an entrant's score includes its game against itself
        (Axelrod's convention; default true).
    """

    def __init__(self, strategies, game, delta: float, names=None,
                 include_self_play: bool = True):
        self.strategies: list[MemoryOneStrategy] = list(strategies)
        if len(self.strategies) < 2:
            raise InvalidParameterError(
                "a tournament needs at least two entrants")
        self.game = game
        self.delta = float(delta)
        if not 0.0 <= self.delta < 1.0:
            raise InvalidParameterError(
                f"delta must lie in [0, 1), got {delta!r}")
        if names is None:
            names = [s.name for s in self.strategies]
        if len(names) != len(self.strategies):
            raise InvalidParameterError(
                f"{len(names)} names for {len(self.strategies)} entrants")
        self.names = [str(n) for n in names]
        self.include_self_play = bool(include_self_play)

    def payoff_matrix(self, method: str = "exact", n_games: int = 1000,
                      seed=None) -> np.ndarray:
        """Pairwise expected payoffs.

        ``method="exact"`` uses the resolvent formula; ``"monte_carlo"``
        plays ``n_games`` games per ordered pair.
        """
        n = len(self.strategies)
        matrix = np.empty((n, n))
        if method == "exact":
            for i in range(n):
                for j in range(i, n):
                    f_ij, f_ji = expected_payoff_pair(
                        self.strategies[i], self.strategies[j], self.game,
                        self.delta)
                    matrix[i, j] = f_ij
                    matrix[j, i] = f_ji
            return matrix
        if method == "monte_carlo":
            n_games = check_positive_int("n_games", n_games)
            rng = as_generator(seed)
            for i in range(n):
                for j in range(i, n):
                    f_ij, f_ji = monte_carlo_payoff(
                        self.strategies[i], self.strategies[j], self.game,
                        self.delta, n_games, seed=rng)
                    matrix[i, j] = f_ij
                    matrix[j, i] = f_ji
            return matrix
        raise InvalidParameterError(
            f"method must be 'exact' or 'monte_carlo', got {method!r}")

    def run(self, method: str = "exact", n_games: int = 1000,
            seed=None) -> TournamentResult:
        """Play the round robin and return scores and rankings."""
        matrix = self.payoff_matrix(method=method, n_games=n_games, seed=seed)
        if self.include_self_play:
            scores = matrix.mean(axis=1)
        else:
            mask = ~np.eye(len(self.strategies), dtype=bool)
            scores = np.array([matrix[i, mask[i]].mean()
                               for i in range(len(self.strategies))])
        return TournamentResult(names=list(self.names),
                                payoff_matrix=matrix, scores=scores)

    def best_responses_to(self, index: int,
                          matrix: np.ndarray | None = None) -> list[int]:
        """Entrant indices maximizing the payoff against entrant ``index``."""
        if matrix is None:
            matrix = self.payoff_matrix()
        column = matrix[:, int(index)]
        best = column.max()
        return [i for i in range(column.size) if column[i] >= best - 1e-12]

    def is_symmetric_nash(self, index: int,
                          matrix: np.ndarray | None = None) -> bool:
        """Whether ``(index, index)`` is a Nash profile within the entrant set."""
        if matrix is None:
            matrix = self.payoff_matrix()
        return int(index) in self.best_responses_to(index, matrix)

    def is_evolutionarily_stable(self, index: int,
                                 matrix: np.ndarray | None = None) -> bool:
        """Maynard Smith ESS test of entrant ``index`` within the entrant set.

        For every mutant ``j ≠ index``: either ``u(i,i) > u(j,i)``, or
        ``u(i,i) = u(j,i)`` and ``u(i,j) > u(j,j)``.
        """
        if matrix is None:
            matrix = self.payoff_matrix()
        i = int(index)
        for j in range(matrix.shape[0]):
            if j == i:
                continue
            resident = matrix[i, i]
            invader = matrix[j, i]
            if invader > resident + 1e-12:
                return False
            if abs(invader - resident) <= 1e-12 \
                    and matrix[j, j] >= matrix[i, j] - 1e-12:
                return False
        return True
