"""Legacy setup shim.

Allows ``pip install -e . --no-use-pep517 --no-build-isolation`` in offline
environments where the ``wheel`` package is unavailable; all real metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
