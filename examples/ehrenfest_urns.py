"""A tour of (k, a, b, m)-Ehrenfest processes (paper Definition 2.3).

* the classical two-urn process and its cutoff at (1/2) m log m,
* the weighted high-dimensional generalization: multinomial stationary law
  (Theorem 2.4), detailed balance, and the mixing-time case distinction
  between the k/|a-b| and k^2 branches (Theorem 2.5),
* the coordinate coupling behind the upper bound (Lemma A.8).

Run with:  python examples/ehrenfest_urns.py
"""

import math

import numpy as np

from repro import CoordinateCoupling, EhrenfestProcess, total_variation
from repro.analysis.tables import format_table, sparkline
from repro.markov.cutoff import cutoff_profile
from repro.markov.ehrenfest import classic_two_urn_process
from repro.markov.mixing import exact_mixing_time


def classic_urn():
    print("=" * 70)
    print("The classical Ehrenfest urn (k=2, a=b=1/2) and its cutoff")
    print("=" * 70)
    rows = []
    for m in (20, 40, 80):
        profile = cutoff_profile(classic_two_urn_process(m))
        stride = max(len(profile.curve) // 40, 1)
        rows.append([m, profile.mixing_time,
                     f"{profile.normalized_mixing_time(m):.3f}",
                     sparkline(profile.curve[::stride])])
    print(format_table(
        ["m (balls)", "t_mix(1/4)", "t_mix / (m log m)", "d(t) profile"],
        rows))
    print("(the normalized mixing time approaches the cutoff constant 1/2)")
    print()


def weighted_high_dimensional():
    print("=" * 70)
    print("Weighted high-dimensional processes (Theorem 2.4 stationarity)")
    print("=" * 70)
    rows = []
    for k, a, b, m in [(3, 0.3, 0.2, 8), (4, 0.4, 0.1, 6),
                       (5, 0.25, 0.25, 5)]:
        process = EhrenfestProcess(k=k, a=a, b=b, m=m)
        chain = process.exact_chain()
        pi_formula = process.stationary_distribution()
        pi_solved = chain.stationary_distribution()
        rows.append([f"({k}, {a}, {b}, {m})", process.n_states(),
                     f"{process.lam:.2f}",
                     f"{total_variation(pi_formula, pi_solved):.1e}",
                     chain.satisfies_detailed_balance(pi_formula,
                                                      atol=1e-10)])
    print(format_table(
        ["(k, a, b, m)", "|states|", "lambda=a/b",
         "TV(multinomial, solved)", "detailed balance"], rows))
    print()


def mixing_branches():
    print("=" * 70)
    print("Theorem 2.5's case distinction: k/|a-b| vs k^2 branches")
    print("=" * 70)
    rows = []
    for k in (2, 3, 4, 5):
        weak = EhrenfestProcess(k=k, a=0.3, b=0.25, m=8)
        strong = EhrenfestProcess(k=k, a=0.55, b=0.05, m=8)
        t_weak = exact_mixing_time(
            weak.exact_chain(), pi=weak.stationary_distribution(),
            t_max=500_000)
        t_strong = exact_mixing_time(
            strong.exact_chain(), pi=strong.stationary_distribution(),
            t_max=500_000)
        rows.append([k, t_weak, t_strong,
                     "weak" if t_weak < t_strong else "strong"])
    print(format_table(
        ["k", "t_mix weak bias (|a-b|=0.05)", "t_mix strong bias (0.5)",
         "faster"], rows))
    print("(weak bias grows ~k^2, strong bias ~k: the curves cross)")
    print()


def coupling_demo():
    print("=" * 70)
    print("The coordinate coupling behind the upper bound (Lemma A.8)")
    print("=" * 70)
    process = EhrenfestProcess(k=4, a=0.35, b=0.15, m=30)
    coupling = CoordinateCoupling(process)
    rng = np.random.default_rng(3)
    times = [coupling.run(seed=rng).coupling_time for _ in range(10)]
    bound = process.mixing_time_upper_bound()
    print(f"(k, a, b, m) = (4, 0.35, 0.15, 30); bound 2*Phi*log(4m) = "
          f"{bound:.0f}")
    print(f"10 coupling times from opposite corners: {sorted(times)}")
    within = sum(t <= bound for t in times)
    print(f"{within}/10 within the bound (Lemma A.8 promises >= 3/4 "
          "in probability)")


def main():
    classic_urn()
    weighted_high_dimensional()
    mixing_branches()
    coupling_demo()


if __name__ == "__main__":
    main()
