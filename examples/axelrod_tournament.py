"""An Axelrod-style donation-game tournament, with zero-determinant guests.

Plays the classic round robin — AC, AD, TFT, GTFT, GRIM, WSLS — extended
with a Press-Dyson extortioner and a Stewart-Plotkin generous ZD strategy,
using exact expected payoffs (no sampling noise).  Then verifies the ZD
strategies' signature property: a *linear relation between the two players'
average payoffs enforced against any opponent*.

Run with:  python examples/axelrod_tournament.py
"""

from repro import DonationGame
from repro.analysis.tables import format_table
from repro.games import (
    Tournament,
    always_cooperate,
    always_defect,
    average_payoff_pair,
    extortionate_zd,
    generous_tit_for_tat,
    generous_zd,
)
from repro.games.strategies import grim_trigger, tit_for_tat, win_stay_lose_shift
from repro.utils import InvalidParameterError


def main():
    game = DonationGame(b=4.0, c=1.0)
    delta = 0.95
    extort = extortionate_zd(game, chi=3.0)
    generous = generous_zd(game, chi=2.0)
    entrants = [always_cooperate(), always_defect(), tit_for_tat(),
                generous_tit_for_tat(0.3, 1.0), grim_trigger(),
                win_stay_lose_shift(), extort, generous]

    tournament = Tournament(entrants, game, delta=delta)
    result = tournament.run()

    print(f"Round-robin donation-game tournament "
          f"(b={game.b}, c={game.c}, delta={delta}, exact payoffs)")
    print()
    rows = [[rank + 1, name, f"{score:.3f}"]
            for rank, (name, score) in enumerate(result.ranking())]
    print(format_table(["rank", "strategy", "mean score"], rows))
    print()
    print(f"winner: {result.winner()} — reciprocity pays, as in Axelrod's "
          "original tournaments; unconditional defection and extortion "
          "sink once reciprocators dominate the field.")
    print()

    print("Zero-determinant relations (limit-of-means payoffs):")
    rows = []
    for entrant in entrants:
        if entrant.name in (extort.name, generous.name):
            continue
        try:
            u1, u2 = average_payoff_pair(extort, entrant, game)
            rows.append([f"Extort(3) vs {entrant.name}", f"{u1:.3f}",
                         f"{u2:.3f}",
                         f"u1 = 3.0 * u2 ({u1:.3f} = {3 * u2:.3f})"])
        except InvalidParameterError:
            rows.append([f"Extort(3) vs {entrant.name}", "-", "-",
                         "non-ergodic pair"])
    print(format_table(["pairing", "u1 (ZD)", "u2 (opponent)",
                        "enforced relation"], rows))
    print()
    print("The extortioner fixes u1 = 3*u2 against every opponent — but "
          "that caps its own payoff at 0 against AD, while generous "
          "strategies harvest full cooperation among themselves. This is "
          "the strategic landscape in which the paper's GTFT populations "
          "live.")


if __name__ == "__main__":
    main()
