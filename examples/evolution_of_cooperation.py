"""The evolution-of-cooperation story the paper's introduction motivates.

Three acts:

1. **Why generosity?**  Under execution noise, two Tit-for-Tat players
   spiral into retaliation while Generous TFT recovers — computed exactly
   with noisy-strategy resolvents (the Section 1.1.2 discussion).
2. **Generosity finds its level.**  The k-IGT dynamics tunes the GTFT
   sub-population's generosity: against many defectors it drops, against
   few it climbs toward g_max (Proposition 2.8's lambda dependence).
3. **Who earns what?**  Per-type expected payoffs at stationarity.

Run with:  python examples/evolution_of_cooperation.py
"""

import numpy as np

from repro import (
    DonationGame,
    GenerosityGrid,
    IGTSimulation,
    expected_payoff,
    generous_tit_for_tat,
    tit_for_tat,
)
from repro.analysis.tables import format_table, sparkline
from repro.core.equilibrium import RDSetting
from repro.core.population_igt import PopulationShares
from repro.core.theory import igt_mixing_upper_bound
from repro.games.strategies import with_execution_noise


def act_one_noise():
    print("=" * 70)
    print("Act 1 - why generosity? (exact noisy payoffs, delta = 0.9)")
    print("=" * 70)
    game = DonationGame(b=4.0, c=1.0)
    delta = 0.9
    cooperative = (game.b - game.c) / (1 - delta)
    rows = []
    for noise in (0.0, 0.01, 0.05, 0.10):
        tft = with_execution_noise(tit_for_tat(), noise)
        gtft = with_execution_noise(generous_tit_for_tat(0.3, 1.0), noise)
        f_tft = expected_payoff(tft, tft, game.reward_vector, delta)
        f_gtft = expected_payoff(gtft, gtft, game.reward_vector, delta)
        rows.append([f"{noise:.2f}", f"{f_tft:.2f}",
                     f"{f_tft / cooperative:.1%}", f"{f_gtft:.2f}",
                     f"{f_gtft / cooperative:.1%}"])
    print(format_table(
        ["noise", "TFT vs TFT", "% of full coop", "GTFT(0.3) vs GTFT(0.3)",
         "% of full coop"], rows))
    print(f"(full mutual cooperation = {cooperative:.1f})")
    print()


def act_two_tuning():
    print("=" * 70)
    print("Act 2 - the k-IGT dynamics tunes generosity to the environment")
    print("=" * 70)
    k, n = 6, 400
    grid = GenerosityGrid(k=k, g_max=0.6)
    rows = []
    for beta in (0.05, 0.2, 0.5, 0.8):
        alpha = (1 - beta) / 2
        shares = PopulationShares(alpha=alpha, beta=beta,
                                  gamma=1 - alpha - beta)
        sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=1,
                            initial_indices=k // 2)
        budget = int(2 * igt_mixing_upper_bound(k, shares, n))
        trajectory = sim.run(budget, observe_every=max(budget // 30, 1))
        generosity = (trajectory @ grid.values) / sim.n_gtft
        rows.append([f"{beta:.2f}", f"{shares.lam:.2f}",
                     sparkline(generosity), f"{generosity[-1]:.3f}"])
    print(format_table(
        ["beta (AD fraction)", "lambda", "avg generosity over time",
         "final"], rows))
    print("(small beta -> generosity climbs to g_max; large beta -> "
          "collapses toward 0, at rate O(1/k) per Prop 2.8)")
    print()


def act_three_payoffs():
    print("=" * 70)
    print("Act 3 - who earns what at stationarity?")
    print("=" * 70)
    setting = RDSetting(b=4.0, c=1.0, delta=0.7, s1=0.5)
    shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
    k, n = 4, 300
    grid = GenerosityGrid(k=k, g_max=0.6)
    sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=2,
                        setting=setting, track_payoffs=True)
    sim.run(int(2 * igt_mixing_upper_bound(k, shares, n)))
    means = sim.mean_payoff_per_interaction()
    from repro.core.igt import AgentType

    rows = []
    for agent_type, label in ((AgentType.AC, "Always-Cooperate"),
                              (AgentType.AD, "Always-Defect"),
                              (AgentType.GTFT, "GTFT (tuned)")):
        mask = sim.types == agent_type
        rows.append([label, int(mask.sum()),
                     f"{means[mask].mean():.3f}"])
    print(format_table(
        ["type", "agents", "mean payoff / interaction"], rows))
    print("(AD free-rides per interaction, but the GTFT block sustains "
          "cooperation among itself - the population-level story of the "
          "repeated donation game)")


def act_four_evolution():
    print("=" * 70)
    print("Act 4 - can cooperation *evolve*? (Moran process on repeated-game"
          " payoffs)")
    print("=" * 70)
    from repro.games.base import MatrixGame
    from repro.games.expected_payoff import expected_payoff_pair
    from repro.games.moran import MoranProcess
    from repro.games.strategies import always_defect

    game = DonationGame(b=4.0, c=1.0)
    gtft = generous_tit_for_tat(0.1, 1.0)
    ad = always_defect()
    n = 40
    rows = []
    for delta in (0.0, 0.3, 0.6, 0.9):
        u_gg, _ = expected_payoff_pair(gtft, gtft, game, delta)
        u_ga, u_ag = expected_payoff_pair(gtft, ad, game, delta)
        u_aa, _ = expected_payoff_pair(ad, ad, game, delta)
        # Strategy 0 = AD invading GTFT residents.
        matrix = MatrixGame([[u_aa, u_ag], [u_ga, u_gg]])
        process = MoranProcess(matrix, n=n, selection_intensity=0.05)
        rho = process.fixation_probability(1)
        rows.append([f"{delta:.1f}", f"{rho:.5f}", f"{1 / n:.5f}",
                     "AD invades" if rho > 1 / n else "GTFT resists"])
    print(format_table(
        ["delta", "fixation prob of one AD mutant", "neutral 1/n",
         "verdict"], rows))
    print("(longer games flip the selection gradient: once delta exceeds "
          "c/b, reciprocity is evolutionarily protected - the reason the "
          "paper's update rule points toward generosity at all)")


def main():
    act_one_noise()
    act_two_tuning()
    act_three_payoffs()
    act_four_evolution()


if __name__ == "__main__":
    main()
