"""Quickstart: simulate the k-IGT dynamics and check it against theory.

Runs the paper's headline object — incremental generosity tuning on an
(alpha, beta, gamma) population playing repeated donation games — and
compares the simulated stationary behavior with the closed-form predictions
of Theorems 2.7/2.9 and Proposition 2.8.

Run with:  python examples/quickstart.py
"""

from repro import (
    GenerosityGrid,
    IGTSimulation,
    average_stationary_generosity,
    de_gap,
    default_theorem_2_9_setting,
    igt_mixing_upper_bound,
    igt_stationary_weights,
    mean_stationary_mu,
)
from repro.analysis.tables import format_table


def main():
    # A game/population setting satisfying every Theorem 2.9 condition.
    setting, shares, g_max = default_theorem_2_9_setting()
    k, n = 6, 600
    grid = GenerosityGrid(k=k, g_max=g_max)

    print(f"Population: n={n}, (alpha, beta, gamma) = "
          f"({shares.alpha}, {shares.beta}, {shares.gamma})")
    print(f"Game: donation b={setting.b}, c={setting.c}, "
          f"delta={setting.delta}, s1={setting.s1}; grid k={k}, "
          f"g_max={g_max}")
    print()

    # Run past the paper's mixing bound (Theorem 2.7), then time-average.
    sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=0)
    burn_in = int(2 * igt_mixing_upper_bound(k, shares, n))
    print(f"Burning in for {burn_in} interactions "
          f"(2x the Theorem 2.7 coupling bound)...")
    sim.run(burn_in)

    snapshots = 200
    mu_sum = sim.empirical_mu()
    generosity_sum = sim.average_generosity()
    for _ in range(snapshots):
        sim.run(n // 2)
        mu_sum = mu_sum + sim.empirical_mu()
        generosity_sum += sim.average_generosity()
    mu_avg = mu_sum / (snapshots + 1)
    generosity_avg = generosity_sum / (snapshots + 1)

    # Compare against the closed forms.
    weights = igt_stationary_weights(k, shares.beta)
    rows = [[f"g_{j + 1} = {grid.value(j):.2f}",
             f"{weights[j]:.4f}", f"{mu_avg[j]:.4f}"]
            for j in range(k)]
    print()
    print(format_table(
        ["strategy", "theory p_j (Thm 2.7)", "simulated fraction"], rows))

    print()
    print(f"average generosity: simulated {generosity_avg:.4f}  vs  "
          f"Prop 2.8 closed form "
          f"{average_stationary_generosity(k, shares.beta, g_max):.4f}")

    mu_theory = mean_stationary_mu(k, beta=shares.beta)
    print(f"DE gap Psi (Thm 2.9): exact {de_gap(mu_theory, grid, setting, shares):.5f}, "
          f"from simulation {de_gap(mu_avg, grid, setting, shares):.5f} "
          f"(an epsilon-approximate distributional equilibrium with "
          f"epsilon = O(1/k))")


if __name__ == "__main__":
    main()
