"""The classic population protocols the paper builds on (Section 1.3).

Runs the substrate protocols — approximate/exact majority, leader election,
rumor spreading, and load averaging — under the same uniform random
scheduler the k-IGT dynamics uses, reporting convergence times against
their known expectations.

Run with:  python examples/classic_protocols.py
"""

import numpy as np

from repro import Simulator
from repro.analysis.tables import format_table
from repro.population.protocols import (
    AveragingProtocol,
    FourStateExactMajority,
    LeaderElectionProtocol,
    RumorSpreadingProtocol,
    ThreeStateApproximateMajority,
)


def main():
    rng = np.random.default_rng(0)
    n = 200
    rows = []

    protocol = ThreeStateApproximateMajority()
    sim = Simulator(protocol, protocol.initial_states(n, int(0.7 * n)),
                    seed=rng)
    result = sim.run(200 * n, stop_when=protocol.has_consensus,
                     check_stop_every=50)
    rows.append(["3-state approximate majority (70/30 split)",
                 result.steps, f"O(n log n) ~ {n * np.log(n):.0f}",
                 f"winner: opinion {protocol.winner(result.counts)}"])

    protocol = FourStateExactMajority()
    sim = Simulator(protocol, protocol.initial_states(n, n // 2 + 2),
                    seed=rng)
    result = sim.run(2000 * n, stop_when=protocol.has_converged,
                     check_stop_every=100)
    outputs = set(sim.outputs())
    rows.append(["4-state exact majority (margin 4)",
                 result.steps, "O(n^2 / margin)",
                 f"unanimous output: {outputs}"])

    protocol = LeaderElectionProtocol()
    sim = Simulator(protocol, protocol.initial_states(n), seed=rng)
    result = sim.run(100 * n * n, stop_when=protocol.has_unique_leader,
                     check_stop_every=100)
    rows.append(["leader election (all leaders start)",
                 result.steps,
                 f"(n-1)^2 = {protocol.expected_interactions(n):.0f}",
                 f"{result.counts[0]} leader remains"])

    protocol = RumorSpreadingProtocol()
    sim = Simulator(protocol, protocol.initial_states(n), seed=rng)
    result = sim.run(400 * n, stop_when=protocol.all_informed,
                     check_stop_every=10)
    rows.append(["rumor spreading (1 seed)",
                 result.steps,
                 f"~2n ln n = {protocol.expected_interactions(n):.0f}",
                 "all informed"])

    protocol = AveragingProtocol(max_value=64)
    loads = np.zeros(n, dtype=np.int64)
    loads[: n // 4] = 64
    sim = Simulator(protocol, loads, seed=rng)
    total = protocol.total_load(sim.counts)
    result = sim.run(2000 * n, stop_when=protocol.is_balanced,
                     check_stop_every=100)
    rows.append(["integer averaging (quarter loaded at 64)",
                 result.steps, "O(n log n) whp",
                 f"sum conserved: {protocol.total_load(result.counts)} "
                 f"== {total}"])

    print(format_table(
        ["protocol", "interactions to converge", "expectation", "outcome"],
        rows,
        title=f"Classic population protocols, n = {n}, uniform random "
              "scheduler"))


if __name__ == "__main__":
    main()
