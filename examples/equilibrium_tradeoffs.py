"""The paper's headline trade-off: time vs space vs approximation.

For growing grid size k, a GTFT agent needs linearly more local states and
the dynamics needs linearly more interactions to mix (Theorem 2.7), but the
resulting distributional equilibrium tightens as epsilon = O(1/k)
(Theorem 2.9).  This script regenerates that trade-off with a measured
convergence column from the paper's own coordinate coupling, and contrasts
the effective regime with a regime that passes the paper's literal
conditions but stalls (see DESIGN.md section 5).

Run with:  python examples/equilibrium_tradeoffs.py
"""

from repro import GenerosityGrid, de_gap, mean_stationary_mu, tradeoff_table
from repro.analysis.tables import format_table
from repro.core.regimes import (
    default_theorem_2_9_setting,
    literal_only_theorem_2_9_setting,
    payoff_increase_margin,
)


def main():
    setting, shares, g_max = default_theorem_2_9_setting()
    print("Effective regime (deviation payoff strictly increasing, "
          f"margin = {payoff_increase_margin(setting, shares, g_max):+.2f}):")
    rows = []
    for row in tradeoff_table([2, 4, 8, 16], setting, shares, g_max,
                              n=300, measure=True, coupling_samples=6,
                              seed=0):
        rows.append([row.k, row.states_per_agent,
                     f"{row.mixing_lower:.0f}", f"{row.measured_mixing:.0f}",
                     f"{row.mixing_upper:.0f}", f"{row.psi:.5f}",
                     f"{row.psi_times_k:.3f}"])
    print(format_table(
        ["k", "states/agent", "Omega(kn) lower", "measured (coupling)",
         "O(kn log n) upper", "Psi (epsilon)", "Psi * k"], rows))
    print()
    print("Larger k: linearly more memory and interactions, but Psi*k stays")
    print("bounded - the epsilon = O(1/k) guarantee of Theorem 2.9.")
    print()

    lit_setting, lit_shares, lit_g_max = literal_only_theorem_2_9_setting()
    print("Literal-only regime (passes the paper's printed conditions, "
          f"margin = {payoff_increase_margin(lit_setting, lit_shares, lit_g_max):+.2f}):")
    rows = []
    for k in (2, 4, 8, 16, 32):
        grid = GenerosityGrid(k=k, g_max=lit_g_max)
        mu = mean_stationary_mu(k, beta=lit_shares.beta)
        psi = de_gap(mu, grid, lit_setting, lit_shares)
        rows.append([k, f"{psi:.5f}", f"{psi * k:.3f}"])
    print(format_table(["k", "Psi", "Psi * k"], rows))
    print()
    print("Here the best response is zero generosity and Psi stalls at a")
    print("constant - the reproduction finding documented in DESIGN.md "
          "section 5.")


if __name__ == "__main__":
    main()
