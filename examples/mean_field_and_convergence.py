"""Mean-field flow and empirical convergence of the k-IGT dynamics.

Shows the three levels of description agreeing on one instance:

1. the *agent-level* simulation (the paper's actual protocol),
2. the *exact mean recursion* E[z_{t+1}] = (I + A/m) E[z_t] (possible
   because the count-chain rates are linear — eq. 5),
3. the *continuous mean-field flow* dx/dtau = A x with the Theorem 2.4
   weights as its fixed point,

then measures the empirical distance-to-stationarity curve with the
replica machinery and places its crossing against the paper's two-sided
mixing bounds (Theorem 2.7).

Run with:  python examples/mean_field_and_convergence.py
"""

import numpy as np

from repro.analysis.tables import format_table, sparkline
from repro.core.convergence import igt_convergence_curve
from repro.core.igt import GenerosityGrid
from repro.core.mean_field import igt_mean_field, mean_field_stationary
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.core.theory import igt_mixing_lower_bound, igt_mixing_upper_bound
from repro.utils import spawn_generators


def main():
    shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
    grid = GenerosityGrid(k=3, g_max=0.6)
    n = 120
    replicas = 60
    checkpoints = [100, 400, 1200, 4000]

    A, m = igt_mean_field(shares, grid, n, exact=True)
    m = int(m)
    step = np.eye(grid.k) + A / m
    z0 = np.array([float(m), 0.0, 0.0])

    print(f"k-IGT, n={n}, (alpha,beta,gamma)=(0.3,0.2,0.5), k=3: "
          f"m={m} GTFT agents, everyone starting at g_1 = 0")
    print()

    sums = {t: np.zeros(grid.k) for t in checkpoints}
    for child in spawn_generators(0, replicas):
        sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=child,
                            initial_indices=0)
        previous = 0
        for t in checkpoints:
            sim.run(t - previous)
            sums[t] += sim.counts
            previous = t

    rows = []
    for t in checkpoints:
        mean_field = np.linalg.matrix_power(step, t) @ z0
        agent_mean = sums[t] / replicas
        rows.append([t, np.round(mean_field, 2).tolist(),
                     np.round(agent_mean, 2).tolist()])
    stationary = m * mean_field_stationary(grid.k, A[1, 0], A[0, 1])
    rows.append(["stationary", np.round(stationary, 2).tolist(),
                 "(fixed point = Theorem 2.4 weights)"])
    print(format_table(
        ["t (interactions)", "mean-field E[z_t]",
         f"agent-level mean ({replicas} replicas)"], rows,
        title="Level 1 vs level 2 vs level 3: the linear mean flow"))
    print()

    lower = igt_mixing_lower_bound(grid.k, shares, n)
    upper = igt_mixing_upper_bound(grid.k, shares, n)
    times = np.unique(np.geomspace(max(lower / 2, 1), 2 * upper,
                                   10).astype(int))
    curve = igt_convergence_curve(n, shares, grid, times,
                                  replicas=replicas, seed=1)
    print("Empirical distance to stationarity (worst coordinate marginal "
          "TV):")
    rows = [[int(t), f"{d:.3f}"] for t, d in zip(curve.times,
                                                 curve.distances)]
    print(format_table(["t", "distance"], rows))
    print(f"profile: {sparkline(curve.distances)}")
    crossing = curve.crossing_time(0.25)
    print(f"first crossing below 1/4: t ~ {crossing}")
    print(f"paper bounds (Theorem 2.7): lower {lower:.0f} (diameter), "
          f"upper {upper:.0f} (coupling)")
    print("(the empirical marginal crossing is lower-bound flavored - "
          "projections contract TV - and indeed lands inside the bracket)")


if __name__ == "__main__":
    main()
