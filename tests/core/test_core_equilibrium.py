"""Tests for the distributional-equilibrium machinery (Definition 1.2)."""

import numpy as np
import pytest

from repro.core.equilibrium import (
    RDSetting,
    continuous_de_gap,
    de_gap,
    expected_payoff_vs_mixture,
    grid_payoffs_vs_mixture,
    gtft_payoff_matrix,
    induced_full_distribution,
    is_epsilon_de,
    mean_stationary_mu,
    payoff_table,
)
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import PopulationShares
from repro.games.closed_forms import (
    payoff_gtft_vs_ac,
    payoff_gtft_vs_ad,
    payoff_gtft_vs_gtft,
)
from repro.games.expected_payoff import expected_payoff
from repro.games.strategies import always_cooperate, always_defect
from repro.utils import InvalidParameterError


@pytest.fixture
def setting():
    return RDSetting(b=4.0, c=1.0, delta=0.7, s1=0.5)


@pytest.fixture
def shares():
    return PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)


@pytest.fixture
def grid():
    return GenerosityGrid(k=4, g_max=0.6)


class TestRDSetting:
    def test_game_parameters(self, setting):
        assert setting.game.b == 4.0
        assert setting.expected_rounds == pytest.approx(1 / 0.3)

    def test_rejects_bad_rewards(self):
        with pytest.raises(InvalidParameterError):
            RDSetting(b=1.0, c=2.0, delta=0.5, s1=0.5)

    def test_rejects_delta_one(self):
        with pytest.raises(InvalidParameterError):
            RDSetting(b=4.0, c=1.0, delta=1.0, s1=0.5)


class TestGtftPayoffMatrix:
    def test_matches_closed_form(self, setting, grid):
        F = gtft_payoff_matrix(grid, setting)
        for i, g in enumerate(grid.values):
            for j, gp in enumerate(grid.values):
                assert F[i, j] == pytest.approx(
                    payoff_gtft_vs_gtft(float(g), float(gp), setting.b,
                                        setting.c, setting.delta,
                                        setting.s1))

    def test_increasing_in_first_argument(self, setting, grid):
        F = gtft_payoff_matrix(grid, setting)
        assert (np.diff(F, axis=0) > 0).all()


class TestPayoffTable:
    def test_shape(self, setting, grid):
        table = payoff_table(grid, setting)
        assert table.shape == (6, 6)

    def test_gtft_block_matches_closed_form(self, setting, grid):
        table = payoff_table(grid, setting)
        assert np.allclose(table[:4, :4], gtft_payoff_matrix(grid, setting))

    def test_gtft_vs_ac_column(self, setting, grid):
        table = payoff_table(grid, setting)
        for i, g in enumerate(grid.values):
            assert table[i, 4] == pytest.approx(
                payoff_gtft_vs_ac(float(g), setting.b, setting.c,
                                  setting.delta, setting.s1))

    def test_gtft_vs_ad_column(self, setting, grid):
        table = payoff_table(grid, setting)
        for i, g in enumerate(grid.values):
            assert table[i, 5] == pytest.approx(
                payoff_gtft_vs_ad(float(g), setting.b, setting.c,
                                  setting.delta, setting.s1))

    def test_ac_ad_corner(self, setting, grid):
        table = payoff_table(grid, setting)
        v = setting.game.reward_vector
        assert table[4, 5] == pytest.approx(
            expected_payoff(always_cooperate(), always_defect(), v,
                            setting.delta))
        assert table[5, 5] == pytest.approx(0.0)


class TestInducedDistribution:
    def test_composition(self, shares):
        mu = [0.25, 0.25, 0.5]
        full = induced_full_distribution(mu, shares)
        assert full.shape == (5,)
        assert np.allclose(full[:3], [0.125, 0.125, 0.25])
        assert full[3] == shares.alpha
        assert full[4] == shares.beta

    def test_sums_to_one(self, shares):
        full = induced_full_distribution([0.1, 0.2, 0.7], shares)
        assert full.sum() == pytest.approx(1.0)

    def test_matches_paper_eq_3(self, shares):
        """mu_hat(i) = gamma * mu(i) for grid values."""
        mu = np.array([0.4, 0.6])
        full = induced_full_distribution(mu, shares)
        assert np.allclose(full[:2], shares.gamma * mu)


class TestPayoffVsMixture:
    def test_decomposition(self, setting, shares, grid):
        mu = np.array([0.1, 0.2, 0.3, 0.4])
        g = 0.35
        expected = (shares.alpha * payoff_gtft_vs_ac(
            g, setting.b, setting.c, setting.delta, setting.s1)
            + shares.beta * payoff_gtft_vs_ad(
                g, setting.b, setting.c, setting.delta, setting.s1)
            + shares.gamma * sum(
                mu[j] * payoff_gtft_vs_gtft(g, float(grid.values[j]),
                                            setting.b, setting.c,
                                            setting.delta, setting.s1)
                for j in range(4)))
        assert expected_payoff_vs_mixture(g, mu, grid, setting, shares) == \
            pytest.approx(expected)

    def test_grid_vector_consistent_with_scalar(self, setting, shares, grid):
        mu = np.array([0.25, 0.25, 0.25, 0.25])
        vector = grid_payoffs_vs_mixture(mu, grid, setting, shares)
        for i, g in enumerate(grid.values):
            assert vector[i] == pytest.approx(
                expected_payoff_vs_mixture(float(g), mu, grid, setting,
                                           shares))

    def test_matches_full_distribution_dot_table(self, setting, shares, grid):
        """E_{S~mu_hat}[f(g_i, S)] = (payoff_table row_i) . mu_hat."""
        mu = np.array([0.4, 0.3, 0.2, 0.1])
        table = payoff_table(grid, setting)
        full = induced_full_distribution(mu, shares)
        vector = grid_payoffs_vs_mixture(mu, grid, setting, shares)
        assert np.allclose(vector, table[:4] @ full)

    def test_wrong_mu_size(self, setting, shares, grid):
        with pytest.raises(InvalidParameterError):
            expected_payoff_vs_mixture(0.3, [0.5, 0.5], grid, setting, shares)


class TestDeGap:
    def test_nonnegative(self, setting, shares, grid):
        for mu in ([0.25] * 4, [1.0, 0, 0, 0], [0, 0, 0, 1.0]):
            assert de_gap(mu, grid, setting, shares) >= -1e-12

    def test_zero_for_point_mass_at_best_response(self, setting, shares,
                                                  grid):
        """A point mass on the best response against itself has gap zero iff
        it is a fixed point; verify via explicit maximization."""
        payoffs = grid_payoffs_vs_mixture([0, 0, 0, 1.0], grid, setting,
                                          shares)
        best = int(np.argmax(payoffs))
        point = np.zeros(4)
        point[best] = 1.0
        gap = de_gap(point, grid, setting, shares)
        payoffs_at_point = grid_payoffs_vs_mixture(point, grid, setting,
                                                   shares)
        assert gap == pytest.approx(payoffs_at_point.max()
                                    - payoffs_at_point[best])

    def test_is_epsilon_de_consistency(self, setting, shares, grid):
        mu = mean_stationary_mu(4, beta=shares.beta)
        gap = de_gap(mu, grid, setting, shares)
        assert is_epsilon_de(mu, gap + 1e-9, grid, setting, shares)
        assert not is_epsilon_de(mu, gap - 1e-6, grid, setting, shares) \
            or gap < 1e-6

    def test_continuous_gap_dominates_grid_gap(self, setting, shares, grid):
        mu = mean_stationary_mu(4, beta=shares.beta)
        assert continuous_de_gap(mu, grid, setting, shares) >= \
            de_gap(mu, grid, setting, shares) - 1e-9

    def test_theorem_2_9_decay_in_effective_regime(self, canonical):
        setting, shares, g_max = canonical
        gaps = []
        for k in (2, 4, 8, 16):
            grid = GenerosityGrid(k=k, g_max=g_max)
            mu = mean_stationary_mu(k, beta=shares.beta)
            gaps.append(de_gap(mu, grid, setting, shares))
        assert all(gaps[i] > gaps[i + 1] for i in range(3))
        assert max(g * k for g, k in zip(gaps, (2, 4, 8, 16))) < 1.0


class TestMeanStationaryMu:
    def test_equals_weights(self):
        mu = mean_stationary_mu(5, beta=0.2)
        from repro.core.stationary import igt_stationary_weights
        assert np.allclose(mu, igt_stationary_weights(5, 0.2))

    def test_lam_parameter(self):
        assert np.allclose(mean_stationary_mu(3, lam=4.0),
                           mean_stationary_mu(3, beta=0.2))

    def test_requires_exactly_one_parameter(self):
        with pytest.raises(InvalidParameterError):
            mean_stationary_mu(3)
        with pytest.raises(InvalidParameterError):
            mean_stationary_mu(3, beta=0.2, lam=4.0)

    def test_rejects_boundary_beta(self):
        with pytest.raises(InvalidParameterError):
            mean_stationary_mu(3, beta=0.0)

    def test_rejects_nonpositive_lam(self):
        with pytest.raises(InvalidParameterError):
            mean_stationary_mu(3, lam=-1.0)
