"""Tests for the generosity grid and the k-IGT update rule."""

import numpy as np
import pytest

from repro.core.igt import AgentType, GenerosityGrid, IGTRule
from repro.utils import InvalidParameterError


class TestGenerosityGrid:
    def test_values_equidistant(self):
        grid = GenerosityGrid(k=5, g_max=0.8)
        assert np.allclose(grid.values, [0.0, 0.2, 0.4, 0.6, 0.8])

    def test_endpoints(self):
        grid = GenerosityGrid(k=7, g_max=0.63)
        assert grid.value(0) == 0.0
        assert grid.value(6) == pytest.approx(0.63)

    def test_spacing(self):
        assert GenerosityGrid(k=4, g_max=0.6).spacing == pytest.approx(0.2)

    def test_k_two_minimal(self):
        grid = GenerosityGrid(k=2, g_max=1.0)
        assert np.allclose(grid.values, [0.0, 1.0])

    def test_rejects_k_one(self):
        with pytest.raises(InvalidParameterError):
            GenerosityGrid(k=1, g_max=0.5)

    def test_rejects_zero_g_max(self):
        with pytest.raises(InvalidParameterError):
            GenerosityGrid(k=3, g_max=0.0)

    def test_rejects_g_max_above_one(self):
        with pytest.raises(InvalidParameterError):
            GenerosityGrid(k=3, g_max=1.5)

    def test_value_out_of_range(self):
        grid = GenerosityGrid(k=3, g_max=0.5)
        with pytest.raises(InvalidParameterError):
            grid.value(3)

    def test_nearest_index_roundtrip(self):
        grid = GenerosityGrid(k=5, g_max=0.8)
        for j in range(5):
            assert grid.nearest_index(grid.value(j)) == j

    def test_nearest_index_above_max(self):
        grid = GenerosityGrid(k=5, g_max=0.8)
        assert grid.nearest_index(0.95) == 4

    def test_matches_paper_definition(self):
        """g_j = g_max * (j-1)/(k-1) for 1-based j."""
        grid = GenerosityGrid(k=6, g_max=1.0)
        for j in range(1, 7):
            assert grid.value(j - 1) == pytest.approx((j - 1) / 5)


class TestIGTRule:
    @pytest.fixture
    def rule(self):
        return IGTRule(GenerosityGrid(k=4, g_max=0.6))

    def test_increment_on_ac(self, rule):
        assert rule.next_index(1, AgentType.AC) == 2

    def test_increment_on_gtft(self, rule):
        assert rule.next_index(1, AgentType.GTFT) == 2

    def test_decrement_on_ad(self, rule):
        assert rule.next_index(2, AgentType.AD) == 1

    def test_truncation_top(self, rule):
        assert rule.next_index(3, AgentType.AC) == 3

    def test_truncation_bottom(self, rule):
        assert rule.next_index(0, AgentType.AD) == 0

    def test_out_of_range_raises(self, rule):
        with pytest.raises(InvalidParameterError):
            rule.next_index(4, AgentType.AC)

    def test_inc_dec_helpers(self, rule):
        assert rule.increment(3) == 3
        assert rule.decrement(0) == 0
        assert rule.increment(0) == 1
        assert rule.decrement(3) == 2

    def test_strict_variant_ignores_ac(self):
        strict = IGTRule(GenerosityGrid(k=4, g_max=0.6), strict=True)
        assert strict.next_index(1, AgentType.AC) == 1
        assert strict.next_index(1, AgentType.GTFT) == 2
        assert strict.next_index(1, AgentType.AD) == 0

    def test_transition_diagram_covers_all_states(self, rule):
        diagram = rule.transition_diagram()
        assert len(diagram) == 4
        assert [entry["index"] for entry in diagram] == [0, 1, 2, 3]

    def test_transition_diagram_consistent_with_rule(self, rule):
        for entry in rule.transition_diagram():
            j = entry["index"]
            assert entry["on_ac"] == rule.next_index(j, AgentType.AC)
            assert entry["on_ad"] == rule.next_index(j, AgentType.AD)


class TestAgentType:
    def test_three_types(self):
        assert {AgentType.AC, AgentType.AD, AgentType.GTFT} == set(AgentType)

    def test_values_stable(self):
        assert int(AgentType.AC) == 0
        assert int(AgentType.AD) == 1
        assert int(AgentType.GTFT) == 2
