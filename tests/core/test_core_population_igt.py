"""Tests for the agent-level IGT simulation."""

import numpy as np
import pytest

from repro.core.equilibrium import RDSetting
from repro.core.igt import AgentType, GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.utils import InvalidParameterError


@pytest.fixture
def shares():
    return PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)


@pytest.fixture
def grid():
    return GenerosityGrid(k=3, g_max=0.6)


class TestPopulationShares:
    def test_valid(self, shares):
        assert shares.lam == pytest.approx(4.0)

    def test_rejects_bad_sum(self):
        with pytest.raises(InvalidParameterError):
            PopulationShares(alpha=0.5, beta=0.5, gamma=0.5)

    def test_rejects_zero_gamma(self):
        with pytest.raises(InvalidParameterError):
            PopulationShares(alpha=0.5, beta=0.5, gamma=0.0)

    def test_lambda_infinite_at_beta_zero(self):
        shares = PopulationShares(alpha=0.5, beta=0.0, gamma=0.5)
        assert shares.lam == float("inf")

    def test_agent_counts_sum(self, shares):
        n_ac, n_ad, n_gtft = shares.agent_counts(100)
        assert n_ac + n_ad + n_gtft == 100
        assert (n_ac, n_ad, n_gtft) == (30, 20, 50)

    def test_agent_counts_need_gtft(self):
        shares = PopulationShares(alpha=0.99, beta=0.0, gamma=0.01)
        with pytest.raises(InvalidParameterError):
            shares.agent_counts(10)


class TestConstruction:
    def test_type_layout(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0)
        assert (sim.types == AgentType.AC).sum() == 30
        assert (sim.types == AgentType.AD).sum() == 20
        assert (sim.types == AgentType.GTFT).sum() == 50
        assert sim.n_gtft == 50

    def test_counts_match_indices(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0)
        assert sim.counts.sum() == sim.n_gtft
        assert np.array_equal(
            sim.counts, np.bincount(sim.gtft_indices(), minlength=3))

    def test_uniform_initialization_spreads(self, shares, grid):
        sim = IGTSimulation(n=4000, shares=shares, grid=grid, seed=1)
        fractions = sim.counts / sim.n_gtft
        assert np.allclose(fractions, 1 / 3, atol=0.06)

    def test_scalar_initialization(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0,
                            initial_indices=2)
        assert sim.counts[2] == sim.n_gtft

    def test_explicit_initialization(self, shares, grid):
        explicit = np.zeros(50, dtype=np.int64)
        explicit[:10] = 1
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0,
                            initial_indices=explicit)
        assert sim.counts[1] == 10

    def test_explicit_wrong_length_raises(self, shares, grid):
        with pytest.raises(InvalidParameterError):
            IGTSimulation(n=100, shares=shares, grid=grid, seed=0,
                          initial_indices=np.zeros(7, dtype=np.int64))

    def test_bad_scalar_raises(self, shares, grid):
        with pytest.raises(InvalidParameterError):
            IGTSimulation(n=100, shares=shares, grid=grid, seed=0,
                          initial_indices=5)

    def test_bad_mode_raises(self, shares, grid):
        with pytest.raises(InvalidParameterError):
            IGTSimulation(n=100, shares=shares, grid=grid, seed=0,
                          mode="telepathic")

    def test_action_mode_requires_setting(self, shares, grid):
        with pytest.raises(InvalidParameterError):
            IGTSimulation(n=100, shares=shares, grid=grid, seed=0,
                          mode="action")


class TestDynamics:
    def test_gtft_count_invariant(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0)
        sim.run(5000)
        assert sim.counts.sum() == sim.n_gtft
        assert (sim.types == AgentType.GTFT).sum() == sim.n_gtft

    def test_fixed_types_never_change(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0)
        types_before = sim.types.copy()
        sim.run(5000)
        assert np.array_equal(types_before, sim.types)

    def test_only_gtft_indices_move(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0)
        non_gtft = sim.types != AgentType.GTFT
        before = sim.indices[non_gtft].copy()
        sim.run(2000)
        assert np.array_equal(before, sim.indices[non_gtft])

    def test_reproducible(self, shares, grid):
        sim1 = IGTSimulation(n=100, shares=shares, grid=grid, seed=77)
        sim1.run(3000)
        sim2 = IGTSimulation(n=100, shares=shares, grid=grid, seed=77)
        sim2.run(3000)
        assert np.array_equal(sim1.counts, sim2.counts)

    @pytest.mark.parametrize("backend", ["agent", "count"])
    def test_run_until_stops_on_cadence(self, shares, grid, backend):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=3,
                            initial_indices=0, backend=backend)
        target = sim.n_gtft  # total index mass reachable from the corner
        converged = sim.run_until(
            200_000, lambda z: int(np.arange(grid.k) @ z) >= target,
            check_stop_every=50)
        assert converged
        assert sim.steps_run % 50 == 0
        assert int(np.arange(grid.k) @ sim.counts) >= target

    @pytest.mark.parametrize("backend", ["agent", "count"])
    def test_run_until_budget_exhausted(self, shares, grid, backend):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=3,
                            backend=backend)
        converged = sim.run_until(300, lambda z: False, check_stop_every=10)
        assert not converged
        assert sim.steps_run == 300

    def test_run_until_action_mode(self, shares, grid, small_setting):
        sim = IGTSimulation(n=30, shares=shares, grid=grid, seed=5,
                            mode="action", setting=small_setting)
        converged = sim.run_until(400, lambda z: z.sum() > 0,
                                  check_stop_every=10)
        assert converged
        assert sim.steps_run == 10

    def test_step_and_run_sample_same_law(self, shares, grid):
        """step() and run() agree in distribution (not bitwise — the fast
        path consumes randomness in blocks)."""
        totals_step = np.zeros(3)
        totals_run = np.zeros(3)
        for seed in range(12):
            sim1 = IGTSimulation(n=50, shares=shares, grid=grid, seed=seed,
                                 initial_indices=1)
            for _ in range(400):
                sim1.step()
            totals_step += sim1.counts
            sim2 = IGTSimulation(n=50, shares=shares, grid=grid, seed=seed,
                                 initial_indices=1)
            sim2.run(400)
            totals_run += sim2.counts
        assert sim1.steps_run == sim2.steps_run == 400
        # Pooled distributions close in TV.
        tv = 0.5 * np.abs(totals_step / totals_step.sum()
                          - totals_run / totals_run.sum()).sum()
        assert tv < 0.08

    def test_trajectory_recording(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0)
        trajectory = sim.run(1000, observe_every=100)
        assert trajectory.shape == (11, 3)
        assert (trajectory.sum(axis=1) == sim.n_gtft).all()

    def test_empirical_mu_sums_to_one(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0)
        sim.run(500)
        assert sim.empirical_mu().sum() == pytest.approx(1.0)

    def test_average_generosity_in_range(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0)
        sim.run(500)
        assert 0.0 <= sim.average_generosity() <= grid.g_max

    def test_all_ad_contact_drives_generosity_down(self, grid):
        """With overwhelmingly many AD partners, generosity collapses."""
        shares = PopulationShares(alpha=0.0, beta=0.9, gamma=0.1)
        sim = IGTSimulation(n=200, shares=shares, grid=grid, seed=3,
                            initial_indices=2)
        sim.run(30_000)
        assert sim.average_generosity() < 0.1

    def test_no_ad_drives_generosity_to_max(self, grid):
        shares = PopulationShares(alpha=0.5, beta=0.0, gamma=0.5)
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=3,
                            initial_indices=0)
        sim.run(20_000)
        assert sim.average_generosity() == pytest.approx(grid.g_max)


class TestStrategyObjects:
    def test_strategy_of_types(self, shares, grid, small_setting):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0,
                            setting=small_setting)
        ac_agent = int(np.nonzero(sim.types == AgentType.AC)[0][0])
        ad_agent = int(np.nonzero(sim.types == AgentType.AD)[0][0])
        gtft_agent = int(np.nonzero(sim.types == AgentType.GTFT)[0][0])
        assert sim.strategy_of(ac_agent).name == "AC"
        assert sim.strategy_of(ad_agent).name == "AD"
        assert sim.strategy_of(gtft_agent).name.startswith("GTFT")

    def test_gtft_strategy_uses_current_index(self, shares, grid,
                                              small_setting):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0,
                            setting=small_setting, initial_indices=2)
        gtft_agent = int(np.nonzero(sim.types == AgentType.GTFT)[0][0])
        strategy = sim.strategy_of(gtft_agent)
        assert strategy.coop_probs[1] == pytest.approx(grid.value(2))


class TestPayoffTracking:
    def test_requires_setting(self, shares, grid):
        with pytest.raises(InvalidParameterError):
            IGTSimulation(n=50, shares=shares, grid=grid, seed=0,
                          track_payoffs=True)

    def test_accumulates(self, shares, grid, small_setting):
        sim = IGTSimulation(n=50, shares=shares, grid=grid, seed=0,
                            setting=small_setting, track_payoffs=True)
        sim.run(2000)
        assert sim.interactions_played.sum() == 2 * 2000
        assert np.abs(sim.total_payoffs).sum() > 0

    def test_ad_agents_earn_most_against_cooperators(self, grid,
                                                     small_setting):
        """AD free-rides: with many AC agents, AD out-earns AC on average."""
        shares = PopulationShares(alpha=0.6, beta=0.2, gamma=0.2)
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=1,
                            setting=small_setting, track_payoffs=True)
        sim.run(20_000)
        means = sim.mean_payoff_per_interaction()
        ad_mean = means[sim.types == AgentType.AD].mean()
        ac_mean = means[sim.types == AgentType.AC].mean()
        assert ad_mean > ac_mean


class TestActionMode:
    def test_runs_and_conserves(self, shares, grid, small_setting, rng):
        sim = IGTSimulation(n=30, shares=shares, grid=grid, seed=rng,
                            mode="action", setting=small_setting)
        sim.run(500)
        assert sim.counts.sum() == sim.n_gtft

    def test_high_delta_matches_strategy_mode_direction(self, shares, grid,
                                                        rng):
        """With delta near 1, AD partners are identified reliably."""
        setting = RDSetting(b=4.0, c=1.0, delta=0.95, s1=0.5)
        sim = IGTSimulation(n=40, shares=shares, grid=grid, seed=rng,
                            mode="action", setting=setting,
                            initial_indices=1)
        sim.run(4000)
        # lambda = (1-beta)/beta = 4 > 1: generosity should drift up.
        assert sim.average_generosity() > 0.3


class TestEhrenfestEmbedding:
    def test_paper_parameters(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0)
        process = sim.equivalent_ehrenfest(exact=False)
        assert process.a == pytest.approx(shares.gamma * (1 - shares.beta))
        assert process.b == pytest.approx(shares.gamma * shares.beta)
        assert process.m == sim.n_gtft

    def test_exact_parameters(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0)
        process = sim.equivalent_ehrenfest(exact=True)
        assert process.lam == pytest.approx((100 - 1 - 20) / 20)

    def test_exact_lambda_approaches_paper_lambda(self, shares, grid):
        sim = IGTSimulation(n=10_000, shares=shares, grid=grid, seed=0)
        exact = sim.equivalent_ehrenfest(exact=True).lam
        assert exact == pytest.approx(shares.lam, rel=0.01)

    def test_needs_ad_agents(self, grid):
        shares = PopulationShares(alpha=0.5, beta=0.0, gamma=0.5)
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0)
        with pytest.raises(InvalidParameterError):
            sim.equivalent_ehrenfest(exact=True)
        with pytest.raises(InvalidParameterError):
            sim.equivalent_ehrenfest(exact=False)

    def test_strict_embedding_lower_bias(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0,
                            mode="strict")
        strict_process = sim.strict_equivalent_ehrenfest()
        assert strict_process.lam == pytest.approx((50 - 1) / 20)
        assert strict_process.lam < (100 - 1 - 20) / 20

    def test_strict_mode_rejects_standard_embedding(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0,
                            mode="strict")
        with pytest.raises(InvalidParameterError):
            sim.equivalent_ehrenfest()
