"""Tests for non-uniform generosity grids (discretization ablation)."""

import numpy as np
import pytest

from repro.core.equilibrium import de_gap, mean_stationary_mu
from repro.core.grids import (
    NonUniformGenerosityGrid,
    geometric_grid,
    grid_design_table,
)
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.core.regimes import default_theorem_2_9_setting
from repro.utils import InvalidParameterError


class TestNonUniformGrid:
    def test_basic_interface(self):
        grid = NonUniformGenerosityGrid([0.0, 0.1, 0.4])
        assert grid.k == 3
        assert grid.g_max == pytest.approx(0.4)
        assert grid.value(1) == pytest.approx(0.1)
        assert grid.spacing == pytest.approx(0.3)

    def test_rejects_non_increasing(self):
        with pytest.raises(InvalidParameterError):
            NonUniformGenerosityGrid([0.0, 0.3, 0.3])
        with pytest.raises(InvalidParameterError):
            NonUniformGenerosityGrid([0.4, 0.1])

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            NonUniformGenerosityGrid([-0.1, 0.5])
        with pytest.raises(InvalidParameterError):
            NonUniformGenerosityGrid([0.5, 1.2])

    def test_rejects_single_value(self):
        with pytest.raises(InvalidParameterError):
            NonUniformGenerosityGrid([0.5])

    def test_nearest_index(self):
        grid = NonUniformGenerosityGrid([0.0, 0.1, 0.4])
        assert grid.nearest_index(0.05) in (0, 1)
        assert grid.nearest_index(0.39) == 2

    def test_index_out_of_range(self):
        grid = NonUniformGenerosityGrid([0.0, 0.4])
        with pytest.raises(InvalidParameterError):
            grid.value(2)

    def test_values_are_copies(self):
        grid = NonUniformGenerosityGrid([0.0, 0.4])
        grid.values[0] = 9.9
        assert grid.value(0) == 0.0


class TestGeometricGrid:
    def test_endpoints(self):
        grid = geometric_grid(5, 0.4, ratio=0.5)
        assert grid.value(0) == 0.0
        assert grid.g_max == pytest.approx(0.4)

    def test_gaps_shrink_toward_top(self):
        grid = geometric_grid(6, 0.6, ratio=0.5)
        gaps = np.diff(grid.values)
        assert all(gaps[i] > gaps[i + 1] for i in range(gaps.size - 1))

    def test_gap_ratio(self):
        grid = geometric_grid(4, 0.6, ratio=0.5)
        gaps = np.diff(grid.values)
        assert gaps[1] / gaps[0] == pytest.approx(0.5)

    def test_ratio_validation(self):
        with pytest.raises(InvalidParameterError):
            geometric_grid(4, 0.5, ratio=1.0)
        with pytest.raises(InvalidParameterError):
            geometric_grid(4, 0.5, ratio=0.0)

    def test_ratio_near_one_approaches_uniform(self):
        geometric = geometric_grid(5, 0.4, ratio=0.999)
        uniform = GenerosityGrid(k=5, g_max=0.4)
        assert np.allclose(geometric.values, uniform.values, atol=1e-3)


class TestDiscretizationAblation:
    def test_geometric_beats_uniform_on_psi(self):
        """Packing resolution near g_max (where stationary mass sits)
        shrinks the DE gap at the same k — a design-choice ablation."""
        setting, shares, g_max = default_theorem_2_9_setting()
        rows = grid_design_table(6, setting, shares, g_max,
                                 ratios=(0.6, 0.4))
        uniform = rows[0]
        assert uniform["design"] == "uniform"
        for row in rows[1:]:
            assert row["psi"] < uniform["psi"]
            assert row["deficit"] < uniform["deficit"]

    def test_stronger_packing_stronger_effect(self):
        setting, shares, g_max = default_theorem_2_9_setting()
        rows = grid_design_table(6, setting, shares, g_max,
                                 ratios=(0.9, 0.6, 0.4))
        psis = [row["psi"] for row in rows[1:]]
        assert psis[0] > psis[1] > psis[2]

    def test_simulation_accepts_nonuniform_grid(self):
        """IGTSimulation is grid-shape agnostic (duck typing)."""
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = geometric_grid(4, 0.6, ratio=0.5)
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0)
        sim.run(5000)
        assert sim.counts.sum() == sim.n_gtft
        assert 0.0 <= sim.average_generosity() <= 0.6

    def test_stationary_indices_unaffected_by_grid_shape(self):
        """The count-chain law depends only on indices: simulations on
        uniform and geometric grids with the same seed produce identical
        count vectors."""
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        uniform = GenerosityGrid(k=4, g_max=0.6)
        geometric = geometric_grid(4, 0.6, ratio=0.5)
        sim_u = IGTSimulation(n=100, shares=shares, grid=uniform, seed=9)
        sim_g = IGTSimulation(n=100, shares=shares, grid=geometric, seed=9)
        sim_u.run(3000)
        sim_g.run(3000)
        assert np.array_equal(sim_u.counts, sim_g.counts)

    def test_de_gap_works_with_nonuniform_grid(self):
        setting, shares, g_max = default_theorem_2_9_setting()
        grid = geometric_grid(5, g_max, ratio=0.5)
        mu = mean_stationary_mu(5, beta=shares.beta)
        gap = de_gap(mu, grid, setting, shares)
        assert np.isfinite(gap) and gap >= 0
