"""Tests for continuous symmetric-equilibrium analysis."""

import numpy as np
import pytest

from repro.core.continuous_equilibrium import (
    stationary_mean_equilibrium_gap,
    symmetric_equilibrium,
    symmetric_gradient,
)
from repro.core.equilibrium import RDSetting
from repro.core.population_igt import PopulationShares
from repro.core.regimes import (
    default_theorem_2_9_setting,
    literal_only_theorem_2_9_setting,
)
from repro.utils import InvalidParameterError


class TestGradient:
    def test_decomposition(self):
        setting = RDSetting(b=4.0, c=1.0, delta=0.7, s1=0.5)
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        from repro.games.closed_forms import payoff_derivative_in_g

        g = 0.3
        expected = (shares.gamma * payoff_derivative_in_g(g, g, 4, 1, 0.7, 0.5)
                    - 0.2 * 1 * 0.7 / 0.3)
        assert symmetric_gradient(g, setting, shares) == \
            pytest.approx(expected)

    def test_strictly_decreasing_in_g(self):
        setting, shares, g_max = default_theorem_2_9_setting()
        values = [symmetric_gradient(float(g), setting, shares)
                  for g in np.linspace(0, 0.95, 12)]
        assert all(values[i] > values[i + 1] for i in range(11))

    def test_validates_range(self):
        setting, shares, _ = default_theorem_2_9_setting()
        with pytest.raises(InvalidParameterError):
            symmetric_gradient(1.5, setting, shares)


class TestSymmetricEquilibrium:
    def test_effective_regime_corner_high(self):
        """The canonical Theorem 2.9 setting has g* = g_max."""
        setting, shares, g_max = default_theorem_2_9_setting()
        eq = symmetric_equilibrium(setting, shares, g_max)
        assert eq.kind == "corner_high"
        assert eq.generosity == g_max
        assert eq.gradient >= 0

    def test_literal_regime_interior_below_stationary_mean(self):
        """The literal-only setting has an *interior* g* (~0.44) strictly
        below where the stationary mass concentrates (~0.585) — the
        geometric root cause of the stalled DE gap."""
        from repro.core.generosity import average_stationary_generosity

        setting, shares, g_max = literal_only_theorem_2_9_setting()
        eq = symmetric_equilibrium(setting, shares, g_max)
        assert eq.kind == "interior"
        assert 0.4 < eq.generosity < 0.5
        mean = average_stationary_generosity(32, shares.beta, g_max)
        assert mean > eq.generosity + 0.1

    def test_interior_equilibrium_found(self):
        """With a large enough g_max the gradient crosses zero inside."""
        setting, shares, _ = default_theorem_2_9_setting()
        phi_at_099 = symmetric_gradient(0.99, setting, shares)
        if phi_at_099 >= 0:
            pytest.skip("no interior crossing for these parameters")
        eq = symmetric_equilibrium(setting, shares, 0.99)
        assert eq.kind == "interior"
        assert 0.0 < eq.generosity < 0.99
        assert abs(eq.gradient) < 1e-8

    def test_interior_is_gradient_root(self):
        setting, shares, _ = default_theorem_2_9_setting()
        eq = symmetric_equilibrium(setting, shares, 0.999)
        if eq.kind != "interior":
            pytest.skip("no interior equilibrium here")
        assert symmetric_gradient(eq.generosity, setting, shares) == \
            pytest.approx(0.0, abs=1e-8)

    def test_equilibrium_monotone_in_beta(self):
        """More defectors -> (weakly) less equilibrium generosity."""
        setting = RDSetting(b=20.0, c=1.0, delta=0.8, s1=0.5)
        values = []
        for beta in (0.02, 0.1, 0.25, 0.4):
            shares = PopulationShares(alpha=0.2, beta=beta,
                                      gamma=0.8 - beta)
            eq = symmetric_equilibrium(setting, shares, 0.99)
            values.append(eq.generosity)
        assert all(values[i] >= values[i + 1] - 1e-12 for i in range(3))

    def test_rejects_zero_g_max(self):
        setting, shares, _ = default_theorem_2_9_setting()
        with pytest.raises(InvalidParameterError):
            symmetric_equilibrium(setting, shares, 0.0)


class TestStationaryMeanGap:
    def test_gap_decays_in_k_effective_regime(self):
        """|eg(k) - g*| = O(1/k) in the corner-high regime."""
        setting, shares, g_max = default_theorem_2_9_setting()
        gaps = [stationary_mean_equilibrium_gap(k, setting, shares, g_max)
                for k in (2, 4, 8, 16, 32)]
        assert all(gaps[i] > gaps[i + 1] for i in range(4))
        products = [g * k for g, k in zip(gaps, (2, 4, 8, 16, 32))]
        assert max(products) < 2 * g_max

    def test_gap_stalls_in_literal_regime(self):
        """With an interior g* ~ 0.44 but stationary mass near g_max = 0.6,
        the distance |eg(k) - g*| converges to a positive constant
        (~0.585 - 0.44 ~ 0.15) instead of zero — the geometric picture
        behind the stalled Psi."""
        setting, shares, g_max = literal_only_theorem_2_9_setting()
        gaps = [stationary_mean_equilibrium_gap(k, setting, shares, g_max)
                for k in (8, 16, 32, 64)]
        assert all(gap > 0.1 for gap in gaps)
        # Converging to a constant: successive changes shrink.
        assert abs(gaps[-1] - gaps[-2]) < abs(gaps[1] - gaps[0]) + 1e-12
