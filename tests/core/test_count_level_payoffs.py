"""Count-level ``mode="action"`` and payoff accounting vs the agent backend.

The agent backend plays real Monte-Carlo repeated games and accumulates
realized payoffs per agent; the count backend applies the exact
classification law and contracts per-type-pair interaction counts
against the exact expected-payoff table.  Their *means* must coincide —
that is the guarantee that lets payoff experiments run count-level.
"""

import numpy as np
import pytest

from repro.core.population_igt import IGTSimulation
from repro.utils import InvalidParameterError


@pytest.fixture
def sims(small_setting, small_shares, small_grid):
    def build(backend, mode, seed, track=True, n=240):
        return IGTSimulation(n=n, shares=small_shares, grid=small_grid,
                             seed=seed, mode=mode, setting=small_setting,
                             track_payoffs=track, backend=backend)
    return build


class TestActionModeCountLevel:
    def test_generosity_agrees_with_agent_play(self, sims):
        steps = 40_000
        agent_values = []
        count_values = []
        for seed in range(4):
            agent = sims("agent", "action", seed, track=False)
            agent.run(steps)
            agent_values.append(agent.average_generosity())
            count = sims("count", "action", 100 + seed, track=False)
            count.run(steps)
            count_values.append(count.average_generosity())
        assert abs(np.mean(agent_values)
                   - np.mean(count_values)) < 0.035

    def test_payoff_means_agree(self, sims):
        steps = 50_000
        agent = sims("agent", "action", 7)
        agent.run(steps)
        count = sims("count", "action", 8)
        count.run(steps)
        agent_means = agent.mean_payoff_by_type()
        count_means = count.mean_payoff_by_type()
        for name in ("GTFT", "AC", "AD"):
            assert agent_means[name] == pytest.approx(
                count_means[name], rel=0.06), name

    def test_pair_counts_track_interactions(self, sims):
        count = sims("count", "action", 3)
        count.run(12_345)
        assert count.pair_counts().sum() == 12_345


class TestStrategyModeCountLevel:
    def test_payoff_means_agree(self, sims):
        steps = 50_000
        agent = sims("agent", "strategy", 11)
        agent.run(steps)
        count = sims("count", "strategy", 12)
        count.run(steps)
        agent_means = agent.mean_payoff_by_type()
        count_means = count.mean_payoff_by_type()
        for name in ("GTFT", "AC", "AD"):
            assert agent_means[name] == pytest.approx(
                count_means[name], rel=0.05), name

    def test_run_until_works_with_tracking(self, sims):
        count = sims("count", "strategy", 5)
        hit = count.run_until(30_000, lambda z: z.sum() >= 0,
                              check_stop_every=500)
        assert hit  # trivially true predicate fires at the first check
        assert count.pair_counts().sum() == count.steps_run


class TestObservableGuards:
    def test_mean_payoff_needs_tracking(self, sims):
        sim = sims("count", "strategy", 1, track=False)
        with pytest.raises(InvalidParameterError):
            sim.mean_payoff_by_type()

    def test_pair_counts_are_count_backend_only(self, sims):
        agent = sims("agent", "strategy", 1)
        with pytest.raises(InvalidParameterError):
            agent.pair_counts()

    def test_per_agent_observables_still_agent_only(self, sims):
        count = sims("count", "action", 1)
        with pytest.raises(InvalidParameterError):
            count.mean_payoff_per_interaction()
        with pytest.raises(InvalidParameterError):
            count.step()

    def test_setting_still_required(self, small_shares, small_grid):
        with pytest.raises(InvalidParameterError):
            IGTSimulation(n=100, shares=small_shares, grid=small_grid,
                          seed=0, mode="action", backend="count")
