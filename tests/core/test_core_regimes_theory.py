"""Tests for regimes (Thm 2.9 conditions) and theory bound formulas."""

import math

import pytest

from repro.core.equilibrium import RDSetting
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import PopulationShares
from repro.core.regimes import (
    default_theorem_2_9_setting,
    literal_only_theorem_2_9_setting,
    payoff_increase_margin,
    theorem_2_9_conditions,
    theorem_2_9_delta_bound,
    theorem_2_9_g_max_bound,
)
from repro.core.theory import (
    ehrenfest_phi,
    igt_mixing_lower_bound,
    igt_mixing_upper_bound,
    mixing_lower_bound_interactions,
    mixing_upper_bound_interactions,
    per_agent_state_count,
    theorem_2_9_epsilon_rate,
)
from repro.utils import InvalidParameterError


class TestTheorem29Conditions:
    def test_canonical_setting_passes_all(self):
        setting, shares, g_max = default_theorem_2_9_setting()
        conditions = theorem_2_9_conditions(
            setting, shares, GenerosityGrid(k=4, g_max=g_max))
        assert conditions.all_hold

    def test_literal_setting_passes_all(self):
        setting, shares, g_max = literal_only_theorem_2_9_setting()
        conditions = theorem_2_9_conditions(
            setting, shares, GenerosityGrid(k=4, g_max=g_max))
        assert conditions.all_hold

    def test_lambda_below_two_fails(self):
        shares = PopulationShares(alpha=0.2, beta=0.4, gamma=0.4)
        setting = RDSetting(b=20.0, c=1.0, delta=0.5, s1=0.5)
        conditions = theorem_2_9_conditions(
            setting, shares, GenerosityGrid(k=3, g_max=0.3))
        assert not conditions.lambda_at_least_two
        assert not conditions.all_hold

    def test_delta_above_threshold_fails(self):
        shares = PopulationShares(alpha=0.3, beta=0.1, gamma=0.6)
        bound = theorem_2_9_delta_bound(4.0, 1.0, 0.5, shares)
        setting = RDSetting(b=4.0, c=1.0, delta=min(bound + 0.01, 0.999),
                            s1=0.5)
        conditions = theorem_2_9_conditions(
            setting, shares, GenerosityGrid(k=3, g_max=0.3))
        assert not conditions.delta_ok

    def test_ratio_condition(self):
        shares = PopulationShares(alpha=0.3, beta=0.1, gamma=0.6)
        # b/c = 1.2 < 1 + beta*c/(gamma(1-s1)) = 1.333.
        setting = RDSetting(b=1.2, c=1.0, delta=0.5, s1=0.5)
        conditions = theorem_2_9_conditions(
            setting, shares, GenerosityGrid(k=3, g_max=0.3))
        assert not conditions.reward_ratio_ok

    def test_requires_positive_beta(self):
        shares = PopulationShares(alpha=0.5, beta=0.0, gamma=0.5)
        setting = RDSetting(b=4.0, c=1.0, delta=0.5, s1=0.5)
        with pytest.raises(InvalidParameterError):
            theorem_2_9_conditions(setting, shares,
                                   GenerosityGrid(k=3, g_max=0.3))

    def test_delta_bound_formula(self):
        shares = PopulationShares(alpha=0.3, beta=0.1, gamma=0.6)
        bound = theorem_2_9_delta_bound(4.0, 1.0, 0.5, shares)
        expected = math.sqrt(1 - 0.1 / (0.6 * 3.0 * 0.5))
        assert bound == pytest.approx(expected)

    def test_g_max_bound_formula(self):
        shares = PopulationShares(alpha=0.3, beta=0.1, gamma=0.6)
        setting = RDSetting(b=4.0, c=1.0, delta=0.7, s1=0.5)
        bound = theorem_2_9_g_max_bound(setting, shares)
        inner = 0.1 / (0.6 * 3.0 * 0.3 * 0.5) - 1.0
        assert bound == pytest.approx(1.0 - inner / 0.7)


class TestEffectiveMargin:
    def test_canonical_positive(self):
        setting, shares, g_max = default_theorem_2_9_setting()
        assert payoff_increase_margin(setting, shares, g_max) > 0

    def test_literal_negative(self):
        setting, shares, g_max = literal_only_theorem_2_9_setting()
        assert payoff_increase_margin(setting, shares, g_max) < 0

    def test_margin_shrinks_with_beta(self):
        setting = RDSetting(b=20.0, c=1.0, delta=0.8, s1=0.5)
        margins = []
        for beta in (0.02, 0.1, 0.2):
            shares = PopulationShares(alpha=0.2, beta=beta,
                                      gamma=0.8 - beta)
            margins.append(payoff_increase_margin(setting, shares, 0.4))
        assert margins[0] > margins[1] > margins[2]

    def test_positive_margin_implies_increasing_deviation_payoff(self):
        """The margin certifies max of F at the top grid point."""
        import numpy as np

        from repro.core.equilibrium import (
            grid_payoffs_vs_mixture,
            mean_stationary_mu,
        )
        setting, shares, g_max = default_theorem_2_9_setting()
        for k in (2, 5, 9):
            grid = GenerosityGrid(k=k, g_max=g_max)
            mu = mean_stationary_mu(k, beta=shares.beta)
            payoffs = grid_payoffs_vs_mixture(mu, grid, setting, shares)
            assert int(np.argmax(payoffs)) == k - 1


class TestTheoryBounds:
    def test_phi_branches(self):
        assert ehrenfest_phi(4, 0.5, 0.1, 10) == pytest.approx(100.0)
        assert ehrenfest_phi(10, 0.35, 0.3, 5) == pytest.approx(
            min(10 / 0.05, 100) * 5)
        assert ehrenfest_phi(4, 0.3, 0.3, 10) == pytest.approx(160.0)

    def test_phi_rejects_bad_rates(self):
        with pytest.raises(InvalidParameterError):
            ehrenfest_phi(4, 0.0, 0.3, 10)
        with pytest.raises(InvalidParameterError):
            ehrenfest_phi(4, 0.8, 0.3, 10)

    def test_upper_bound_constant(self):
        value = mixing_upper_bound_interactions(3, 0.4, 0.2, 8)
        assert value == pytest.approx(
            2 * ehrenfest_phi(3, 0.4, 0.2, 8) * math.log(32))

    def test_lower_bound(self):
        assert mixing_lower_bound_interactions(4, 10) == 20.0

    def test_igt_bounds_consistent_with_ehrenfest(self):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        n = 200
        upper = igt_mixing_upper_bound(3, shares, n)
        a, b = 0.5 * 0.8, 0.5 * 0.2
        assert upper == pytest.approx(
            mixing_upper_bound_interactions(3, a, b, 100))
        assert igt_mixing_lower_bound(3, shares, n) == pytest.approx(150.0)

    def test_igt_upper_requires_beta(self):
        shares = PopulationShares(alpha=0.5, beta=0.0, gamma=0.5)
        with pytest.raises(InvalidParameterError):
            igt_mixing_upper_bound(3, shares, 100)

    def test_upper_grows_linearly_in_k_strong_bias(self):
        shares = PopulationShares(alpha=0.1, beta=0.05, gamma=0.85)
        values = [igt_mixing_upper_bound(k, shares, 1000)
                  for k in (8, 16, 32)]
        assert values[1] / values[0] == pytest.approx(2.0, rel=0.01)
        assert values[2] / values[1] == pytest.approx(2.0, rel=0.01)

    def test_state_count(self):
        assert per_agent_state_count(7) == 7
        with pytest.raises(InvalidParameterError):
            per_agent_state_count(1)

    def test_epsilon_rate(self):
        assert theorem_2_9_epsilon_rate(10) == pytest.approx(0.1)
        assert theorem_2_9_epsilon_rate(10, constant=3.0) == pytest.approx(0.3)
