"""Tests for the trade-off table and general-game population dynamics."""

import numpy as np
import pytest

from repro.core.general_games import (
    PopulationGameSimulation,
    de_gap_trajectory,
    hawk_dove_equilibrium_mixture,
    hawk_dove_game,
)
from repro.core.tradeoffs import TradeoffRow, tradeoff_table
from repro.games.base import MatrixGame
from repro.utils import InvalidParameterError


class TestTradeoffTable:
    @pytest.fixture
    def table(self, canonical):
        setting, shares, g_max = canonical
        return tradeoff_table([2, 4, 8], setting, shares, g_max, n=100)

    def test_row_count_and_type(self, table):
        assert len(table) == 3
        assert all(isinstance(row, TradeoffRow) for row in table)

    def test_states_equal_k(self, table):
        assert [row.states_per_agent for row in table] == [2, 4, 8]

    def test_bounds_ordered(self, table):
        for row in table:
            assert row.mixing_lower < row.mixing_upper

    def test_psi_decreasing(self, table):
        psis = [row.psi for row in table]
        assert psis[0] > psis[1] > psis[2]

    def test_psi_times_k(self, table):
        for row in table:
            assert row.psi_times_k == pytest.approx(row.psi * row.k)

    def test_no_measurement_by_default(self, table):
        assert all(row.measured_mixing is None for row in table)

    def test_measured_mode(self, canonical, rng):
        setting, shares, g_max = canonical
        table = tradeoff_table([2, 3], setting, shares, g_max, n=60,
                               measure=True, coupling_samples=3, seed=rng)
        for row in table:
            assert row.measured_mixing is not None
            assert row.measured_mixing > 0

    def test_rejects_k_one(self, canonical):
        setting, shares, g_max = canonical
        with pytest.raises(InvalidParameterError):
            tradeoff_table([1], setting, shares, g_max, n=100)


class TestHawkDove:
    def test_game_structure(self):
        game = hawk_dove_game(2.0, 4.0)
        assert game.is_symmetric()
        assert game.row_payoffs[0, 0] == pytest.approx(-1.0)
        assert game.row_payoffs[0, 1] == pytest.approx(2.0)
        assert game.row_payoffs[1, 1] == pytest.approx(1.0)

    def test_equilibrium_mixture(self):
        assert np.allclose(hawk_dove_equilibrium_mixture(2.0, 4.0),
                           [0.5, 0.5])
        assert np.allclose(hawk_dove_equilibrium_mixture(1.0, 4.0),
                           [0.25, 0.75])

    def test_rejects_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            hawk_dove_game(4.0, 2.0)
        with pytest.raises(InvalidParameterError):
            hawk_dove_equilibrium_mixture(4.0, 2.0)


class TestPopulationGameSimulation:
    @pytest.fixture
    def game(self):
        return hawk_dove_game(2.0, 4.0)

    def test_rejects_asymmetric_game(self):
        asymmetric = MatrixGame(np.array([[1.0, 0.0], [0.0, 1.0]]),
                                np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(InvalidParameterError):
            PopulationGameSimulation(asymmetric, n=10)

    def test_rejects_unknown_rule(self, game):
        with pytest.raises(InvalidParameterError):
            PopulationGameSimulation(game, n=10, rule="psychic")

    def test_counts_conserved(self, game, rng):
        sim = PopulationGameSimulation(game, n=50, seed=rng)
        sim.run(2000)
        assert sim.counts.sum() == 50

    def test_initial_strategies_respected(self, game, rng):
        initial = np.zeros(20, dtype=np.int64)
        sim = PopulationGameSimulation(game, n=20, seed=rng,
                                       initial_strategies=initial)
        assert sim.counts[0] == 20

    def test_initial_strategies_validated(self, game, rng):
        with pytest.raises(InvalidParameterError):
            PopulationGameSimulation(game, n=20, seed=rng,
                                     initial_strategies=np.full(20, 7))

    def test_imitation_approaches_mixed_equilibrium(self, game, rng):
        initial = np.ones(200, dtype=np.int64)  # mostly doves...
        initial[:20] = 0  # ...with a hawk minority to imitate from
        sim = PopulationGameSimulation(game, n=200, rule="imitation",
                                       seed=rng, initial_strategies=initial)
        sim.run(30_000)
        mu = sim.empirical_mu()
        assert mu[0] == pytest.approx(0.5, abs=0.15)

    def test_imitation_cannot_invent_strategies(self, game, rng):
        """All-dove is absorbing: imitation only copies existing strategies."""
        initial = np.ones(50, dtype=np.int64)
        sim = PopulationGameSimulation(game, n=50, rule="imitation",
                                       seed=rng, initial_strategies=initial)
        sim.run(5000)
        assert sim.counts[0] == 0

    def test_imitation_on_dominant_strategy_game(self, rng):
        """In a PD-like symmetric game imitation fixates on the dominant
        strategy."""
        from repro.games.donation import DonationGame

        game = DonationGame(4.0, 1.0)
        initial = np.zeros(100, dtype=np.int64)
        initial[:5] = 1  # five defectors invade
        sim = PopulationGameSimulation(game, n=100, rule="imitation",
                                       seed=rng, initial_strategies=initial)
        sim.run(60_000)
        assert sim.empirical_mu()[1] > 0.9

    def test_logit_keeps_full_support(self, game, rng):
        sim = PopulationGameSimulation(game, n=100, rule="logit", seed=rng,
                                       eta=1.0)
        sim.run(10_000)
        assert (sim.counts > 0).all()

    def test_best_response_rule_runs(self, game, rng):
        sim = PopulationGameSimulation(game, n=60, rule="best_response",
                                       seed=rng, p_update=0.3)
        sim.run(5000)
        assert sim.counts.sum() == 60

    def test_de_gap_trajectory_shape(self, game, rng):
        sim = PopulationGameSimulation(game, n=40, seed=rng)
        axis, gaps = de_gap_trajectory(sim, steps=1000, observe_every=250)
        assert axis.shape == (5,)
        assert gaps.shape == (5,)
        assert axis[-1] == 1000

    def test_de_gap_nonnegative_along_trajectory(self, game, rng):
        sim = PopulationGameSimulation(game, n=40, seed=rng)
        _, gaps = de_gap_trajectory(sim, steps=2000, observe_every=500)
        assert (gaps >= -1e-12).all()

    def test_rejects_bad_eta(self, game):
        with pytest.raises(InvalidParameterError):
            PopulationGameSimulation(game, n=10, rule="logit", eta=0.0)
