"""Tests for empirical convergence measurement and observation noise."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.convergence import (
    ConvergenceCurve,
    igt_convergence_curve,
    igt_empirical_mixing_estimate,
)
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.core.stationary import noisy_igt_lambda
from repro.core.theory import igt_mixing_upper_bound
from repro.utils import ConvergenceError, InvalidParameterError


@pytest.fixture
def shares():
    return PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)


@pytest.fixture
def grid():
    return GenerosityGrid(k=3, g_max=0.6)


class TestNoisyLambda:
    def test_zero_noise_recovers_theorem_2_7(self):
        assert noisy_igt_lambda(0.2, 0.0) == pytest.approx(4.0)

    def test_half_noise_is_uniform(self):
        for beta in (0.1, 0.3, 0.7):
            assert noisy_igt_lambda(beta, 0.5) == pytest.approx(1.0)

    def test_full_noise_inverts(self):
        assert noisy_igt_lambda(0.2, 1.0) == pytest.approx(0.25)

    def test_monotone_decreasing_toward_half(self):
        lams = [noisy_igt_lambda(0.2, eps) for eps in (0.0, 0.1, 0.3, 0.5)]
        assert all(lams[i] > lams[i + 1] for i in range(3))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            noisy_igt_lambda(1.5, 0.1)
        with pytest.raises(InvalidParameterError):
            noisy_igt_lambda(0.2, -0.1)
        with pytest.raises(InvalidParameterError):
            noisy_igt_lambda(0.0, 0.0)


class TestObservationNoiseSimulation:
    def test_noise_requires_strategy_mode(self, shares, grid):
        with pytest.raises(InvalidParameterError):
            IGTSimulation(n=60, shares=shares, grid=grid, seed=0,
                          mode="strict", observation_noise=0.1)

    def test_noisy_embedding_lambda(self, shares, grid):
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0,
                            observation_noise=0.2)
        process = sim.equivalent_ehrenfest(exact=False)
        assert process.lam == pytest.approx(noisy_igt_lambda(0.2, 0.2))

    def test_noise_flattens_stationary(self, shares, grid):
        """More noise -> weaker bias -> lower stationary generosity."""
        results = []
        for eps in (0.0, 0.25, 0.5):
            sim = IGTSimulation(n=200, shares=shares, grid=grid, seed=3,
                                observation_noise=eps)
            sim.run(40_000)
            total = 0.0
            for _ in range(100):
                sim.run(100)
                total += sim.average_generosity()
            results.append(total / 100)
        assert results[0] > results[1] > results[2] - 0.02
        assert results[2] == pytest.approx(0.3, abs=0.05)  # uniform: g_max/2

    def test_noisy_run_matches_noisy_theory(self, shares, grid):
        eps = 0.3
        sim = IGTSimulation(n=200, shares=shares, grid=grid, seed=5,
                            observation_noise=eps)
        process = sim.equivalent_ehrenfest(exact=True)
        sim.run(40_000)
        pooled = np.zeros(3)
        for _ in range(150):
            sim.run(100)
            pooled += sim.counts
        pooled /= pooled.sum()
        assert np.abs(pooled - process.stationary_weights()).max() < 0.04

    def test_noise_enables_embedding_without_ad(self, grid):
        """With noise, even a beta=0 population has decrement pressure."""
        shares = PopulationShares(alpha=0.5, beta=0.0, gamma=0.5)
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0,
                            observation_noise=0.1)
        process = sim.equivalent_ehrenfest(exact=False)
        assert process.lam == pytest.approx(0.9 / 0.1)


class TestConvergenceCurve:
    def test_curve_decreases_to_threshold(self, shares, grid):
        # The estimator's noise floor is ~sqrt(bins/replicas); with m=40
        # (41 bins) we need a few hundred replicas to see distances < 0.15.
        upper = igt_mixing_upper_bound(3, shares, 80)
        times = [10, int(0.2 * upper), int(2 * upper)]
        curve = igt_convergence_curve(80, shares, grid, times, replicas=150,
                                      seed=1)
        assert curve.distances[0] > curve.distances[-1]
        assert curve.distances[0] > 0.8  # worst-case start is far away
        assert curve.distances[-1] < 0.15

    def test_crossing_time_within_paper_bounds(self, shares, grid):
        n = 60
        estimate = igt_empirical_mixing_estimate(
            n, shares, grid, threshold=0.3, replicas=80, points=6, seed=2)
        assert estimate <= 2 * igt_mixing_upper_bound(3, shares, n)
        # Empirical marginal crossing can undershoot the full-state t_mix
        # but not the trivial floor.
        assert estimate >= 1

    def test_crossing_never_reached_raises(self):
        curve = ConvergenceCurve(times=np.array([1, 2]),
                                 distances=np.array([0.9, 0.8]), replicas=10)
        with pytest.raises(ConvergenceError):
            curve.crossing_time(0.25)

    def test_validation(self, shares, grid):
        with pytest.raises(InvalidParameterError):
            igt_convergence_curve(80, shares, grid, [], replicas=5)

    def test_mixing_grows_with_k(self, shares):
        """Empirical crossing times increase with k (Theorem 2.7 shape)."""
        n = 60
        estimates = []
        for k in (2, 5):
            grid = GenerosityGrid(k=k, g_max=0.6)
            estimates.append(igt_empirical_mixing_estimate(
                n, shares, grid, replicas=30, points=6, seed=4))
        assert estimates[0] < estimates[1]


class TestCliSimulate:
    def test_simulate_runs(self, capsys):
        assert main(["simulate", "--n", "80", "--k", "3", "--steps", "2000",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "average generosity" in out
        assert "stationary p_j" in out

    def test_simulate_with_noise(self, capsys):
        assert main(["simulate", "--n", "60", "--k", "3", "--steps", "1000",
                     "--noise", "0.3"]) == 0
        assert "noise=0.3" in capsys.readouterr().out
