"""Tests for the mean-field analysis of the k-IGT dynamics."""

import numpy as np
import pytest

from repro.core.igt import GenerosityGrid
from repro.core.mean_field import (
    drift_generator,
    igt_mean_field,
    mean_field_stationary,
    mean_generosity_trajectory,
    mean_trajectory_discrete,
    mean_trajectory_ode,
)
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.markov.ehrenfest import EhrenfestProcess
from repro.utils import InvalidParameterError, spawn_generators


class TestDriftGenerator:
    def test_columns_sum_to_zero(self):
        A = drift_generator(5, 0.4, 0.2)
        assert np.allclose(A.sum(axis=0), 0.0)

    def test_conserves_total_mass(self):
        A = drift_generator(4, 0.3, 0.2)
        z = np.array([3.0, 1.0, 0.0, 2.0])
        assert (A @ z).sum() == pytest.approx(0.0)

    def test_interior_structure(self):
        A = drift_generator(3, 0.4, 0.1)
        # Middle urn: gains a from below, b from above, loses a + b.
        assert A[1, 0] == pytest.approx(0.4)
        assert A[1, 2] == pytest.approx(0.1)
        assert A[1, 1] == pytest.approx(-0.5)

    def test_boundary_truncation(self):
        A = drift_generator(3, 0.4, 0.1)
        # Bottom urn never loses to a down-move, top never to an up-move.
        assert A[0, 0] == pytest.approx(-0.4)
        assert A[2, 2] == pytest.approx(-0.1)

    def test_rejects_bad_rates(self):
        with pytest.raises(InvalidParameterError):
            drift_generator(3, 0.8, 0.3)


class TestStationary:
    @pytest.mark.parametrize("k,a,b", [(2, 0.3, 0.2), (4, 0.4, 0.1),
                                       (6, 0.25, 0.25), (3, 0.1, 0.6)])
    def test_equals_theorem_2_4_weights(self, k, a, b):
        """The mean-field fixed point is exactly p_j ∝ (a/b)^{j-1}."""
        process = EhrenfestProcess(k=k, a=a, b=b, m=5)
        assert np.allclose(mean_field_stationary(k, a, b),
                           process.stationary_weights(), atol=1e-10)

    def test_is_fixed_point_of_flow(self):
        x_star = mean_field_stationary(4, 0.4, 0.1)
        A = drift_generator(4, 0.4, 0.1)
        assert np.allclose(A @ x_star, 0.0, atol=1e-12)


class TestTrajectories:
    def test_discrete_conserves_mass(self):
        trajectory = mean_trajectory_discrete(3, 0.3, 0.2, [6, 0, 0],
                                              steps=100, observe_every=10)
        assert np.allclose(trajectory.sum(axis=1), 6.0)

    def test_discrete_converges_to_stationary(self):
        trajectory = mean_trajectory_discrete(3, 0.4, 0.1, [10, 0, 0],
                                              steps=3000)
        final = trajectory[-1] / 10.0
        assert np.allclose(final, mean_field_stationary(3, 0.4, 0.1),
                           atol=1e-4)

    def test_ode_matches_discrete(self):
        """expm(A t/m) ≈ (I + A/m)^t for moderate t/m."""
        m, steps = 20, 400
        discrete = mean_trajectory_discrete(
            4, 0.3, 0.2, [m, 0, 0, 0], steps=steps)[-1] / m
        ode = mean_trajectory_ode(4, 0.3, 0.2, [1.0, 0, 0, 0],
                                  [steps / m])[-1]
        assert np.allclose(discrete, ode, atol=0.01)

    def test_ode_at_time_zero_is_identity(self):
        x0 = np.array([0.5, 0.25, 0.25])
        out = mean_trajectory_ode(3, 0.3, 0.2, x0, [0.0])
        assert np.allclose(out[0], x0)

    def test_ode_rejects_negative_time(self):
        with pytest.raises(InvalidParameterError):
            mean_trajectory_ode(3, 0.3, 0.2, [1, 0, 0], [-1.0])

    def test_ode_requires_fractions(self):
        with pytest.raises(InvalidParameterError):
            mean_trajectory_ode(3, 0.3, 0.2, [2, 0, 0], [1.0])

    def test_generosity_trajectory_monotone_upward(self):
        """From all-zero generosity with upward drift, ẽg(t) increases."""
        grid = GenerosityGrid(k=4, g_max=0.6)
        series = mean_generosity_trajectory(4, 0.4, 0.1, [8, 0, 0, 0],
                                            grid, steps=500, observe_every=50)
        assert all(series[i] <= series[i + 1] + 1e-12
                   for i in range(series.size - 1))


class TestAgentLevelAgreement:
    def test_simulation_mean_tracks_mean_field_exactly(self):
        """E[z_t] is *exactly* (I + A/m)^t z_0 — verify within CLT noise."""
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.6)
        n, T, replicas = 100, 1500, 150
        totals = np.zeros(3)
        for child in spawn_generators(17, replicas):
            sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=child,
                                initial_indices=0)
            sim.run(T)
            totals += sim.counts
        observed = totals / replicas
        A, m = igt_mean_field(shares, grid, n, exact=True)
        step = np.eye(3) + A / m
        z0 = np.array([m, 0.0, 0.0])
        expected = np.linalg.matrix_power(step, T) @ z0
        # CLT tolerance: count std is O(sqrt(m)), mean-of-replicas shrinks
        # by sqrt(replicas).
        tolerance = 4 * np.sqrt(m) / np.sqrt(replicas)
        assert np.abs(observed - expected).max() < tolerance

    def test_igt_mean_field_paper_parameters(self):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.6)
        A, m = igt_mean_field(shares, grid, 100, exact=False)
        assert m == 50
        assert A[1, 0] == pytest.approx(0.5 * 0.8)

    def test_igt_mean_field_needs_ad(self):
        shares = PopulationShares(alpha=0.5, beta=0.0, gamma=0.5)
        with pytest.raises(InvalidParameterError):
            igt_mean_field(shares, GenerosityGrid(k=3, g_max=0.5), 100)
