"""Tests for Theorem 2.7 parameters and Proposition 2.8 / Corollary C.1."""

import numpy as np
import pytest

from repro.core.generosity import (
    average_stationary_generosity,
    generosity_closed_form,
    generosity_lower_bound,
    proposition_d2_variance_bound,
    single_agent_generosity_variance,
    stationary_generosity_variance,
)
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import PopulationShares
from repro.core.stationary import (
    expected_stationary_counts,
    igt_ehrenfest_parameters,
    igt_ehrenfest_process,
    igt_lambda,
    igt_stationary_weights,
    stationary_count_distribution,
)
from repro.markov.state_space import CompositionSpace
from repro.utils import InvalidParameterError


class TestIgtLambda:
    def test_value(self):
        assert igt_lambda(0.2) == pytest.approx(4.0)

    def test_beta_half_gives_one(self):
        assert igt_lambda(0.5) == pytest.approx(1.0)

    def test_rejects_boundary(self):
        with pytest.raises(InvalidParameterError):
            igt_lambda(0.0)
        with pytest.raises(InvalidParameterError):
            igt_lambda(1.0)


class TestStationaryWeights:
    def test_sum_to_one(self):
        assert igt_stationary_weights(5, 0.3).sum() == pytest.approx(1.0)

    def test_geometric_in_lambda(self):
        weights = igt_stationary_weights(4, 0.2)
        ratios = weights[1:] / weights[:-1]
        assert np.allclose(ratios, 4.0)

    def test_uniform_at_beta_half(self):
        assert np.allclose(igt_stationary_weights(4, 0.5), 0.25)

    def test_concentrates_high_for_small_beta(self):
        weights = igt_stationary_weights(6, 0.05)
        assert weights[-1] > 0.9

    def test_concentrates_low_for_large_beta(self):
        weights = igt_stationary_weights(6, 0.95)
        assert weights[0] > 0.9

    def test_mirror_symmetry(self):
        """Swapping beta -> 1-beta reverses the weight vector."""
        forward = igt_stationary_weights(5, 0.2)
        backward = igt_stationary_weights(5, 0.8)
        assert np.allclose(forward, backward[::-1])

    def test_expected_counts(self):
        counts = expected_stationary_counts(3, 0.25, 60)
        assert counts.sum() == pytest.approx(60)
        assert np.allclose(counts, 60 * igt_stationary_weights(3, 0.25))


class TestEhrenfestParameters:
    def test_values(self):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        a, b, m = igt_ehrenfest_parameters(shares, 100)
        assert a == pytest.approx(0.5 * 0.8)
        assert b == pytest.approx(0.5 * 0.2)
        assert m == 50

    def test_lambda_consistency(self):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        a, b, _ = igt_ehrenfest_parameters(shares, 100)
        assert a / b == pytest.approx(shares.lam)

    def test_rejects_beta_zero(self):
        shares = PopulationShares(alpha=0.5, beta=0.0, gamma=0.5)
        with pytest.raises(InvalidParameterError):
            igt_ehrenfest_parameters(shares, 100)

    def test_process_construction(self):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        process = igt_ehrenfest_process(shares, 100,
                                        GenerosityGrid(k=4, g_max=0.5))
        assert process.k == 4
        assert process.m == 50

    def test_stationary_count_distribution_normalizes(self):
        pmf = stationary_count_distribution(3, 0.2, 8)
        assert pmf.sum() == pytest.approx(1.0)

    def test_stationary_count_distribution_space_mismatch(self):
        space = CompositionSpace(5, 3)
        with pytest.raises(InvalidParameterError):
            stationary_count_distribution(3, 0.2, 8, space=space)


class TestProposition28:
    @pytest.mark.parametrize("k", [2, 3, 5, 10, 25])
    @pytest.mark.parametrize("beta", [0.1, 0.3, 0.45, 0.6, 0.9])
    def test_closed_form_equals_direct(self, k, beta):
        g_max = 0.7
        assert generosity_closed_form(k, beta, g_max) == pytest.approx(
            average_stationary_generosity(k, beta, g_max), abs=1e-12)

    def test_beta_half_special_case(self):
        assert generosity_closed_form(7, 0.5, 0.8) == pytest.approx(0.4)
        assert average_stationary_generosity(7, 0.5, 0.8) == pytest.approx(0.4)

    def test_k_two_by_hand(self):
        """k=2: eg = g_max * p_2 = g_max * lambda/(1+lambda)."""
        beta, g_max = 0.2, 0.6
        lam = 4.0
        assert average_stationary_generosity(2, beta, g_max) == \
            pytest.approx(g_max * lam / (1 + lam))

    def test_monotone_decreasing_in_beta(self):
        values = [average_stationary_generosity(5, beta, 0.5)
                  for beta in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(values[i] > values[i + 1] for i in range(4))

    def test_approaches_g_max_for_small_beta(self):
        assert average_stationary_generosity(40, 0.05, 0.9) == \
            pytest.approx(0.9, abs=0.002)

    def test_scales_linearly_with_g_max(self):
        ratio = (average_stationary_generosity(5, 0.2, 0.8)
                 / average_stationary_generosity(5, 0.2, 0.4))
        assert ratio == pytest.approx(2.0)

    def test_near_half_beta_numerically_stable(self):
        """Direct sum is smooth through beta = 1/2."""
        left = average_stationary_generosity(6, 0.4999999, 0.5)
        right = average_stationary_generosity(6, 0.5000001, 0.5)
        assert left == pytest.approx(right, abs=1e-5)
        assert left == pytest.approx(0.25, abs=1e-5)


class TestCorollaryC1:
    @pytest.mark.parametrize("beta", [0.05, 0.1, 0.2, 0.3, 0.45])
    @pytest.mark.parametrize("k", [2, 4, 8, 32])
    def test_bound_holds(self, beta, k):
        g_max = 0.8
        assert average_stationary_generosity(k, beta, g_max) >= \
            generosity_lower_bound(k, beta, g_max) - 1e-12

    def test_requires_lambda_above_one(self):
        with pytest.raises(InvalidParameterError):
            generosity_lower_bound(4, 0.5, 0.8)
        with pytest.raises(InvalidParameterError):
            generosity_lower_bound(4, 0.7, 0.8)

    def test_bound_tightens_with_k(self):
        bounds = [generosity_lower_bound(k, 0.2, 0.8) for k in (2, 4, 8, 16)]
        assert all(bounds[i] < bounds[i + 1] for i in range(3))

    def test_deficit_rate(self):
        """g_max - eg = O(1/k): deficit * k stays bounded."""
        g_max = 0.8
        products = [(g_max - average_stationary_generosity(k, 0.2, g_max)) * k
                    for k in (4, 8, 16, 32, 64)]
        assert max(products) < 2 * g_max


class TestVariances:
    def test_single_agent_variance_below_d2_bound(self):
        for k in (2, 4, 8, 16):
            variance = single_agent_generosity_variance(k, 0.2, 0.8)
            assert variance <= proposition_d2_variance_bound(k)

    def test_population_variance_scales_inverse_m(self):
        v100 = stationary_generosity_variance(4, 0.2, 0.6, m=100)
        v400 = stationary_generosity_variance(4, 0.2, 0.6, m=400)
        assert v100 == pytest.approx(4 * v400)

    def test_variance_nonnegative(self):
        assert single_agent_generosity_variance(3, 0.5, 1.0) >= 0.0

    def test_variance_matches_direct_computation(self):
        k, beta, g_max = 4, 0.3, 0.6
        grid = GenerosityGrid(k=k, g_max=g_max)
        weights = igt_stationary_weights(k, beta)
        direct = float(np.sum(weights * grid.values**2)
                       - np.sum(weights * grid.values) ** 2)
        assert single_agent_generosity_variance(k, beta, g_max) == \
            pytest.approx(direct)
