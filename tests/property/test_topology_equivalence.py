"""Quenched/annealed equivalences and facade guards for graph runs.

Three claims from the topology promotion are pinned here:

* **Count = agent on a vertex-transitive graph for partner-blind
  one-way rules**: when only the initiator's state changes and the
  update ignores the partner, the quenched graph process depends on the
  graph only through the initiator marginal — uniform on any regular
  graph — so the agent backend (quenched) and the count backend
  (annealed) realize the *same* count law and their final-count
  distributions must coincide.
* **The quenched per-vertex theory is exact**: on a ring, a GTFT
  agent's stationary generosity depends only on its own AD-neighbor
  fraction; the ergodic average of an agent-backend simulation must
  match the per-vertex Proposition 2.8 mean (the E6 topology variant's
  reference law, validated here at test scale).
* **Facades never mix laws silently**: ``weights=`` and ``topology=``
  are mutually exclusive, and the Ehrenfest embedding (a complete-graph
  construction) refuses to exist for a graph-restricted simulation.
"""

import numpy as np
import pytest

from repro.core.generosity import average_stationary_generosity
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.engine import AgentBackend, CountBackend, TableModel, ring_graph
from repro.population.protocols import RumorSpreadingProtocol
from repro.population.scheduler import GraphScheduler
from repro.population.simulator import Simulator
from repro.utils import InvalidParameterError


def one_way_flip_model() -> TableModel:
    """Initiator flips its bit, responder unchanged — partner-blind."""
    table = np.zeros((2, 2, 2), dtype=np.int64)
    table[0, :, 0] = 1
    table[1, :, 0] = 0
    table[:, 0, 1] = 0
    table[:, 1, 1] = 1
    return TableModel(table)


class TestCountMatchesAgentOnRegularGraph:
    def test_partner_blind_one_way_final_count_distributions(self):
        """TV distance between the backends' final-count histograms."""
        n, steps, runs = 10, 25, 2500
        model = one_way_flip_model()
        graph = ring_graph(n)
        rng = np.random.default_rng(7)
        agent_hist = np.zeros(n + 1)
        count_hist = np.zeros(n + 1)
        initial = np.zeros(n, dtype=np.int64)
        for _ in range(runs):
            agent = AgentBackend(
                model, initial.copy(),
                scheduler=GraphScheduler(graph, seed=rng))
            agent.run(steps)
            agent_hist[agent.counts[1]] += 1
            count = CountBackend(
                model, np.array([n, 0]),
                scheduler=GraphScheduler(graph, seed=rng))
            count.run(steps)
            count_hist[count.counts[1]] += 1
        tv = 0.5 * np.abs(agent_hist - count_hist).sum() / runs
        assert tv < 0.09, f"TV between backends {tv:.4f}"


class TestQuenchedTheoryExact:
    def test_ring_generosity_matches_per_vertex_theory(self):
        """Agent-backend ergodic average vs the exact quenched mean."""
        n, beta, k, g_max = 200, 0.2, 3, 0.5
        alpha = (1.0 - beta) / 2.0
        shares = PopulationShares(alpha=alpha, beta=beta,
                                  gamma=1.0 - alpha - beta)
        graph = ring_graph(n)
        # Per-vertex theory: beta_i = AD-neighbor fraction of GTFT i.
        n_ac, n_ad, _ = shares.agent_counts(n)
        values = []
        for vertex in range(n_ac + n_ad, n):
            neighbors = graph.neighbors(vertex)
            ad = int(np.count_nonzero((neighbors >= n_ac)
                                      & (neighbors < n_ac + n_ad)))
            beta_i = ad / neighbors.size
            values.append(
                g_max if beta_i == 0.0 else
                0.0 if beta_i == 1.0 else
                average_stationary_generosity(k, beta_i, g_max))
        theory = float(np.mean(values))
        sim = IGTSimulation(n=n, shares=shares,
                            grid=GenerosityGrid(k=k, g_max=g_max),
                            seed=2024, topology=graph)
        sim.run(300_000)
        samples = np.empty(60)
        for i in range(len(samples)):
            sim.run(2_000)
            samples[i] = sim.average_generosity()
        assert abs(float(samples.mean()) - theory) < 0.02
        # The quenched ring value sits strictly above the complete-graph
        # value for these shares — the gap the E6 variant measures.
        complete = average_stationary_generosity(k, beta, g_max)
        assert theory > complete + 0.02


class TestFacadeGuards:
    def test_weights_and_topology_mutually_exclusive(self):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        with pytest.raises(InvalidParameterError, match="not both"):
            IGTSimulation(n=100, shares=shares,
                          grid=GenerosityGrid(k=3, g_max=0.5),
                          seed=0, weights=np.ones(100), topology="ring")

    def test_ehrenfest_embedding_refused_on_graph(self):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        sim = IGTSimulation(n=100, shares=shares,
                            grid=GenerosityGrid(k=3, g_max=0.5),
                            seed=0, topology="ring")
        with pytest.raises(InvalidParameterError, match="complete-graph"):
            sim.equivalent_ehrenfest()

    def test_simulator_scheduler_and_topology_exclusive(self):
        protocol = RumorSpreadingProtocol()
        states = np.zeros(50, dtype=np.int64)
        states[0] = 1
        with pytest.raises(InvalidParameterError, match="not both"):
            Simulator(protocol, states, seed=1,
                      scheduler=GraphScheduler(ring_graph(50), seed=1),
                      topology="ring")

    def test_simulator_runs_on_topology(self):
        protocol = RumorSpreadingProtocol()
        states = np.zeros(60, dtype=np.int64)
        states[0] = 1
        sim = Simulator(protocol, states, seed=1, topology="ring:2")
        sim.run(20_000)
        assert sim.counts[1] == 60  # the rumor spreads along the ring
