"""Backend-equivalence property tests for the engine layer.

Two guarantees are pinned down here:

* **AgentBackend is the seed simulator, bit for bit** — frozen copies of
  the pre-engine per-interaction loops (``Simulator.run`` and the
  ``IGTSimulation`` fast path) are replayed against the engine-backed
  implementations under shared seeds and must produce identical
  trajectories, not merely the same law.
* **CountBackend is exact in distribution** — its empirical state
  distribution is compared against the exact transition matrices from
  :mod:`repro.markov` (the paper's Ehrenfest embedding) and against the
  agent-level law for the general-game rules.
"""

import math

import numpy as np
import pytest

from repro.core.general_games import (
    PopulationGameSimulation,
    hawk_dove_game,
)
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.engine import CountBackend, igt_model
from repro.markov.ehrenfest import EhrenfestProcess
from repro.population.protocol import TransitionFunctionProtocol
from repro.population.simulator import Simulator


# ----------------------------------------------------------------------
# Frozen references: the seed repo's per-interaction loops, verbatim law
# and randomness consumption.
# ----------------------------------------------------------------------
def reference_simulator_run(protocol, initial_states, seed, max_steps,
                            observe_every=None):
    """The seed ``Simulator.run`` loop (block-sampled pairs, per-step)."""
    rng = np.random.default_rng(seed)
    states = np.asarray(initial_states, dtype=np.int64).copy()
    n = states.size
    table = protocol.transition_table()
    counts = np.bincount(states, minlength=protocol.n_states).astype(np.int64)
    observations = []
    if observe_every is not None:
        observations.append((0, counts.copy()))
    block = 65536
    done = 0
    while done < max_steps:
        batch = min(block, max_steps - done)
        initiators = rng.integers(0, n, size=batch)
        responders = rng.integers(0, n - 1, size=batch)
        responders = responders + (responders >= initiators)
        for offset in range(batch):
            i = initiators[offset]
            j = responders[offset]
            u = states[i]
            v = states[j]
            new_u = table[u, v, 0]
            new_v = table[u, v, 1]
            if new_u != u:
                states[i] = new_u
                counts[u] -= 1
                counts[new_u] += 1
            if new_v != v:
                states[j] = new_v
                counts[v] -= 1
                counts[new_v] += 1
            step = done + offset + 1
            if observe_every is not None and step % observe_every == 0:
                observations.append((step, counts.copy()))
        done += batch
    return states, counts, observations


def reference_igt_run(n, shares, grid, seed, steps, record_every=None,
                      strict=False):
    """The seed ``IGTSimulation`` fast path (strategy/strict, no payoffs)."""
    rng = np.random.default_rng(seed)
    n_ac, n_ad, n_gtft = shares.agent_counts(n)
    types = np.empty(n, dtype=np.int64)
    types[:n_ac] = 0       # AC
    types[n_ac:n_ac + n_ad] = 1  # AD
    types[n_ac + n_ad:] = 2      # GTFT
    indices = np.zeros(n, dtype=np.int64)
    indices[n_ac + n_ad:] = rng.integers(0, grid.k, size=n_gtft)
    counts = np.bincount(indices[n_ac + n_ad:],
                         minlength=grid.k).astype(np.int64)
    recorded = [counts.copy()] if record_every is not None else None
    k = grid.k
    block = 65536
    done = 0
    while done < steps:
        batch = min(block, steps - done)
        first = rng.integers(0, n, size=batch)
        second = rng.integers(0, n - 1, size=batch)
        second = second + (second >= first)
        for offset in range(batch):
            i = first[offset]
            if types[i] == 2:
                j = second[offset]
                partner = types[j]
                old = indices[i]
                if partner == 1:
                    new = old - 1 if old > 0 else old
                elif strict and partner == 0:
                    new = old
                else:
                    new = old + 1 if old < k - 1 else old
                if new != old:
                    indices[i] = new
                    counts[old] -= 1
                    counts[new] += 1
            if record_every is not None \
                    and (done + offset + 1) % record_every == 0:
                recorded.append(counts.copy())
        done += batch
    return indices[n_ac + n_ad:], counts, recorded


class TestAgentBackendBitCompat:
    @pytest.mark.parametrize("seed", [0, 7, 2024])
    def test_simulator_trajectories_identical(self, seed):
        protocol = TransitionFunctionProtocol(
            n_states=4, fn=lambda u, v: (max(u, v), v))
        states = np.zeros(300, dtype=np.int64)
        states[:5] = 3
        states[5:40] = 1
        ref_states, ref_counts, ref_obs = reference_simulator_run(
            protocol, states, seed, 30_000, observe_every=7001)
        sim = Simulator(protocol, states, seed=seed)
        result = sim.run(30_000, observe_every=7001)
        assert np.array_equal(result.states, ref_states)
        assert np.array_equal(result.counts, ref_counts)
        assert len(result.observations) == len(ref_obs)
        for (s1, c1), (s2, c2) in zip(result.observations, ref_obs):
            assert s1 == s2 and np.array_equal(c1, c2)

    def test_two_way_protocol_identical(self):
        protocol = TransitionFunctionProtocol(
            n_states=3, fn=lambda u, v: (max(u, v), max(u, v)))
        states = (np.arange(100) % 3).astype(np.int64)
        ref_states, ref_counts, _ = reference_simulator_run(
            protocol, states, 13, 5000)
        result = Simulator(protocol, states, seed=13).run(5000)
        assert np.array_equal(result.states, ref_states)
        assert np.array_equal(result.counts, ref_counts)

    @pytest.mark.parametrize("strict", [False, True])
    @pytest.mark.parametrize("seed", [1, 42])
    def test_igt_trajectories_identical(self, seed, strict):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=5, g_max=0.6)
        ref_gtft, ref_counts, ref_recorded = reference_igt_run(
            150, shares, grid, seed, 20_000, record_every=4999,
            strict=strict)
        sim = IGTSimulation(n=150, shares=shares, grid=grid, seed=seed,
                            mode="strict" if strict else "strategy")
        recorded = sim.run(20_000, record_every=4999)
        assert np.array_equal(sim.gtft_indices(), ref_gtft)
        assert np.array_equal(sim.counts, ref_counts)
        assert np.array_equal(recorded, np.stack(ref_recorded))


class TestVectorizedAgentBitCompat:
    """The chunked kernel is the seed simulator bit for bit, forced on.

    The auto heuristics would decline these small populations; forcing
    ``vectorized=True`` pins the kernel's conflict resolution itself
    against the frozen pre-engine loops — states, counts, observation
    snapshots, everything.
    """

    @pytest.mark.parametrize("seed", [0, 7, 2024])
    def test_simulator_trajectories_identical(self, seed):
        protocol = TransitionFunctionProtocol(
            n_states=4, fn=lambda u, v: (max(u, v), v))
        states = np.zeros(300, dtype=np.int64)
        states[:5] = 3
        states[5:40] = 1
        ref_states, ref_counts, ref_obs = reference_simulator_run(
            protocol, states, seed, 30_000, observe_every=7001)
        sim = Simulator(protocol, states, seed=seed, vectorized=True)
        result = sim.run(30_000, observe_every=7001)
        assert np.array_equal(result.states, ref_states)
        assert np.array_equal(result.counts, ref_counts)
        assert len(result.observations) == len(ref_obs)
        for (s1, c1), (s2, c2) in zip(result.observations, ref_obs):
            assert s1 == s2 and np.array_equal(c1, c2)

    def test_two_way_protocol_identical(self):
        protocol = TransitionFunctionProtocol(
            n_states=3, fn=lambda u, v: (max(u, v), max(u, v)))
        states = (np.arange(100) % 3).astype(np.int64)
        ref_states, ref_counts, _ = reference_simulator_run(
            protocol, states, 13, 5000)
        result = Simulator(protocol, states, seed=13,
                           vectorized=True).run(5000)
        assert np.array_equal(result.states, ref_states)
        assert np.array_equal(result.counts, ref_counts)


class TestCountBackendExactLaw:
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_matches_exact_ehrenfest_chain(self, vectorized):
        """Empirical T-step distribution vs the exact chain from markov/.

        Parametrized over both count paths: the array-proxy kernel
        (``vectorized=True``, the small-n default) and the birthday
        batching (``vectorized=False``) must both realize the exact law.
        """
        n, n_ac, n_ad, k = 8, 1, 2, 2
        m = n - n_ac - n_ad
        beta_hat = n_ad / (n - 1)
        process = EhrenfestProcess(k=k, a=(m / n) * (1 - beta_hat),
                                   b=(m / n) * beta_hat, m=m)
        space = process.space()
        matrix = process.exact_chain(space).dense()
        model = igt_model(k)
        start = np.array([m, 0, n_ac, n_ad], dtype=np.int64)
        steps, runs = 12, 6000
        rng = np.random.default_rng(2024)
        histogram = np.zeros(len(space))
        for _ in range(runs):
            backend = CountBackend(model, start, seed=rng,
                                   vectorized=vectorized)
            final = backend.run(steps).counts
            histogram[space.index(tuple(final[:k]))] += 1
        histogram /= runs
        initial = np.zeros(len(space))
        initial[space.index((m, 0))] = 1.0
        exact = initial @ np.linalg.matrix_power(matrix, steps)
        tv = 0.5 * np.abs(histogram - exact).sum()
        assert tv < 0.05, f"TV to exact chain {tv:.4f}"

    def test_matches_exact_chain_k3(self):
        n, n_ac, n_ad, k = 10, 2, 3, 3
        m = n - n_ac - n_ad
        beta_hat = n_ad / (n - 1)
        process = EhrenfestProcess(k=k, a=(m / n) * (1 - beta_hat),
                                   b=(m / n) * beta_hat, m=m)
        space = process.space()
        matrix = process.exact_chain(space).dense()
        model = igt_model(k)
        start = np.array([0, m, 0, n_ac, n_ad], dtype=np.int64)
        steps, runs = 20, 6000
        rng = np.random.default_rng(99)
        histogram = np.zeros(len(space))
        for _ in range(runs):
            backend = CountBackend(model, start, seed=rng)
            final = backend.run(steps).counts
            histogram[space.index(tuple(final[:k]))] += 1
        histogram /= runs
        initial = np.zeros(len(space))
        initial[space.index((0, m, 0))] = 1.0
        exact = initial @ np.linalg.matrix_power(matrix, steps)
        tv = 0.5 * np.abs(histogram - exact).sum()
        assert tv < 0.07, f"TV to exact chain {tv:.4f}"


class TestCountBackendCheckpointLaw:
    """Mid-batch checkpoints must not perturb the process law.

    Observation boundaries no longer split birthday batches: interior
    counts come from prefix sums over the batch's recorded slots, and an
    early stop truncates a faithfully sampled trajectory.  Both the
    interior-snapshot marginal and the stopped-by-T probability are
    compared against the exact chains from :mod:`repro.markov`.
    """

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_interior_snapshot_matches_exact_chain(self, vectorized):
        n, n_ac, n_ad, k = 8, 1, 2, 2
        m = n - n_ac - n_ad
        beta_hat = n_ad / (n - 1)
        process = EhrenfestProcess(k=k, a=(m / n) * (1 - beta_hat),
                                   b=(m / n) * beta_hat, m=m)
        space = process.space()
        matrix = process.exact_chain(space).dense()
        model = igt_model(k)
        start = np.array([m, 0, n_ac, n_ad], dtype=np.int64)
        # Snapshot step 7 of a 40-step run: with the ~sqrt(n) batch scale
        # the checkpoint lands strictly inside a batch, not at its end.
        snapshot_at, steps, runs = 7, 40, 5000
        rng = np.random.default_rng(20240726)
        histogram = np.zeros(len(space))
        for _ in range(runs):
            backend = CountBackend(model, start, seed=rng,
                                   vectorized=vectorized)
            result = backend.run(steps, observe_every=snapshot_at)
            interior = dict(result.observations)[snapshot_at]
            histogram[space.index(tuple(interior[:k]))] += 1
        histogram /= runs
        initial = np.zeros(len(space))
        initial[space.index((m, 0))] = 1.0
        exact = initial @ np.linalg.matrix_power(matrix, snapshot_at)
        tv = 0.5 * np.abs(histogram - exact).sum()
        assert tv < 0.05, f"TV of interior snapshot to exact chain {tv:.4f}"

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_per_step_stop_probability_matches_absorbing_chain(
            self, vectorized):
        n, n_ac, n_ad, k = 8, 1, 2, 2
        m = n - n_ac - n_ad
        beta_hat = n_ad / (n - 1)
        process = EhrenfestProcess(k=k, a=(m / n) * (1 - beta_hat),
                                   b=(m / n) * beta_hat, m=m)
        space = process.space()
        matrix = process.exact_chain(space).dense()
        model = igt_model(k)
        start = np.array([m, 0, n_ac, n_ad], dtype=np.int64)
        horizon, runs = 15, 4000
        target = space.index((0, m))
        rng = np.random.default_rng(77)
        stopped = 0
        for _ in range(runs):
            backend = CountBackend(model, start, seed=rng,
                                   vectorized=vectorized)
            result = backend.run(horizon, stop_when=lambda c: c[0] == 0,
                                 check_stop_every=1)
            stopped += result.converged
        absorbing = matrix.copy()
        absorbing[target] = 0.0
        absorbing[target, target] = 1.0
        initial = np.zeros(len(space))
        initial[space.index((m, 0))] = 1.0
        exact = (initial @ np.linalg.matrix_power(absorbing, horizon))[target]
        standard_error = math.sqrt(exact * (1 - exact) / runs)
        assert abs(stopped / runs - exact) < 5 * standard_error, \
            f"stop rate {stopped / runs:.4f} vs exact {exact:.4f}"


class TestGameBackendsAgree:
    @pytest.mark.parametrize("rule,kwargs", [
        ("imitation", {}),
        ("best_response", {"p_update": 0.4}),
        ("logit", {"eta": 1.3}),
    ])
    def test_count_matches_agent_law(self, rule, kwargs):
        """Final-count distributions of the two backends coincide."""
        game = hawk_dove_game(2.0, 4.0)
        n, steps, runs = 10, 25, 2500
        initial = np.array([0] * 5 + [1] * 5, dtype=np.int64)
        rng = np.random.default_rng(7)
        agent_hist = np.zeros(n + 1)
        count_hist = np.zeros(n + 1)
        for _ in range(runs):
            agent_sim = PopulationGameSimulation(
                game, n, rule=rule, seed=rng, initial_strategies=initial,
                **kwargs)
            agent_sim.run(steps)
            agent_hist[agent_sim.counts[0]] += 1
            count_sim = PopulationGameSimulation(
                game, n, rule=rule, seed=rng, initial_strategies=initial,
                backend="count", **kwargs)
            count_sim.run(steps)
            count_hist[count_sim.counts[0]] += 1
        tv = 0.5 * np.abs(agent_hist - count_hist).sum() / runs
        assert tv < 0.09, f"{rule}: TV between backends {tv:.4f}"

    def test_igt_backends_agree_on_moments(self):
        """Mean final counts of the IGT backends coincide (larger n)."""
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=4, g_max=0.6)
        runs, steps = 60, 3000
        rng = np.random.default_rng(5)
        agent_means = np.zeros(4)
        count_means = np.zeros(4)
        for _ in range(runs):
            agent_sim = IGTSimulation(n=120, shares=shares, grid=grid,
                                      seed=rng, initial_indices=0)
            agent_sim.run(steps)
            agent_means += agent_sim.counts
            count_sim = IGTSimulation(n=120, shares=shares, grid=grid,
                                      seed=rng, initial_indices=0,
                                      backend="count")
            count_sim.run(steps)
            count_means += count_sim.counts
        agent_means /= runs
        count_means /= runs
        # Means of ~60 draws of a 60-agent count vector: allow 3-sigma-ish
        # slack per coordinate.
        assert np.abs(agent_means - count_means).max() < 4.0
