"""Property-based tests for the games substrate and the paper core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.equilibrium import RDSetting, de_gap, mean_stationary_mu
from repro.core.generosity import (
    average_stationary_generosity,
    generosity_closed_form,
)
from repro.core.igt import AgentType, GenerosityGrid, IGTRule
from repro.core.population_igt import PopulationShares
from repro.games.closed_forms import (
    payoff_gtft_vs_ac,
    payoff_gtft_vs_ad,
    payoff_gtft_vs_gtft,
)
from repro.games.donation import DonationGame
from repro.games.expected_payoff import expected_payoff
from repro.games.strategies import (
    generous_tit_for_tat,
    reactive,
    with_execution_noise,
)

probabilities = st.floats(min_value=0.0, max_value=1.0)
deltas = st.floats(min_value=0.0, max_value=0.95)
generosities = st.floats(min_value=0.0, max_value=1.0)


class TestPayoffProperties:
    @given(g=generosities, gp=generosities, delta=deltas, s1=probabilities)
    @settings(max_examples=60, deadline=None)
    def test_closed_form_equals_resolvent_everywhere(self, g, gp, delta, s1):
        b, c = 4.0, 1.0
        closed = payoff_gtft_vs_gtft(g, gp, b, c, delta, s1)
        resolvent = expected_payoff(generous_tit_for_tat(g, s1),
                                    generous_tit_for_tat(gp, s1),
                                    DonationGame(b, c).reward_vector, delta)
        assert closed == pytest.approx(resolvent, abs=1e-8)

    @given(g=generosities, delta=deltas, s1=probabilities)
    @settings(max_examples=40, deadline=None)
    def test_payoff_bounded_by_extremes(self, g, delta, s1):
        """Every repeated-game payoff lies in [-c, b] per expected round."""
        b, c = 4.0, 1.0
        rounds = 1.0 / (1.0 - delta)
        for f in (payoff_gtft_vs_ac(g, b, c, delta, s1),
                  payoff_gtft_vs_ad(g, b, c, delta, s1),
                  payoff_gtft_vs_gtft(g, g, b, c, delta, s1)):
            assert -c * rounds - 1e-9 <= f <= b * rounds + 1e-9

    @given(p=probabilities, q=probabilities, s1=probabilities,
           noise=st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=40, deadline=None)
    def test_noise_keeps_probabilities_valid(self, p, q, s1, noise):
        noisy = with_execution_noise(reactive(p, q, s1), noise)
        assert all(0.0 <= prob <= 1.0 for prob in noisy.coop_probs)
        assert 0.0 <= noisy.initial_coop_prob <= 1.0

    @given(g=generosities, gp=generosities, delta=deltas, s1=probabilities)
    @settings(max_examples=40, deadline=None)
    def test_joint_cooperative_payoffs_sum(self, g, gp, delta, s1):
        """f(g,g') + f(g',g) <= 2(b-c)/(1-delta): total welfare is capped by
        full mutual cooperation in donation games."""
        b, c = 4.0, 1.0
        total = (payoff_gtft_vs_gtft(g, gp, b, c, delta, s1)
                 + payoff_gtft_vs_gtft(gp, g, b, c, delta, s1))
        cap = 2 * (b - c) / (1 - delta)
        assert total <= cap + 1e-8


class TestIGTRuleProperties:
    @given(k=st.integers(min_value=2, max_value=12),
           index=st.integers(min_value=0, max_value=11),
           partner=st.sampled_from(list(AgentType)))
    @settings(max_examples=60, deadline=None)
    def test_rule_stays_on_grid_and_moves_one(self, k, index, partner):
        if index >= k:
            return
        rule = IGTRule(GenerosityGrid(k=k, g_max=0.8))
        new = rule.next_index(index, partner)
        assert 0 <= new < k
        assert abs(new - index) <= 1

    @given(k=st.integers(min_value=2, max_value=12),
           index=st.integers(min_value=0, max_value=11))
    @settings(max_examples=40, deadline=None)
    def test_ad_never_increases(self, k, index):
        if index >= k:
            return
        rule = IGTRule(GenerosityGrid(k=k, g_max=0.8))
        assert rule.next_index(index, AgentType.AD) <= index

    @given(k=st.integers(min_value=2, max_value=12),
           index=st.integers(min_value=0, max_value=11))
    @settings(max_examples=40, deadline=None)
    def test_ac_never_decreases(self, k, index):
        if index >= k:
            return
        rule = IGTRule(GenerosityGrid(k=k, g_max=0.8))
        assert rule.next_index(index, AgentType.AC) >= index


class TestStationaryProperties:
    @given(k=st.integers(min_value=2, max_value=30),
           beta=st.floats(min_value=0.02, max_value=0.98))
    @settings(max_examples=60, deadline=None)
    def test_generosity_formulas_agree(self, k, beta):
        g_max = 0.9
        assert generosity_closed_form(k, beta, g_max) == pytest.approx(
            average_stationary_generosity(k, beta, g_max), abs=1e-8)

    @given(k=st.integers(min_value=2, max_value=30),
           beta=st.floats(min_value=0.02, max_value=0.98))
    @settings(max_examples=60, deadline=None)
    def test_generosity_within_grid_range(self, k, beta):
        value = average_stationary_generosity(k, beta, 0.7)
        assert 0.0 <= value <= 0.7

    @given(k=st.integers(min_value=2, max_value=20),
           beta=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=40, deadline=None)
    def test_mean_stationary_mu_is_distribution(self, k, beta):
        mu = mean_stationary_mu(k, beta=beta)
        assert mu.shape == (k,)
        assert mu.sum() == pytest.approx(1.0)
        assert (mu >= 0).all()


class TestDeGapProperties:
    @given(k=st.integers(min_value=2, max_value=8),
           raw=st.lists(st.floats(min_value=0.01, max_value=1.0),
                        min_size=8, max_size=8),
           beta=st.floats(min_value=0.05, max_value=0.4))
    @settings(max_examples=30, deadline=None)
    def test_gap_nonnegative_for_any_mixture(self, k, raw, beta):
        """Psi >= 0 for every distribution (max dominates the average)."""
        setting = RDSetting(b=4.0, c=1.0, delta=0.7, s1=0.5)
        alpha = (1 - beta) / 2
        shares = PopulationShares(alpha=alpha, beta=beta,
                                  gamma=1 - alpha - beta)
        grid = GenerosityGrid(k=k, g_max=0.6)
        mu = np.array(raw[:k])
        mu = mu / mu.sum()
        assert de_gap(mu, grid, setting, shares) >= -1e-10


class TestSharesProperties:
    @given(alpha=st.floats(min_value=0.0, max_value=0.8),
           beta=st.floats(min_value=0.0, max_value=0.8))
    @settings(max_examples=40, deadline=None)
    def test_agent_counts_partition(self, alpha, beta):
        if alpha + beta >= 0.95:
            return
        shares = PopulationShares(alpha=alpha, beta=beta,
                                  gamma=1 - alpha - beta)
        n = 137
        n_ac, n_ad, n_gtft = shares.agent_counts(n)
        assert n_ac + n_ad + n_gtft == n
        assert n_gtft >= 1
