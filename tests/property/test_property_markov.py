"""Property-based tests (hypothesis) for the Markov substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.distributions import (
    multinomial_pmf_over_space,
    total_variation,
)
from repro.markov.ehrenfest import EhrenfestProcess
from repro.markov.random_walks import (
    ReflectedWalk,
    expected_absorption_time,
    gamblers_ruin_win_probability,
    symmetric_interval_win_probability,
)
from repro.markov.state_space import CompositionSpace, num_compositions

# Shared strategies --------------------------------------------------------

rates = st.tuples(
    st.floats(min_value=0.05, max_value=0.9),
    st.floats(min_value=0.05, max_value=0.9),
).filter(lambda ab: ab[0] + ab[1] <= 1.0)

small_instances = st.tuples(
    st.integers(min_value=2, max_value=4),     # k
    rates,                                     # (a, b)
    st.integers(min_value=1, max_value=6),     # m
)


class TestCompositionProperties:
    @given(m=st.integers(min_value=0, max_value=8),
           k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_enumeration_is_complete_bijection(self, m, k):
        space = CompositionSpace(m, k)
        assert len(space) == num_compositions(m, k)
        seen = set()
        for i, state in enumerate(space):
            assert sum(state) == m
            assert min(state) >= 0
            assert space.index(state) == i
            seen.add(state)
        assert len(seen) == len(space)


class TestEhrenfestProperties:
    @given(instance=small_instances)
    @settings(max_examples=25, deadline=None)
    def test_kernel_row_stochastic(self, instance):
        k, (a, b), m = instance
        process = EhrenfestProcess(k=k, a=a, b=b, m=m)
        P = process.transition_matrix(sparse=False)
        assert np.all(P >= -1e-12)
        assert np.allclose(P.sum(axis=1), 1.0)

    @given(instance=small_instances)
    @settings(max_examples=25, deadline=None)
    def test_detailed_balance_universal(self, instance):
        """Theorem 2.4's Ansatz satisfies detailed balance for ALL (k,a,b,m)."""
        k, (a, b), m = instance
        process = EhrenfestProcess(k=k, a=a, b=b, m=m)
        chain = process.exact_chain()
        pi = process.stationary_distribution()
        assert chain.satisfies_detailed_balance(pi, atol=1e-9)

    @given(instance=small_instances)
    @settings(max_examples=25, deadline=None)
    def test_multinomial_pmf_normalized(self, instance):
        k, (a, b), m = instance
        process = EhrenfestProcess(k=k, a=a, b=b, m=m)
        pi = process.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0, abs=1e-9)

    @given(instance=small_instances,
           steps=st.integers(min_value=0, max_value=200),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_simulation_conserves_mass(self, instance, steps, seed):
        k, (a, b), m = instance
        process = EhrenfestProcess(k=k, a=a, b=b, m=m)
        start = (m,) + (0,) * (k - 1)
        final = process.simulate_counts(start, steps, seed=seed)
        assert final.sum() == m
        assert final.min() >= 0

    @given(instance=small_instances)
    @settings(max_examples=20, deadline=None)
    def test_bounds_ordered(self, instance):
        k, (a, b), m = instance
        process = EhrenfestProcess(k=k, a=a, b=b, m=m)
        assert process.mixing_time_lower_bound() \
            <= process.mixing_time_upper_bound()


class TestDistributionProperties:
    @given(k=st.integers(min_value=2, max_value=4),
           m=st.integers(min_value=1, max_value=6),
           raw=st.lists(st.floats(min_value=0.01, max_value=1.0),
                        min_size=2, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_pmf_over_space_normalized(self, k, m, raw):
        weights = np.array(raw[:k]) if len(raw) >= k else None
        if weights is None:
            return
        weights = weights / weights.sum()
        space = CompositionSpace(m, k)
        pmf = multinomial_pmf_over_space(space, weights)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)
        assert (pmf >= 0).all()

    @given(raw_p=st.lists(st.floats(min_value=0.0, max_value=1.0),
                          min_size=3, max_size=3),
           raw_q=st.lists(st.floats(min_value=0.0, max_value=1.0),
                          min_size=3, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_tv_metric_axioms(self, raw_p, raw_q):
        p = np.array(raw_p)
        q = np.array(raw_q)
        if p.sum() == 0 or q.sum() == 0:
            return
        p = p / p.sum()
        q = q / q.sum()
        tv = total_variation(p, q)
        assert 0.0 <= tv <= 1.0 + 1e-12
        assert tv == pytest.approx(total_variation(q, p))
        assert total_variation(p, p) == 0.0


class TestRandomWalkProperties:
    @given(k=st.integers(min_value=1, max_value=10), ab=rates)
    @settings(max_examples=40, deadline=None)
    def test_win_probability_in_unit_interval(self, k, ab):
        a, b = ab
        p = symmetric_interval_win_probability(k, a, b)
        assert 0.0 <= p <= 1.0

    @given(k=st.integers(min_value=1, max_value=10), ab=rates)
    @settings(max_examples=40, deadline=None)
    def test_absorption_time_positive(self, k, ab):
        a, b = ab
        assert expected_absorption_time(k, a, b) > 0

    @given(k=st.integers(min_value=1, max_value=8), ab=rates)
    @settings(max_examples=30, deadline=None)
    def test_upward_bias_raises_win_probability(self, k, ab):
        a, b = ab
        p = symmetric_interval_win_probability(k, a, b)
        if a > b:
            assert p >= 0.5
        elif a < b:
            assert p <= 0.5

    @given(target=st.integers(min_value=2, max_value=12), ab=rates)
    @settings(max_examples=30, deadline=None)
    def test_gamblers_ruin_monotone_in_start(self, target, ab):
        a, b = ab
        probs = [gamblers_ruin_win_probability(s, target, a, b)
                 for s in range(target + 1)]
        assert all(probs[i] <= probs[i + 1] + 1e-12 for i in range(target))

    @given(k=st.integers(min_value=2, max_value=6), ab=rates)
    @settings(max_examples=25, deadline=None)
    def test_reflected_walk_stationary_solves_chain(self, k, ab):
        a, b = ab
        walk = ReflectedWalk(k, a, b)
        chain = walk.chain()
        assert chain.is_stationary(walk.stationary_distribution(), atol=1e-9)
