"""Heterogeneous birthday batching: distribution-equivalence properties.

The weighted count backend has two execution strategies — the array-proxy
kernel (per-agent arrays, bounded by ``WEIGHTED_PROXY_MAX_N``) and the
heterogeneous birthday batching path (O(k · C) memory, any ``n``).  Both
must realize the *same* exact ``(weight class × state)`` chain.  Pinned
here:

* **birthday vs the enumerated chain** — on a 2-class toy the birthday
  path's empirical T-step distribution matches an exactly enumerated
  transition matrix of the weighted pair law (the same bar the proxy
  kernel passed in the PR that introduced the lift);
* **birthday vs proxy** — forcing each strategy on identical workloads
  (including the 4-slot imitation rule) yields statistically
  indistinguishable final-count laws;
* **uniform degeneracy** — with one weight class the heterogeneous
  collision schedule reduces to the uniform birthday problem, matching
  :class:`~repro.engine.count.CountBackend` against the exact Ehrenfest
  yardstick used throughout the suite.
"""

import itertools

import numpy as np

from repro.core.general_games import PopulationGameSimulation, hawk_dove_game
from repro.engine import (
    CountBackend,
    ImitationModel,
    TableModel,
    WeightedCountBackend,
)


def epidemic_table() -> np.ndarray:
    table = np.empty((2, 2, 2), dtype=np.int64)
    for u in range(2):
        for v in range(2):
            table[u, v] = (max(u, v), v)
    return table


def exact_weighted_epidemic_chain(class_sizes, class_weights):
    """Exact transition matrix of the 2-state epidemic under weights.

    States are tuples ``(ones_in_class_0, ones_in_class_1, ...)``; the
    initiator is weight-proportional, the responder weight-proportional
    among the remaining agents, and the initiator moves to 1 iff either
    participant is 1.
    """
    spaces = [range(size + 1) for size in class_sizes]
    states = list(itertools.product(*spaces))
    index = {state: i for i, state in enumerate(states)}
    total_weight = sum(s * w for s, w in zip(class_sizes, class_weights))
    matrix = np.zeros((len(states), len(states)))
    for state in states:
        def cell_count(c, bit, minus=None):
            count = state[c] if bit == 1 else class_sizes[c] - state[c]
            if minus == (c, bit):
                count -= 1
            return count

        for c_i in range(len(class_sizes)):
            for bit_i in (0, 1):
                p_init = (cell_count(c_i, bit_i) * class_weights[c_i]
                          / total_weight)
                if p_init == 0:
                    continue
                remaining = total_weight - class_weights[c_i]
                for c_j in range(len(class_sizes)):
                    for bit_j in (0, 1):
                        count_j = cell_count(c_j, bit_j, minus=(c_i, bit_i))
                        p_resp = count_j * class_weights[c_j] / remaining
                        if p_resp == 0:
                            continue
                        new = list(state)
                        if bit_i == 0 and bit_j == 1:
                            new[c_i] += 1
                        matrix[index[state], index[tuple(new)]] += (
                            p_init * p_resp)
    return states, index, matrix


class TestBirthdayMatchesEnumeratedChain:
    def test_two_class_toy(self):
        class_sizes = (2, 2)
        class_weights = (1.0, 4.0)
        states, index, matrix = exact_weighted_epidemic_chain(
            class_sizes, class_weights)
        model = TableModel(epidemic_table())
        initial = np.array([[2, 0], [1, 1]], dtype=np.int64)
        steps, runs = 5, 4000
        rng = np.random.default_rng(424)
        histogram = np.zeros(len(states))
        for _ in range(runs):
            backend = WeightedCountBackend(model, initial,
                                           np.array(class_weights),
                                           seed=rng, vectorized=False)
            backend.run(steps)
            final = backend.class_state_counts
            histogram[index[(int(final[0, 1]), int(final[1, 1]))]] += 1
        histogram /= runs
        initial_distribution = np.zeros(len(states))
        initial_distribution[index[(0, 1)]] = 1.0
        exact = initial_distribution @ np.linalg.matrix_power(matrix, steps)
        tv = 0.5 * np.abs(histogram - exact).sum()
        assert tv < 0.05, f"TV to exact weighted chain {tv:.4f}"


class TestBirthdayMatchesProxy:
    def test_epidemic_final_count_law(self):
        """Pairwise table model: both strategies over many replicates
        give the same mean infected count."""
        model = TableModel(epidemic_table())
        initial = np.array([[38, 2], [58, 2]], dtype=np.int64)
        class_weights = np.array([1.0, 6.0])
        runs, steps = 1200, 200
        means = {}
        for forced in (True, False):
            rng = np.random.default_rng(1234)
            total = 0.0
            for _ in range(runs):
                backend = WeightedCountBackend(model, initial, class_weights,
                                               seed=rng, vectorized=forced)
                total += backend.run(steps).counts[1]
            means[forced] = total / runs
        # Final infected count is in [4, 100]; the replicate standard
        # error is well under 1, so a gap of 2.5 flags a law mismatch.
        assert abs(means[True] - means[False]) < 2.5, means

    def test_imitation_four_slot_law(self):
        """The 4-slot lift (observed agents in product space) agrees
        across strategies — the path the count backend used to refuse."""
        game = hawk_dove_game(2.0, 4.0)
        runs, steps, n = 250, 250, 24
        means = {}
        for forced in (True, False):
            total = 0.0
            for r in range(runs):
                sim = PopulationGameSimulation(
                    game, n, rule="imitation", seed=5000 + r,
                    backend="count", weights="twoclass:4")
                engine = sim._engine
                assert isinstance(engine, WeightedCountBackend)
                # Rebuild on the forced strategy from the same start.
                backend = WeightedCountBackend(
                    engine.model, engine.class_state_counts,
                    engine.class_weights, seed=np.random.default_rng(r),
                    vectorized=forced)
                backend.run(steps)
                total += backend.counts[0]
            means[forced] = total / runs
        assert abs(means[True] - means[False]) < 1.5, means

    def test_observation_trajectories_align(self):
        """Observation cadences and totals are identical in structure
        across strategies (steps axis exact, counts conserved)."""
        model = TableModel(epidemic_table())
        initial = np.array([[90, 5], [100, 5]], dtype=np.int64)
        class_weights = np.array([1.0, 3.0])
        for forced in (True, False):
            backend = WeightedCountBackend(model, initial, class_weights,
                                           seed=8, vectorized=forced)
            result = backend.run(1000, observe_every=37)
            steps_axis = [step for step, _ in result.observations]
            assert steps_axis == [0] + list(range(37, 1001, 37))
            for _, counts in result.observations:
                assert counts.sum() == 200


class TestUniformDegeneracy:
    def test_single_class_matches_uniform_count_backend(self):
        """C = 1: the heterogeneous schedule is the uniform birthday
        problem; the law matches CountBackend on the same chain."""
        model = TableModel(epidemic_table())
        n, steps, runs = 60, 150, 1400
        totals = {}
        rng = np.random.default_rng(77)
        total = 0.0
        for _ in range(runs):
            backend = WeightedCountBackend(
                model, np.array([[n - 3, 3]]), np.array([2.5]),
                seed=rng, vectorized=False)
            total += backend.run(steps).counts[1]
        totals["weighted"] = total / runs
        rng = np.random.default_rng(78)
        total = 0.0
        for _ in range(runs):
            backend = CountBackend(model, np.array([n - 3, 3]), seed=rng)
            total += backend.run(steps).counts[1]
        totals["uniform"] = total / runs
        assert abs(totals["weighted"] - totals["uniform"]) < 1.5, totals
