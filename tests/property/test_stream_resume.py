"""Crash-equals-uninterrupted for *streamed* observations.

:func:`~repro.engine.snapshot.run_resumable` carries the observer
sink's resume token inside every segment snapshot; a resumed
:class:`~repro.engine.observe.JsonlSink` truncates back to the last
durable position and continues.  The property under test: however a
streaming run dies, re-entering ``run_resumable`` with the surviving
snapshot produces a stream file **byte-identical** to one written by an
uninterrupted run.  (The real-SIGKILL end-to-end version of this lives
in ``scripts/run_chaos_smoke.py``.)
"""

import numpy as np
import pytest

from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.engine import JsonlSink, MemorySink, run_resumable
from repro.engine.snapshot import RecordingChannel

STEPS = 50_000
CADENCE = 1_000


class AbortChannel(RecordingChannel):
    """Raise out of ``run_resumable`` after the n-th checkpoint lands.

    The saved snapshots stay durable (appended before the raise), so
    the abort models a process that dies *after* a checkpoint — the
    worst case for a stream, whose file holds rows past the snapshot.
    """

    def __init__(self, abort_after: int, initial=None):
        super().__init__(initial=initial)
        self.abort_after = int(abort_after)

    def save(self, snapshot) -> None:
        super().save(snapshot)
        if len(self.snapshots) >= self.abort_after:
            raise RuntimeError("simulated crash after checkpoint")


def fresh_sim():
    shares = PopulationShares(alpha=0.2, beta=0.3, gamma=0.5)
    grid = GenerosityGrid(k=3, g_max=0.6)
    return IGTSimulation(n=2000, shares=shares, grid=grid, seed=99,
                         backend="count")


def stream_run(path, channel):
    sink = JsonlSink(path)
    sim = fresh_sim()
    run_resumable(sim, STEPS, None, check_stop_every=CADENCE,
                  channel=channel, observe_every=CADENCE, observe=sink)
    sink.close()
    return sim


class TestStreamedResume:
    def test_channel_is_invisible_to_the_stream(self, tmp_path):
        # The segment boundaries are part of the execution law, so a
        # channel-less run and a checkpointing run stream identical
        # records: one row per cadence point, no boundary duplicates.
        bare = MemorySink()
        run_resumable(fresh_sim(), STEPS, None, check_stop_every=CADENCE,
                      observe_every=CADENCE, observe=bare)
        checkpointed = MemorySink()
        recording = RecordingChannel()
        run_resumable(fresh_sim(), STEPS, None, check_stop_every=CADENCE,
                      channel=recording, observe_every=CADENCE,
                      observe=checkpointed)
        assert recording.snapshots  # it really checkpointed
        assert (len(bare.records) == len(checkpointed.records)
                == STEPS // CADENCE + 1)
        for (step, counts), (want_step, want_counts) in zip(
                bare.records, checkpointed.records):
            assert step == want_step
            np.testing.assert_array_equal(counts, want_counts)
        assert [step for step, _ in bare.records] \
            == list(range(0, STEPS + 1, CADENCE))

    @pytest.mark.parametrize("abort_after", [1, 3, 5])
    def test_crash_resume_stream_is_byte_identical(self, tmp_path,
                                                   abort_after):
        reference = stream_run(tmp_path / "reference.jsonl",
                               RecordingChannel())

        crashed = AbortChannel(abort_after)
        with pytest.raises(RuntimeError, match="simulated crash"):
            stream_run(tmp_path / "resumed.jsonl", crashed)
        # The dead run's file extends past its last durable snapshot.
        assert (tmp_path / "resumed.jsonl").stat().st_size > 0

        # A fresh process: new simulation object, new sink on the same
        # path, the channel serving the last durable snapshot.
        resumed = stream_run(
            tmp_path / "resumed.jsonl",
            RecordingChannel(initial=crashed.snapshots[-1]))

        assert ((tmp_path / "resumed.jsonl").read_bytes()
                == (tmp_path / "reference.jsonl").read_bytes())
        assert resumed.steps_run == reference.steps_run
        np.testing.assert_array_equal(resumed.counts, reference.counts)

    def test_double_crash_still_converges(self, tmp_path):
        reference = stream_run(tmp_path / "reference.jsonl",
                               RecordingChannel())

        first = AbortChannel(2)
        with pytest.raises(RuntimeError):
            stream_run(tmp_path / "twice.jsonl", first)
        second = AbortChannel(2, initial=first.snapshots[-1])
        with pytest.raises(RuntimeError):
            stream_run(tmp_path / "twice.jsonl", second)
        resumed = stream_run(
            tmp_path / "twice.jsonl",
            RecordingChannel(initial=second.snapshots[-1]))

        assert ((tmp_path / "twice.jsonl").read_bytes()
                == (tmp_path / "reference.jsonl").read_bytes())
        np.testing.assert_array_equal(resumed.counts, reference.counts)
