"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mean_field import drift_generator, mean_field_stationary
from repro.games.base import MatrixGame
from repro.games.donation import DonationGame
from repro.games.moran import MoranProcess
from repro.games.zd import max_feasible_phi, zd_strategy
from repro.markov.birth_death import BirthDeathChain
from repro.markov.ehrenfest import EhrenfestProcess
from repro.utils.errors import InvalidParameterError

rates = st.tuples(
    st.floats(min_value=0.05, max_value=0.9),
    st.floats(min_value=0.05, max_value=0.9),
).filter(lambda ab: ab[0] + ab[1] <= 1.0)


class TestBirthDeathProperties:
    @given(n=st.integers(min_value=1, max_value=8),
           raw=st.lists(st.floats(min_value=0.05, max_value=0.45),
                        min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_product_stationary_solves_chain(self, n, raw):
        births = np.array(raw[:n])
        deaths = np.array(raw[n:2 * n])
        chain = BirthDeathChain(births, deaths)
        pi = chain.stationary_distribution()
        assert chain.chain().is_stationary(pi, atol=1e-8)

    @given(n=st.integers(min_value=1, max_value=8),
           raw=st.lists(st.floats(min_value=0.05, max_value=0.45),
                        min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_hitting_times_positive_and_additive(self, n, raw):
        births = np.array(raw[:n])
        deaths = np.array(raw[n:2 * n])
        chain = BirthDeathChain(births, deaths)
        total = chain.expected_hitting_time(0, n)
        assert total > 0
        if n >= 2:
            split = (chain.expected_hitting_time(0, 1)
                     + chain.expected_hitting_time(1, n))
            assert total == pytest.approx(split, rel=1e-9)


class TestMeanFieldProperties:
    @given(k=st.integers(min_value=2, max_value=8), ab=rates)
    @settings(max_examples=30, deadline=None)
    def test_stationary_matches_ehrenfest_weights(self, k, ab):
        a, b = ab
        process = EhrenfestProcess(k=k, a=a, b=b, m=3)
        assert np.allclose(mean_field_stationary(k, a, b),
                           process.stationary_weights(), atol=1e-8)

    @given(k=st.integers(min_value=2, max_value=8), ab=rates)
    @settings(max_examples=30, deadline=None)
    def test_generator_conserves_mass(self, k, ab):
        a, b = ab
        A = drift_generator(k, a, b)
        assert np.allclose(A.sum(axis=0), 0.0, atol=1e-12)


class TestZdProperties:
    @given(slope=st.floats(min_value=1.0, max_value=10.0),
           fraction=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_extortion_probabilities_always_valid(self, slope, fraction):
        game = DonationGame(4.0, 1.0)
        strategy = zd_strategy(game, baseline=0.0, slope=slope,
                               phi_fraction=fraction)
        assert all(0.0 <= p <= 1.0 for p in strategy.coop_probs)

    @given(baseline=st.floats(min_value=-2.0, max_value=5.0),
           slope=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_feasibility_boundary_consistent(self, baseline, slope):
        """If a positive phi exists, constructing at it yields valid
        probabilities; if not, construction raises."""
        game = DonationGame(4.0, 1.0)
        phi_max = max_feasible_phi(game, baseline, slope)
        if phi_max > 0:
            strategy = zd_strategy(game, baseline, slope, phi_fraction=1.0)
            assert all(-1e-9 <= p <= 1 + 1e-9
                       for p in strategy.coop_probs)
        else:
            with pytest.raises(InvalidParameterError):
                zd_strategy(game, baseline, slope)


class TestMoranProperties:
    @given(n=st.integers(min_value=2, max_value=20),
           start=st.integers(min_value=0, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_neutral_fixation_is_start_over_n(self, n, start):
        if start > n:
            return
        game = MatrixGame(np.array([[1.0, 1.0], [1.0, 1.0]]))
        process = MoranProcess(game, n=n, selection_intensity=0.5)
        assert process.fixation_probability(start) == \
            pytest.approx(start / n, abs=1e-9)

    @given(n=st.integers(min_value=3, max_value=15),
           payoffs=st.lists(st.floats(min_value=0.1, max_value=5.0),
                            min_size=4, max_size=4),
           w=st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=40, deadline=None)
    def test_fixation_probability_in_unit_interval(self, n, payoffs, w):
        game = MatrixGame(np.array(payoffs).reshape(2, 2))
        process = MoranProcess(game, n=n, selection_intensity=w)
        for start in (1, n // 2, n - 1):
            rho = process.fixation_probability(start)
            assert 0.0 <= rho <= 1.0

    @given(n=st.integers(min_value=3, max_value=12),
           payoffs=st.lists(st.floats(min_value=0.1, max_value=5.0),
                            min_size=4, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_complementary_fixation(self, n, payoffs):
        """rho_A(start) + rho_B(n - start) = 1: someone always fixates."""
        game = MatrixGame(np.array(payoffs).reshape(2, 2))
        process = MoranProcess(game, n=n, selection_intensity=0.3)
        mirrored = MatrixGame(game.row_payoffs[::-1, ::-1].copy())
        mirror = MoranProcess(mirrored, n=n, selection_intensity=0.3)
        for start in (1, n // 2):
            total = (process.fixation_probability(start)
                     + mirror.fixation_probability(n - start))
            assert total == pytest.approx(1.0, abs=1e-9)
