"""Crash-safety properties: snapshot/restore is bit-for-bit exact.

The contract under test (see :mod:`repro.engine.snapshot`): an engine
snapshot taken between ``run()`` calls, restored into a *freshly
constructed* engine with identical arguments, continues the trajectory
byte-identically — same counts, same per-agent states, same
observations, same generator bitstream position — across all three
backends, both execution paths of the count engines (array proxy and
birthday batching), stochastic kernels (peel stamps), weighted
populations, and graph topologies.  The second half exercises the
durability machinery itself: the checksummed on-disk store's fallback
ladder under torn writes, and the :mod:`repro.testing.faults` crash
harness via real subprocess deaths.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.engine import (
    AgentBackend,
    CountBackend,
    SnapshotError,
    SnapshotState,
    SnapshotStore,
    WeightedCountBackend,
    igt_model,
    matrix_game_model,
    run_resumable,
    use_snapshot_channel,
)
from repro.engine.snapshot import (
    FileSnapshotChannel,
    RecordingChannel,
    decode_array,
    encode_array,
)
from repro.testing import FaultSpec, crash_point, reset_faults
from repro.testing.faults import CRASH_EXIT_CODE, FAULTS_ENV
from repro.utils.errors import InvalidParameterError

PAYOFFS = np.array([[3.0, 0.0], [5.0, 1.0]])  # prisoner's dilemma


def det_model():
    return igt_model(3)  # 5-state deterministic one-way table


def logit_model():
    return matrix_game_model(PAYOFFS, "logit", eta=0.7)  # stochastic one-way


def initial_states(n, n_states, seed=7):
    return np.random.default_rng(seed).integers(0, n_states, size=n)


def initial_counts(n, n_states, seed=7):
    return np.bincount(initial_states(n, n_states, seed),
                       minlength=n_states).astype(np.int64)


def engine_rng(engine):
    return getattr(engine, "rng", None) or engine.scheduler.rng


# A run plan mixes plain runs, stop-checked runs, and observed runs so
# every post-restore code path consumes the generator.
def run_plan(engine, plan):
    results = []
    for steps, kwargs in plan:
        results.append(engine.run(steps, **kwargs))
    return results


PRE_PLAN = [(900, {}), (450, {"stop_when": lambda z: False,
                              "check_stop_every": 64})]
POST_PLAN = [(700, {"observe_every": 128}),
             (500, {"stop_when": lambda z: False, "check_stop_every": 50}),
             (333, {})]


def assert_resumes_identically(factory, pre_plan=None, post_plan=None):
    """run(a); snapshot; run(b)  ==  fresh().restore(snapshot); run(b)."""
    pre_plan = PRE_PLAN if pre_plan is None else pre_plan
    post_plan = POST_PLAN if post_plan is None else post_plan
    original = factory()
    run_plan(original, pre_plan)
    # Round-trip through the checksummed byte format: the restored
    # object is exactly what a crashed process would read back.
    snapshot = SnapshotState.from_bytes(original.snapshot().to_bytes())
    resumed = factory()
    resumed.restore(snapshot)
    assert resumed.steps_run == original.steps_run
    for steps, kwargs in post_plan:
        left = original.run(steps, **kwargs)
        right = resumed.run(steps, **kwargs)
        assert left.steps == right.steps
        assert left.converged == right.converged
        np.testing.assert_array_equal(left.counts, right.counts)
        if left.states is not None:
            np.testing.assert_array_equal(left.states, right.states)
        assert len(left.observations) == len(right.observations)
        for (step_a, counts_a), (step_b, counts_b) in zip(
                left.observations, right.observations):
            assert step_a == step_b
            np.testing.assert_array_equal(counts_a, counts_b)
    # The generators stayed in bitstream lockstep through it all.
    np.testing.assert_array_equal(
        engine_rng(original).integers(0, 2 ** 62, size=8),
        engine_rng(resumed).integers(0, 2 ** 62, size=8))


# ----------------------------------------------------------------------
# Backend x path matrix
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    def test_agent_backend_table_loop(self):
        assert_resumes_identically(lambda: AgentBackend(
            det_model(), initial_states(300, 5), seed=11, vectorized=False))

    def test_agent_backend_table_vectorized(self):
        assert_resumes_identically(lambda: AgentBackend(
            det_model(), initial_states(2000, 5), seed=12, vectorized=True))

    def test_agent_backend_stochastic_loop(self):
        assert_resumes_identically(lambda: AgentBackend(
            logit_model(), initial_states(200, 2), seed=13))

    def test_agent_backend_stochastic_kernel_stamps(self):
        # Stochastic kernel: the peel stamps are part of the captured
        # state (they set per-round model.apply draw counts).
        assert_resumes_identically(lambda: AgentBackend(
            logit_model(), initial_states(1500, 2), seed=14,
            vectorized=True))

    def test_count_backend_proxy(self):
        assert_resumes_identically(lambda: CountBackend(
            det_model(), initial_counts(5000, 5), seed=21))

    def test_count_backend_proxy_stochastic(self):
        assert_resumes_identically(lambda: CountBackend(
            logit_model(), initial_counts(4000, 2), seed=22,
            vectorized=True))

    def test_count_backend_proxy_pair_counts(self):
        def factory():
            return CountBackend(det_model(), initial_counts(3000, 5),
                                seed=23, track_pair_counts=True)

        assert_resumes_identically(factory)
        original, resumed = factory(), factory()
        run_plan(original, PRE_PLAN)
        resumed.restore(original.snapshot())
        original.run(400)
        resumed.run(400)
        np.testing.assert_array_equal(original.pair_counts,
                                      resumed.pair_counts)

    def test_count_backend_birthday(self):
        assert_resumes_identically(lambda: CountBackend(
            det_model(), initial_counts(5000, 5), seed=24,
            vectorized=False))

    def test_count_backend_birthday_pair_counts(self):
        assert_resumes_identically(lambda: CountBackend(
            det_model(), initial_counts(2500, 5), seed=25,
            vectorized=False, track_pair_counts=True))

    def weighted_counts(self, n_states=5):
        counts = np.array([initial_counts(900, n_states, seed=3),
                           initial_counts(2100, n_states, seed=4)])
        return counts, np.array([1.0, 3.5])

    def test_weighted_backend_proxy(self):
        counts, weights = self.weighted_counts()
        assert_resumes_identically(lambda: WeightedCountBackend(
            det_model(), counts, weights, seed=31))

    def test_weighted_backend_birthday(self):
        counts, weights = self.weighted_counts()
        assert_resumes_identically(lambda: WeightedCountBackend(
            det_model(), counts, weights, seed=32, vectorized=False))

    def test_weighted_backend_birthday_stochastic(self):
        counts, weights = self.weighted_counts(n_states=2)
        assert_resumes_identically(lambda: WeightedCountBackend(
            logit_model(), counts, weights, seed=33, vectorized=False))


# ----------------------------------------------------------------------
# Facade (IGTSimulation), including graph topologies
# ----------------------------------------------------------------------
def igt_sim(**kwargs):
    shares = PopulationShares(alpha=0.2, beta=0.2, gamma=0.6)
    grid = GenerosityGrid(k=4, g_max=0.6)
    defaults = dict(n=600, shares=shares, grid=grid, seed=5)
    defaults.update(kwargs)
    return IGTSimulation(**defaults)


class TestFacade:
    @pytest.mark.parametrize("backend", ["agent", "count"])
    def test_igt_simulation_resumes(self, backend):
        def continue_plan(sim):
            sim.run(1000)
            sim.run_until(800, lambda z: False, check_stop_every=100)
            return sim.counts.copy()

        original = igt_sim(backend=backend)
        original.run(1500)
        snapshot = SnapshotState.from_bytes(original.snapshot().to_bytes())
        resumed = igt_sim(backend=backend)
        resumed.restore(snapshot)
        assert resumed.steps_run == original.steps_run
        np.testing.assert_array_equal(continue_plan(original),
                                      continue_plan(resumed))
        assert original.steps_run == resumed.steps_run

    def test_igt_simulation_topology(self):
        # Graph-restricted pairing runs on the agent backend with a
        # GraphScheduler; the shared generator is the only mutable
        # scheduler state, so restore realigns the whole pipeline.
        original = igt_sim(topology="ring", n=400)
        original.run(1200)
        snapshot = original.snapshot()
        resumed = igt_sim(topology="ring", n=400)
        resumed.restore(snapshot)
        original.run(900)
        resumed.run(900)
        np.testing.assert_array_equal(original.counts, resumed.counts)
        np.testing.assert_array_equal(original.indices, resumed.indices)

    def test_step_loop_paths_refuse_snapshot(self):
        from repro.core.equilibrium import RDSetting

        setting = RDSetting(b=4.0, c=1.0, delta=0.7, s1=0.5)
        sim = igt_sim(mode="action", setting=setting, n=50)
        with pytest.raises(InvalidParameterError, match="backend='count'"):
            sim.snapshot()
        with pytest.raises(InvalidParameterError):
            sim.restore(SnapshotState(kind="agent",
                                      payload={"steps_run": 0}))


# ----------------------------------------------------------------------
# Validation: wrong engine, wrong shape, torn bytes, version skew
# ----------------------------------------------------------------------
class TestValidation:
    def test_kind_mismatch_refused(self):
        count = CountBackend(det_model(), initial_counts(100, 5), seed=1)
        agent = AgentBackend(det_model(), initial_states(100, 5), seed=1)
        with pytest.raises(SnapshotError, match="'count'"):
            agent.restore(count.snapshot())

    def test_shape_mismatch_refused(self):
        small = CountBackend(det_model(), initial_counts(100, 5), seed=1)
        large = CountBackend(det_model(), initial_counts(200, 5), seed=1)
        with pytest.raises(SnapshotError, match="identical arguments"):
            large.restore(small.snapshot())

    def test_proxy_flag_mismatch_refused(self):
        proxy = CountBackend(det_model(), initial_counts(500, 5), seed=1)
        birthday = CountBackend(det_model(), initial_counts(500, 5),
                                seed=1, vectorized=False)
        with pytest.raises(SnapshotError, match="proxy"):
            birthday.restore(proxy.snapshot())

    def test_torn_bytes_detected(self):
        data = SnapshotState(kind="count",
                             payload={"steps_run": 9}).to_bytes()
        for torn in (data[:len(data) // 2], data[:-1], b"", b"not json"):
            with pytest.raises(SnapshotError):
                SnapshotState.from_bytes(torn)

    def test_checksum_mismatch_detected(self):
        data = SnapshotState(kind="count", payload={"steps_run": 9})
        corrupted = data.to_bytes().replace(b'steps_run\\":9',
                                            b'steps_run\\":8')
        assert corrupted != data.to_bytes()  # the flip really landed
        with pytest.raises(SnapshotError, match="checksum"):
            SnapshotState.from_bytes(corrupted)

    def test_version_skew_refused(self):
        snapshot = SnapshotState(kind="count", payload={"steps_run": 1},
                                 version=99)
        with pytest.raises(SnapshotError, match="version"):
            SnapshotState.from_bytes(snapshot.to_bytes())
        with pytest.raises(SnapshotError, match="version"):
            SnapshotState.from_wire(snapshot.to_wire())

    def test_array_codec_roundtrip_and_malformed(self):
        arrays = [np.arange(7, dtype=np.int64),
                  np.zeros((3, 4), dtype=np.float64),
                  np.array([], dtype=np.int32)]
        for array in arrays:
            back = decode_array(encode_array(array))
            assert back.dtype == array.dtype
            np.testing.assert_array_equal(back, array)
        with pytest.raises(SnapshotError, match="malformed"):
            decode_array({"__ndarray__": "!!!", "dtype": "int64",
                          "shape": [1]})

    def test_exact_large_integers_survive_the_wire(self):
        # PCG64 state words are 128-bit; they must round-trip exactly.
        huge = (1 << 127) + 12345
        snapshot = SnapshotState(kind="count",
                                 payload={"steps_run": 3, "word": huge})
        assert SnapshotState.from_bytes(
            snapshot.to_bytes()).payload["word"] == huge


# ----------------------------------------------------------------------
# The on-disk store: atomicity, checksums, the fallback ladder
# ----------------------------------------------------------------------
def store_snapshot(cursor: int) -> SnapshotState:
    return SnapshotState(kind="count", payload={"steps_run": cursor})


class TestSnapshotStore:
    def test_save_load_clear(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        assert store.load("task") is None
        store.save("task", store_snapshot(1))
        assert store.load("task").steps_run == 1
        store.save("task", store_snapshot(2))
        assert store.load("task").steps_run == 2
        store.clear("task")
        assert store.load("task") is None
        assert not list((tmp_path / "snaps").glob("task*"))

    def test_torn_latest_falls_back_to_previous(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("task", store_snapshot(1))
        store.save("task", store_snapshot(2))
        latest = tmp_path / "task.snap"
        latest.write_bytes(latest.read_bytes()[:20])
        assert store.load("task").steps_run == 1

    def test_all_generations_torn_means_clean_start(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("task", store_snapshot(1))
        store.save("task", store_snapshot(2))
        (tmp_path / "task.snap").write_bytes(b"torn")
        (tmp_path / "task.snap.prev").write_bytes(b"also torn")
        assert store.load("task") is None

    def test_keys_cannot_escape_the_root(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for bad in ("", "a/b", "..", "a\\b", "../../etc"):
            with pytest.raises(SnapshotError, match="invalid snapshot key"):
                store.save(bad, store_snapshot(1))

    def test_no_temp_files_left_behind(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for cursor in range(4):
            store.save("task", store_snapshot(cursor))
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix not in (".snap", ".prev")]
        assert leftovers == []


# ----------------------------------------------------------------------
# run_resumable: the segmented law and mid-run crash recovery
# ----------------------------------------------------------------------
class TestRunResumable:
    def final_state(self, sim):
        return (sim.steps_run, sim.counts.copy())

    def test_channel_is_invisible_to_the_trajectory(self, tmp_path):
        # Uninterrupted, channel-less and channel-ful runs are all
        # byte-identical: segmentation is unconditional, saving is
        # read-only.
        def run_with(channel):
            sim = igt_sim(backend="count")
            run_resumable(sim, 6000, lambda z: False,
                          check_stop_every=100, channel=channel)
            return self.final_state(sim)

        bare_steps, bare_counts = run_with(None)
        recording = RecordingChannel()
        rec_steps, rec_counts = run_with(recording)
        file_channel = FileSnapshotChannel(SnapshotStore(tmp_path), "cell")
        file_steps, file_counts = run_with(file_channel)
        assert bare_steps == rec_steps == file_steps
        np.testing.assert_array_equal(bare_counts, rec_counts)
        np.testing.assert_array_equal(bare_counts, file_counts)
        assert len(recording.snapshots) > 1  # it really checkpointed

    def test_crash_and_resume_matches_uninterrupted(self):
        recording = RecordingChannel()
        reference = igt_sim(backend="count")
        run_resumable(reference, 6000, lambda z: False,
                      check_stop_every=100, channel=recording)
        # "Crash" after each checkpoint: a fresh process would reload
        # the latest snapshot and re-enter run_resumable with the same
        # arguments.  Every resume point must converge to the same end.
        for crashed_at in (0, len(recording.snapshots) // 2,
                           len(recording.snapshots) - 1):
            resumed = igt_sim(backend="count")
            channel = RecordingChannel(
                initial=recording.snapshots[crashed_at])
            run_resumable(resumed, 6000, lambda z: False,
                          check_stop_every=100, channel=channel)
            assert self.final_state(resumed)[0] == reference.steps_run
            np.testing.assert_array_equal(resumed.counts, reference.counts)

    def test_ambient_channel_is_picked_up(self):
        recording = RecordingChannel()
        sim = igt_sim(backend="count")
        with use_snapshot_channel(recording):
            run_resumable(sim, 4000, lambda z: False, check_stop_every=100)
        assert recording.snapshots

    def test_early_convergence_stops_segmenting(self):
        recording = RecordingChannel()
        sim = igt_sim(backend="count")
        converged = run_resumable(sim, 50_000, lambda z: True,
                                  check_stop_every=100, channel=recording)
        assert converged
        # Converged on the first check of the first segment: no
        # checkpoint was ever worth writing.
        assert recording.snapshots == []

    def test_segment_boundaries_are_deterministic(self):
        left, right = igt_sim(backend="count"), igt_sim(backend="count")
        run_resumable(left, 5000, lambda z: False, check_stop_every=77)
        run_resumable(right, 5000, lambda z: False, check_stop_every=77)
        np.testing.assert_array_equal(left.counts, right.counts)
        assert left.steps_run == right.steps_run == 5000


# ----------------------------------------------------------------------
# Fault injection: real process deaths at armed crash points
# ----------------------------------------------------------------------
CHILD_SCRIPT = """
import sys
from repro.engine.snapshot import SnapshotState, SnapshotStore

store = SnapshotStore(sys.argv[1])
for cursor in (1, 2, 3):
    store.save("task", SnapshotState(kind="count",
                                     payload={"steps_run": cursor}))
print("survived")
"""


def run_child(tmp_path, faults):
    env = dict(os.environ)
    env[FAULTS_ENV] = faults
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    return subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT, str(tmp_path)],
        env=env, capture_output=True, text=True, timeout=120)


class TestFaultInjection:
    def test_spec_parsing(self):
        spec = FaultSpec.parse("snapshot.post-save:3:kill")
        assert (spec.point, spec.hits, spec.mode) == ("snapshot.post-save",
                                                      3, "kill")
        assert FaultSpec.parse("a.b:1").mode == "exit"
        for bad in ("", "a.b", "a.b:0", "a.b:1:nope", "a:b:c:d"):
            with pytest.raises(ValueError):
                FaultSpec.parse(bad)

    def test_unarmed_crash_points_are_free(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        reset_faults()
        crash_point("snapshot.post-save")  # must simply return

    def test_armed_point_fires_at_nth_hit_only(self, tmp_path):
        result = run_child(tmp_path, "snapshot.post-save:2")
        assert result.returncode == CRASH_EXIT_CODE
        # Generations 1 and 2 are durable; 3 never happened.
        assert SnapshotStore(tmp_path).load("task").steps_run == 2

    def test_unrelated_points_do_not_fire(self, tmp_path):
        result = run_child(tmp_path, "worker.pre-submit:1")
        assert result.returncode == 0
        assert "survived" in result.stdout
        assert SnapshotStore(tmp_path).load("task").steps_run == 3

    def test_mid_write_crash_keeps_previous_generation(self, tmp_path):
        # Death between the temp write and the atomic renames: the
        # prior generations are untouched.
        result = run_child(tmp_path, "snapshot.mid-write:3")
        assert result.returncode == CRASH_EXIT_CODE
        assert SnapshotStore(tmp_path).load("task").steps_run == 2

    def test_torn_write_falls_down_the_ladder(self, tmp_path):
        # The tear corrupts the *latest* generation in place
        # (simulating a non-atomic filesystem tear); the checksum
        # rejects it and the previous generation is served.
        result = run_child(tmp_path, "snapshot.mid-write:3:torn")
        assert result.returncode == CRASH_EXIT_CODE
        loaded = SnapshotStore(tmp_path).load("task")
        assert loaded is not None
        assert loaded.steps_run == 1
