"""Fabric crash-safety and auth tests.

Pins down the two robustness surfaces the distributed fabric grew:

* **Token auth** — a coordinator started with a token answers every
  unauthenticated request (including ``GET /status``) with a
  deterministic HTTP 401 that is never retried, and the token threads
  through :class:`Worker`, :class:`RemotePool`, and the heartbeat.
* **Mid-task snapshots** — workers post engine checkpoints to
  ``/snapshot``, the coordinator persists them in its own
  :class:`~repro.engine.snapshot.SnapshotStore`, re-leases of the same
  task carry the latest checkpoint so a replacement worker continues
  the trajectory mid-run, and a stored ``/result`` retires the key's
  snapshots.
"""

import threading
import urllib.error
import urllib.request

import pytest

from repro.engine.snapshot import SnapshotState
from repro.fabric import (
    Coordinator,
    FabricServer,
    ProtocolError,
    RemotePool,
    UnknownLeaseError,
    Worker,
    remote_execute,
    task_to_wire,
)
from repro.fabric.protocol import STATUS_UNAUTHORIZED, http_call
from repro.fabric.worker import EXIT_DRAINED, EXIT_LEASE_REJECTED
from repro.runner import RunPlan, RunTask, run_task

QUIET = {"log": lambda message: None}
TOKEN = "s3cret-fabric-token"


@pytest.fixture
def guarded(tmp_path):
    coordinator = Coordinator(tmp_path / "cache", lease_ttl=30.0)
    server = FabricServer(coordinator, token=TOKEN).start()
    yield server
    server.close()


@pytest.fixture
def server(tmp_path):
    coordinator = Coordinator(tmp_path / "cache", lease_ttl=30.0)
    server = FabricServer(coordinator).start()
    yield server
    server.close()


def one_task_plan() -> RunPlan:
    return RunPlan(tasks=(RunTask(experiment_id="E1", seed=7),))


def lease_snapshot_wire(server, payload) -> dict:
    """Submit one task, lease it, and post ``payload`` as a snapshot."""
    task = RunTask(experiment_id="E1", seed=7)
    keys = http_call(server.url, "/submit", {"tasks": [task_to_wire(task)]})[
        "keys"
    ]
    lease = http_call(server.url, "/lease", {"worker": "w1"})["lease"]
    wire = SnapshotState(kind="count", payload=payload).to_wire()
    response = http_call(
        server.url,
        "/snapshot",
        {"lease_id": lease["lease_id"], "worker": "w1", "snapshot": wire},
    )
    return {"keys": keys, "lease": lease, "response": response}


class TestTokenAuth:
    def test_missing_token_is_401(self, guarded):
        with pytest.raises(ProtocolError, match="token") as info:
            http_call(guarded.url, "/status", {})
        assert info.value.status == STATUS_UNAUTHORIZED

    def test_wrong_token_is_401(self, guarded):
        with pytest.raises(ProtocolError, match="token") as info:
            http_call(guarded.url, "/status", {}, token="not-the-token")
        assert info.value.status == STATUS_UNAUTHORIZED

    def test_get_status_is_guarded_too(self, guarded):
        # The read-only GET surface must not leak queue state either.
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(f"{guarded.url}/status", timeout=5.0)
        assert info.value.code == STATUS_UNAUTHORIZED

    def test_correct_token_is_accepted(self, guarded):
        status = http_call(guarded.url, "/status", {}, token=TOKEN)
        assert status["tasks"] == 0

    def test_tokenless_worker_exits_loudly(self, guarded):
        worker = Worker(guarded.url, retries=0, **QUIET)
        assert worker.run_forever() == EXIT_LEASE_REJECTED

    def test_tokened_sweep_and_worker_drain(self, guarded):
        plan = one_task_plan()
        worker = Worker(
            guarded.url,
            max_tasks=1,
            poll=0.05,
            retries=2,
            backoff=0.05,
            token=TOKEN,
            **QUIET,
        )
        thread = threading.Thread(target=worker.run_forever, daemon=True)
        thread.start()
        report = remote_execute(plan, guarded.url, poll=0.05, token=TOKEN)
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert [r.source for r in report.results] == ["executed"]

    def test_tokenless_pool_is_rejected(self, guarded):
        with pytest.raises(ProtocolError, match="token"):
            RemotePool(guarded.url, retries=0).run(one_task_plan().tasks)


class TestSnapshotEndpoint:
    def test_snapshot_stored_and_relayed_on_next_lease(self, server):
        state = lease_snapshot_wire(server, {"steps_run": 7})
        assert state["response"] == {"ok": True, "state": "active"}
        key = state["lease"]["key"]
        found = server.coordinator.snapshots.load(key)
        assert found is not None and found.payload == {"steps_run": 7}

        # The worker dies (release); the replacement's lease carries
        # the checkpoint it should continue from.
        http_call(
            server.url,
            "/release",
            {"lease_id": state["lease"]["lease_id"], "error": "killed"},
        )
        release = http_call(server.url, "/lease", {"worker": "w2"})["lease"]
        assert release["key"] == key
        assert release["snapshot"]["payload"] == {"steps_run": 7}

    def test_unknown_lease_is_409(self, server):
        wire = SnapshotState(kind="count", payload={"steps_run": 1}).to_wire()
        with pytest.raises(UnknownLeaseError):
            http_call(
                server.url,
                "/snapshot",
                {"lease_id": "never-issued", "worker": "w", "snapshot": wire},
            )

    def test_malformed_snapshot_is_rejected(self, server):
        state = lease_snapshot_wire(server, {"steps_run": 1})
        with pytest.raises(ProtocolError, match="snapshot"):
            http_call(
                server.url,
                "/snapshot",
                {
                    "lease_id": state["lease"]["lease_id"],
                    "worker": "w1",
                    "snapshot": {"bogus": True},
                },
            )
        with pytest.raises(ProtocolError, match="snapshot"):
            http_call(
                server.url,
                "/snapshot",
                {"lease_id": state["lease"]["lease_id"], "worker": "w1"},
            )

    def test_released_lease_answers_idempotently(self, server):
        state = lease_snapshot_wire(server, {"steps_run": 1})
        http_call(
            server.url,
            "/release",
            {"lease_id": state["lease"]["lease_id"], "error": "died"},
        )
        wire = SnapshotState(kind="count", payload={"steps_run": 2}).to_wire()
        late = http_call(
            server.url,
            "/snapshot",
            {
                "lease_id": state["lease"]["lease_id"],
                "worker": "w1",
                "snapshot": wire,
            },
        )
        assert late == {"ok": False, "state": "released"}
        # The late post changed nothing.
        key = state["lease"]["key"]
        assert server.coordinator.snapshots.load(key).payload == {
            "steps_run": 1
        }

    def test_stored_result_clears_snapshots(self, server):
        state = lease_snapshot_wire(server, {"steps_run": 3})
        key = state["lease"]["key"]
        payload, seconds = run_task(RunTask(experiment_id="E1", seed=7))
        http_call(
            server.url,
            "/result",
            {
                "lease_id": state["lease"]["lease_id"],
                "worker": "w1",
                "report": payload,
                "seconds": seconds,
            },
        )
        assert server.coordinator.snapshots.load(key) is None


class TestWorkerContinuation:
    def test_crashed_worker_checkpoint_reaches_replacement(self, server):
        """A worker checkpoints, dies; the retry resumes from it."""
        http_call(
            server.url,
            "/submit",
            {"tasks": [task_to_wire(RunTask(experiment_id="E1", seed=5))]},
        )
        seen = []

        def crashy_then_resume(task):
            from repro.engine.snapshot import current_channel

            channel = current_channel()
            found = channel.load()
            seen.append(None if found is None else found.payload["steps_run"])
            if len(seen) == 1:
                channel.save(
                    SnapshotState(kind="count", payload={"steps_run": 7})
                )
                raise RuntimeError("simulated crash after checkpoint")
            return run_task(task)

        worker = Worker(
            server.url,
            max_tasks=1,
            poll=0.05,
            retries=2,
            backoff=0.05,
            run=crashy_then_resume,
            **QUIET,
        )
        assert worker.run_forever() == EXIT_DRAINED
        # First attempt started clean; the retry saw the crashed
        # attempt's checkpoint attached to its lease.
        assert seen == [None, 7]
        status = http_call(server.url, "/status", {})
        assert status["done"] == 1

    def test_corrupt_lease_snapshot_is_fatal(self, server):
        def loading_run(task):
            from repro.engine.snapshot import current_channel

            current_channel().load()
            return run_task(task)

        worker = Worker(server.url, run=loading_run, retries=0, **QUIET)
        lease = {
            "lease_id": "L1",
            "task": task_to_wire(RunTask(experiment_id="E1", seed=5)),
            "ttl": 30.0,
            "snapshot": {"bogus": True},
        }
        assert worker._execute(lease) == EXIT_LEASE_REJECTED
