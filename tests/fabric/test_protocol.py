"""Fabric wire protocol: task round-trips, strict JSON, retry policy."""

import numpy as np
import pytest

import repro.fabric.protocol as protocol
from repro.fabric.protocol import (
    FabricUnavailable,
    ProtocolError,
    UnknownLeaseError,
    call_with_retries,
    decode,
    encode,
    task_from_wire,
    task_to_wire,
)
from repro.runner import RunTask


class TestTaskWire:
    def test_round_trip_is_exact(self):
        task = RunTask(
            experiment_id="E4",
            profile="full",
            params={"n": 10000, "eps": 0.02},
            seed=7,
            backend="count",
            label="n=10000",
        )
        assert task_from_wire(task_to_wire(task)) == task

    def test_defaults_round_trip(self):
        task = RunTask(experiment_id="E1")
        assert task_from_wire(task_to_wire(task)) == task

    def test_wire_form_is_strict_json(self):
        wire = task_to_wire(RunTask(experiment_id="E2", params={"x": 1}))
        assert isinstance(encode(wire), bytes)

    def test_numpy_values_coerced(self):
        task = RunTask(experiment_id="E4", params={"n": np.int64(100)})
        wire = task_to_wire(task)
        assert wire["params"] == [["n", 100]]
        assert type(wire["params"][0][1]) is int

    def test_missing_field_rejected(self):
        wire = task_to_wire(RunTask(experiment_id="E1"))
        del wire["seed"]
        with pytest.raises(ProtocolError, match="missing field"):
            task_from_wire(wire)

    def test_malformed_params_rejected(self):
        wire = task_to_wire(RunTask(experiment_id="E1"))
        wire["params"] = {"n": 1}
        with pytest.raises(ProtocolError, match="pairs"):
            task_from_wire(wire)

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            task_from_wire(["E1"])

    def test_invalid_backend_rejected(self):
        wire = task_to_wire(RunTask(experiment_id="E1"))
        wire["backend"] = "gpu"
        with pytest.raises(ProtocolError, match="invalid task"):
            task_from_wire(wire)


class TestEncodeDecode:
    def test_canonical_bytes(self):
        assert encode({"b": 1, "a": 2}) == b'{"a":2,"b":1}'

    def test_non_finite_rejected(self):
        with pytest.raises(ProtocolError, match="JSON-serializable"):
            encode({"x": float("nan")})

    def test_decode_rejects_malformed(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode(b"{not json")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON objects"):
            decode(b"[1, 2]")

    def test_unknown_lease_error_carries_409(self):
        error = UnknownLeaseError("nope")
        assert error.status == protocol.STATUS_UNKNOWN_LEASE
        assert isinstance(error, ProtocolError)


class TestRetries:
    def test_transport_failures_retried_then_raised(self, monkeypatch):
        calls = []

        def flaky(base_url, path, payload, timeout, token=None):
            calls.append(path)
            raise FabricUnavailable("down")

        monkeypatch.setattr(protocol, "http_call", flaky)
        sleeps = []
        with pytest.raises(FabricUnavailable):
            call_with_retries(
                "http://x", "/lease", {}, retries=3, backoff=0.5, sleep=sleeps.append
            )
        assert len(calls) == 4  # first attempt + 3 retries
        assert sleeps == [0.5, 1.0, 2.0]

    def test_backoff_capped(self, monkeypatch):
        def flaky(base_url, path, payload, timeout, token=None):
            raise FabricUnavailable("down")

        monkeypatch.setattr(protocol, "http_call", flaky)
        sleeps = []
        with pytest.raises(FabricUnavailable):
            call_with_retries(
                "http://x", "/x", {}, retries=8, backoff=1.0, sleep=sleeps.append
            )
        assert max(sleeps) == protocol.MAX_BACKOFF

    def test_success_after_failure(self, monkeypatch):
        attempts = []

        def flaky_once(base_url, path, payload, timeout, token=None):
            attempts.append(1)
            if len(attempts) == 1:
                raise FabricUnavailable("down")
            return {"ok": True}

        monkeypatch.setattr(protocol, "http_call", flaky_once)
        response = call_with_retries(
            "http://x", "/x", {}, retries=2, backoff=0.1, sleep=lambda _: None
        )
        assert response == {"ok": True}
        assert len(attempts) == 2

    def test_protocol_errors_never_retried(self, monkeypatch):
        calls = []

        def rejecting(base_url, path, payload, timeout, token=None):
            calls.append(1)
            raise ProtocolError("bad", status=400)

        monkeypatch.setattr(protocol, "http_call", rejecting)
        with pytest.raises(ProtocolError):
            call_with_retries("http://x", "/x", {}, retries=5, sleep=lambda _: None)
        assert len(calls) == 1

    def test_unreachable_coordinator_is_transport_failure(self):
        # Port 1 refuses connections immediately on any sane host.
        with pytest.raises(FabricUnavailable):
            protocol.http_call("http://127.0.0.1:1", "/status", {}, timeout=2.0)
