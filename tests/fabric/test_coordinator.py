"""Coordinator lease lifecycle, dedup, idempotence, and checkpointing."""

import json

import pytest

from repro.fabric.coordinator import Coordinator
from repro.fabric.protocol import (
    WIRE_VERSION,
    ProtocolError,
    UnknownLeaseError,
    task_to_wire,
)
from repro.runner.cache import pack_entry
from repro.runner.executor import _task_cache_key
from repro.runner.plan import RunTask, replicate_plan
from repro.utils.errors import InvalidParameterError


class FakeClock:
    """Injectable time source: lease expiry becomes deterministic."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def wire(seed: int = 1, experiment: str = "E1") -> dict:
    return task_to_wire(RunTask(experiment_id=experiment, seed=seed))


def payload_for(seed: int, tag: str = "A") -> dict:
    """A synthetic (but wire-shaped) result payload."""
    return {"experiment_id": "E1", "seed": seed, "tag": tag}


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def coordinator(tmp_path, clock):
    return Coordinator(tmp_path / "cache", lease_ttl=10.0, clock=clock)


def complete_one(coordinator, worker="w", tag="A"):
    """Lease one task and complete it; returns (key, lease_id)."""
    granted = coordinator.lease(worker)["lease"]
    assert granted is not None
    seed = granted["task"]["seed"]
    coordinator.submit_result(
        granted["lease_id"], worker, payload_for(seed, tag), 1.5
    )
    return granted["key"], granted["lease_id"]


class TestSubmit:
    def test_keys_are_canonical_cache_keys(self, coordinator):
        tasks = [RunTask(experiment_id="E1", seed=s) for s in (1, 2)]
        response = coordinator.submit([task_to_wire(t) for t in tasks])
        assert response["keys"] == [_task_cache_key(t) for t in tasks]
        assert response["cached"] == [False, False]

    def test_resubmission_dedups_without_requeueing(self, coordinator):
        coordinator.submit([wire(1)])
        again = coordinator.submit([wire(1)])
        assert again["cached"] == [False]  # pending, not done
        status = coordinator.status()
        assert status["tasks"] == 1
        assert status["pending"] == 1

    def test_prewarmed_cache_serves_without_leasing(self, coordinator):
        key = _task_cache_key(RunTask(experiment_id="E1", seed=1))
        coordinator.cache.put(key, pack_entry(payload_for(1), 2.0))
        response = coordinator.submit([wire(1)])
        assert response["cached"] == [True]
        assert coordinator.lease("w")["lease"] is None
        outcome = coordinator.collect([key])["outcomes"][key]
        assert outcome["report"] == payload_for(1)
        assert outcome["worker"] is None

    def test_invalid_task_rejected_before_any_queuing(self, coordinator):
        with pytest.raises(ProtocolError, match="rejected task"):
            coordinator.submit([wire(1), wire(2, experiment="E999")])
        assert coordinator.status()["tasks"] == 0

    def test_submit_plan_preloads_every_task(self, tmp_path, clock):
        coordinator = Coordinator(tmp_path / "cache", clock=clock)
        plan = replicate_plan("E1", replicates=3)
        coordinator.submit_plan(plan)
        assert coordinator.status()["pending"] == 3

    def test_lease_carries_resolved_canonical_params(self, coordinator):
        from repro.experiments.base import get_spec

        coordinator.submit([wire(1)])
        granted = coordinator.lease("w")["lease"]
        expected = get_spec("E1").resolve("fast", {}).canonical()
        assert granted["resolved"] == expected
        assert granted["ttl"] == 10.0


class TestLeaseLifecycle:
    def test_lease_then_result_then_collect(self, coordinator):
        [key] = coordinator.submit([wire(1)])["keys"]
        response = coordinator.lease("w1")
        granted = response["lease"]
        assert granted["key"] == key
        assert response["done"] is False
        assert coordinator.collect([key])["outcomes"][key] is None

        verdict = coordinator.submit_result(
            granted["lease_id"], "w1", payload_for(1), 1.5
        )
        assert verdict == {"accepted": True, "stored": True, "duplicate": False}
        outcome = coordinator.collect([key])["outcomes"][key]
        assert outcome["report"] == payload_for(1)
        assert outcome["worker"] == "w1"
        status = coordinator.status()
        assert status["done"] == 1
        assert status["executed"] == 1
        assert coordinator.lease("w1")["done"] is True

    def test_single_task_leased_once(self, coordinator):
        coordinator.submit([wire(1)])
        assert coordinator.lease("w1")["lease"] is not None
        assert coordinator.lease("w2")["lease"] is None

    def test_heartbeat_on_active_lease(self, coordinator):
        coordinator.submit([wire(1)])
        granted = coordinator.lease("w")["lease"]
        assert coordinator.heartbeat(granted["lease_id"]) == {
            "ok": True,
            "state": "active",
        }

    def test_release_requeues_the_task(self, coordinator):
        coordinator.submit([wire(1)])
        granted = coordinator.lease("w1")["lease"]
        coordinator.release(granted["lease_id"], error="boom")
        regranted = coordinator.lease("w2")["lease"]
        assert regranted is not None
        assert regranted["key"] == granted["key"]
        assert regranted["lease_id"] != granted["lease_id"]

    def test_result_without_experiment_id_rejected(self, coordinator):
        coordinator.submit([wire(1)])
        granted = coordinator.lease("w")["lease"]
        with pytest.raises(ProtocolError, match="experiment_id"):
            coordinator.submit_result(
                granted["lease_id"], "w", {"rows": []}, 1.0
            )

    def test_unknown_lease_is_loud_everywhere(self, coordinator):
        with pytest.raises(UnknownLeaseError):
            coordinator.heartbeat("never-issued")
        with pytest.raises(UnknownLeaseError, match="restarted"):
            coordinator.submit_result("never-issued", "w", payload_for(1), 1.0)
        with pytest.raises(UnknownLeaseError):
            coordinator.release("never-issued")

    def test_collect_of_unsubmitted_key_is_loud(self, coordinator):
        with pytest.raises(ProtocolError, match="unsubmitted"):
            coordinator.collect(["deadbeef"])

    def test_collect_requeues_when_cache_entry_vanishes(self, coordinator):
        [key] = coordinator.submit([wire(1)])["keys"]
        complete_one(coordinator)
        coordinator.cache.clear()
        assert coordinator.collect([key])["outcomes"][key] is None
        assert coordinator.status()["pending"] == 1
        # The requeued task is leasable again and completes normally.
        complete_one(coordinator, worker="w2")
        assert coordinator.collect([key])["outcomes"][key]["worker"] == "w2"


class TestExpiry:
    def test_expired_lease_requeues_for_another_worker(
        self, coordinator, clock
    ):
        coordinator.submit([wire(1)])
        first = coordinator.lease("w1")["lease"]
        clock.advance(10.1)
        second = coordinator.lease("w2")["lease"]
        assert second is not None
        assert second["key"] == first["key"]
        assert second["lease_id"] != first["lease_id"]
        assert coordinator.heartbeat(first["lease_id"]) == {
            "ok": False,
            "state": "expired",
        }

    def test_unexpired_lease_is_not_reaped(self, coordinator, clock):
        coordinator.submit([wire(1)])
        coordinator.lease("w1")
        clock.advance(9.9)
        assert coordinator.lease("w2")["lease"] is None

    def test_heartbeat_extends_the_deadline(self, coordinator, clock):
        coordinator.submit([wire(1)])
        granted = coordinator.lease("w1")["lease"]
        clock.advance(8.0)
        coordinator.heartbeat(granted["lease_id"])
        clock.advance(8.0)  # past the original deadline, not the extended
        assert coordinator.lease("w2")["lease"] is None
        assert coordinator.heartbeat(granted["lease_id"])["ok"] is True

    def test_late_result_after_replacement_wins_is_duplicate(
        self, coordinator, clock
    ):
        [key] = coordinator.submit([wire(1)])["keys"]
        slow = coordinator.lease("w1")["lease"]
        clock.advance(10.1)
        fast = coordinator.lease("w2")["lease"]
        coordinator.submit_result(
            fast["lease_id"], "w2", payload_for(1, tag="fast"), 1.0
        )
        verdict = coordinator.submit_result(
            slow["lease_id"], "w1", payload_for(1, tag="slow"), 9.0
        )
        assert verdict == {
            "accepted": True,
            "stored": False,
            "duplicate": True,
        }
        # First write won: the stored report is the fast worker's.
        outcome = coordinator.collect([key])["outcomes"][key]
        assert outcome["report"]["tag"] == "fast"
        assert outcome["worker"] == "w2"
        assert coordinator.status()["executed"] == 1

    def test_expired_worker_finishing_first_still_stores(
        self, coordinator, clock
    ):
        [key] = coordinator.submit([wire(1)])["keys"]
        slow = coordinator.lease("w1")["lease"]
        clock.advance(10.1)
        coordinator.lease("w2")  # re-leased, still running
        verdict = coordinator.submit_result(
            slow["lease_id"], "w1", payload_for(1, tag="slow"), 9.0
        )
        assert verdict["stored"] is True
        outcome = coordinator.collect([key])["outcomes"][key]
        assert outcome["worker"] == "w1"
        # The re-leased copy completing later is a harmless duplicate.
        assert coordinator.status()["done"] == 1


class TestCheckpoint:
    def submit_three(self, coordinator):
        return coordinator.submit([wire(s) for s in (1, 2, 3)])["keys"]

    def test_restart_restores_done_and_pending(self, tmp_path, clock):
        checkpoint = tmp_path / "fabric.json"
        coordinator = Coordinator(
            tmp_path / "cache", checkpoint=checkpoint, clock=clock
        )
        keys = self.submit_three(coordinator)
        complete_one(coordinator)

        revived = Coordinator(
            tmp_path / "cache", checkpoint=checkpoint, clock=clock
        )
        status = revived.status()
        assert status["done"] == 1
        assert status["pending"] == 2
        assert status["executed"] == 1
        # Queue order survives: the next lease is the second task.
        assert revived.lease("w")["lease"]["key"] == keys[1]

    def test_in_flight_lease_requeues_on_restart(self, tmp_path, clock):
        checkpoint = tmp_path / "fabric.json"
        coordinator = Coordinator(
            tmp_path / "cache", checkpoint=checkpoint, clock=clock
        )
        [key] = coordinator.submit([wire(1)])["keys"]
        coordinator.lease("w1")  # in flight at the moment of the "crash"

        revived = Coordinator(
            tmp_path / "cache", checkpoint=checkpoint, clock=clock
        )
        assert revived.status()["pending"] == 1
        assert revived.lease("w2")["lease"]["key"] == key

    def test_survivor_result_after_restart_stays_idempotent(
        self, tmp_path, clock
    ):
        checkpoint = tmp_path / "fabric.json"
        coordinator = Coordinator(
            tmp_path / "cache", checkpoint=checkpoint, clock=clock
        )
        [key] = coordinator.submit([wire(1)])["keys"]
        old = coordinator.lease("w1")["lease"]

        revived = Coordinator(
            tmp_path / "cache", checkpoint=checkpoint, clock=clock
        )
        # The surviving worker pushes its result using the pre-restart
        # lease id: accepted (stored — nothing else computed it yet),
        # never a 409.
        verdict = revived.submit_result(
            old["lease_id"], "w1", payload_for(1), 2.0
        )
        assert verdict["accepted"] is True
        assert verdict["stored"] is True
        assert revived.collect([key])["outcomes"][key]["worker"] == "w1"

    def test_cleared_cache_demotes_done_entries(self, tmp_path, clock):
        checkpoint = tmp_path / "fabric.json"
        coordinator = Coordinator(
            tmp_path / "cache", checkpoint=checkpoint, clock=clock
        )
        self.submit_three(coordinator)
        complete_one(coordinator)
        coordinator.cache.clear()

        revived = Coordinator(
            tmp_path / "cache", checkpoint=checkpoint, clock=clock
        )
        status = revived.status()
        assert status["done"] == 0
        assert status["pending"] == 3

    def test_version_mismatch_is_loud(self, tmp_path, clock):
        checkpoint = tmp_path / "fabric.json"
        checkpoint.write_text(
            json.dumps({"version": WIRE_VERSION + 1, "entries": []})
        )
        with pytest.raises(InvalidParameterError, match="wire"):
            Coordinator(tmp_path / "cache", checkpoint=checkpoint, clock=clock)

    def test_corrupt_checkpoint_is_loud(self, tmp_path, clock):
        checkpoint = tmp_path / "fabric.json"
        checkpoint.write_text("{not json")
        with pytest.raises(InvalidParameterError, match="unreadable"):
            Coordinator(tmp_path / "cache", checkpoint=checkpoint, clock=clock)

    def test_checkpoint_disabled_without_path(self, tmp_path, clock):
        coordinator = Coordinator(tmp_path / "cache", clock=clock)
        coordinator.submit([wire(1)])
        assert not list(tmp_path.glob("*.json"))


class TestValidation:
    def test_lease_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="lease_ttl"):
            Coordinator(tmp_path / "cache", lease_ttl=0.0)

    def test_shutdown_flag_propagates(self, coordinator):
        assert coordinator.lease("w")["shutting_down"] is False
        coordinator.request_shutdown()
        assert coordinator.lease("w")["shutting_down"] is True
        assert coordinator.status()["shutting_down"] is True
