"""End-to-end fabric tests: HTTP coordinator + real workers, in process.

These run the genuine article — a :class:`FabricServer` on an ephemeral
localhost port, :class:`Worker` loops executing real (fast-profile)
experiments, and :class:`RemotePool` clients — and pin down the three
fabric contracts: byte-identity with local execution, cache-served
resubmission, and the worker exit-code discipline under fault injection.
(The multi-process version of the same scenario lives in
``scripts/run_fabric_smoke.py``.)
"""

import threading
import time

import pytest

from repro.fabric import (
    Coordinator,
    FabricServer,
    ProtocolError,
    RemotePool,
    Worker,
    fabric_status,
    remote_execute,
    task_to_wire,
)
from repro.fabric.protocol import http_call
from repro.fabric.worker import (
    EXIT_DRAINED,
    EXIT_LEASE_REJECTED,
    EXIT_NEVER_REACHED,
    EXIT_RESULT_LOST,
)
from repro.runner import RunPlan, RunTask, execute, run_task, strip_provenance
from repro.runner.plan import replicate_plan

QUIET = {"log": lambda message: None}


def small_plan(cache_dir=None) -> RunPlan:
    tasks = replicate_plan("E1", replicates=2, base_seed=7).tasks + (
        RunTask(experiment_id="E2", seed=11, label="e2"),
    )
    return RunPlan(tasks=tasks, jobs=1, cache_dir=cache_dir)


@pytest.fixture
def server(tmp_path):
    coordinator = Coordinator(tmp_path / "shared-cache", lease_ttl=30.0)
    server = FabricServer(coordinator).start()
    yield server
    server.close()


def drain_worker(url: str, max_tasks: int, **options) -> Worker:
    """A quiet worker tuned for fast test turnaround."""
    return Worker(
        url,
        max_tasks=max_tasks,
        poll=0.05,
        retries=2,
        backoff=0.05,
        **QUIET,
        **options,
    )


class TestByteIdentity:
    def test_remote_report_matches_local(self, tmp_path, server):
        plan = small_plan()
        local = execute(
            RunPlan(tasks=plan.tasks, cache_dir=str(tmp_path / "local-cache"))
        )

        worker = drain_worker(server.url, max_tasks=len(plan.tasks), worker_id="wA")
        thread = threading.Thread(target=worker.run_forever, daemon=True)
        thread.start()
        remote = remote_execute(plan, server.url, poll=0.05)
        thread.join(timeout=10.0)
        assert not thread.is_alive()

        local_records = [strip_provenance(r) for r in local.to_records()]
        remote_records = [strip_provenance(r) for r in remote.to_records()]
        assert remote_records == local_records
        assert [r.source for r in remote.results] == ["executed"] * 3
        assert {r.worker for r in remote.results} == {"wA"}

    def test_second_submission_is_served_from_cache(self, tmp_path, server):
        plan = small_plan()
        worker = drain_worker(server.url, max_tasks=len(plan.tasks))
        thread = threading.Thread(target=worker.run_forever, daemon=True)
        thread.start()
        first = remote_execute(plan, server.url, poll=0.05)
        thread.join(timeout=10.0)
        executed_after_first = fabric_status(server.url)["executed"]

        # No worker is connected any more: the resubmission must be
        # answered entirely by the coordinator's shared cache.
        second = remote_execute(plan, server.url, poll=0.05)
        assert [r.source for r in second.results] == ["cache"] * 3
        assert [r.worker for r in second.results] == [None] * 3
        assert fabric_status(server.url)["executed"] == executed_after_first
        assert [strip_provenance(r) for r in second.to_records()] == [
            strip_provenance(r) for r in first.to_records()
        ]


class TestFaultInjection:
    def test_killed_worker_task_requeues_and_finishes(self, tmp_path):
        coordinator = Coordinator(tmp_path / "cache", lease_ttl=0.4)
        server = FabricServer(coordinator).start()
        try:
            plan = small_plan()
            wires = [task_to_wire(task) for task in plan.tasks]
            keys = http_call(server.url, "/submit", {"tasks": wires})["keys"]
            # The "killed" worker takes a lease and is never heard from
            # again — its task must expire back onto the queue.
            dead = http_call(server.url, "/lease", {"worker": "dead"})["lease"]
            assert dead is not None

            worker = drain_worker(server.url, max_tasks=len(keys), worker_id="wB")
            assert worker.run_forever() == EXIT_DRAINED

            outcomes = http_call(server.url, "/collect", {"keys": keys})[
                "outcomes"
            ]
            assert all(outcomes[key] is not None for key in keys)
            assert outcomes[dead["key"]]["worker"] == "wB"

            # And the final report matches a purely local run, byte for
            # byte, once provenance is stripped.
            local = execute(
                RunPlan(tasks=plan.tasks, cache_dir=str(tmp_path / "local"))
            )
            remote = execute(
                plan, pool=RemotePool(server.url, poll=0.05)
            )
            assert [strip_provenance(r) for r in remote.to_records()] == [
                strip_provenance(r) for r in local.to_records()
            ]
        finally:
            server.close()

    def test_heartbeat_keeps_slow_task_alive(self, tmp_path):
        coordinator = Coordinator(tmp_path / "cache", lease_ttl=0.5)
        server = FabricServer(coordinator).start()
        try:

            def slow_run(task):
                time.sleep(1.2)  # well past the 0.5s lease TTL
                return run_task(task)

            http_call(
                server.url,
                "/submit",
                {"tasks": [task_to_wire(RunTask(experiment_id="E1", seed=3))]},
            )
            messages = []
            worker = Worker(
                server.url,
                worker_id="slowpoke",
                max_tasks=1,
                poll=0.05,
                retries=2,
                backoff=0.05,
                run=slow_run,
                log=messages.append,
            )
            assert worker.run_forever() == EXIT_DRAINED
            # The lease never expired, so the result was stored fresh —
            # not demoted to the duplicate path.
            assert any("(stored)" in message for message in messages)
            status = fabric_status(server.url)
            assert status["executed"] == 1
            assert status["pending"] == 0
        finally:
            server.close()

    def test_failing_task_is_released_and_retried(self, tmp_path, server):
        http_call(
            server.url,
            "/submit",
            {"tasks": [task_to_wire(RunTask(experiment_id="E1", seed=5))]},
        )
        attempts = []

        def flaky_run(task):
            attempts.append(task)
            if len(attempts) == 1:
                raise RuntimeError("simulated mid-task crash")
            return run_task(task)

        worker = drain_worker(server.url, max_tasks=1, run=flaky_run)
        assert worker.run_forever() == EXIT_DRAINED
        assert len(attempts) == 2  # failed once, requeued, succeeded
        assert fabric_status(server.url)["done"] == 1


class TestWorkerExitCodes:
    def test_never_reachable_coordinator(self):
        worker = Worker("http://127.0.0.1:1", retries=0, **QUIET)
        assert worker.run_forever() == EXIT_NEVER_REACHED

    def test_shutdown_drains_idle_worker(self, server):
        server.coordinator.request_shutdown()
        worker = drain_worker(server.url, max_tasks=None)
        assert worker.run_forever() == EXIT_DRAINED

    def test_max_idle_drains_worker(self, server):
        worker = drain_worker(server.url, max_tasks=None, max_idle=0.2)
        assert worker.run_forever() == EXIT_DRAINED

    def test_unknown_lease_rejection_is_fatal(self, server):
        http_call(
            server.url,
            "/submit",
            {"tasks": [task_to_wire(RunTask(experiment_id="E1", seed=9))]},
        )

        def amnesiac_run(task):
            payload, seconds = run_task(task)
            # Simulate a coordinator restarted WITHOUT its checkpoint
            # while the task ran: every issued lease id is forgotten.
            server.coordinator._leases.clear()
            return payload, seconds

        worker = drain_worker(server.url, max_tasks=1, run=amnesiac_run)
        assert worker.run_forever() == EXIT_LEASE_REJECTED

    def test_undeliverable_result_is_fatal(self, tmp_path):
        coordinator = Coordinator(tmp_path / "cache")
        server = FabricServer(coordinator).start()
        http_call(
            server.url,
            "/submit",
            {"tasks": [task_to_wire(RunTask(experiment_id="E1", seed=13))]},
        )

        def run_then_lose_coordinator(task):
            payload, seconds = run_task(task)
            server.close()  # the coordinator dies with a result in hand
            return payload, seconds

        worker = Worker(
            server.url,
            max_tasks=1,
            poll=0.05,
            retries=0,
            run=run_then_lose_coordinator,
            **QUIET,
        )
        assert worker.run_forever() == EXIT_RESULT_LOST


class TestHttpSurface:
    def test_status_get_and_post_agree(self, server):
        posted = fabric_status(server.url)
        assert posted["tasks"] == 0
        assert posted["wire_version"] == 1
        assert "entries" in posted["cache"]

    def test_unknown_path_is_a_protocol_error(self, server):
        with pytest.raises(ProtocolError, match="unknown path"):
            http_call(server.url, "/frobnicate", {})

    def test_malformed_submit_is_a_400(self, server):
        with pytest.raises(ProtocolError, match="tasks"):
            http_call(server.url, "/submit", {"tasks": "not-a-list"})

    def test_remote_pool_timeout_without_workers(self, server):
        plan = RunPlan(tasks=(RunTask(experiment_id="E1", seed=21),))
        pool = RemotePool(server.url, poll=0.05, timeout=0.3)
        from repro.fabric import FabricUnavailable

        with pytest.raises(FabricUnavailable, match="still pending"):
            execute(plan, pool=pool)
