"""Repo hygiene guards: no compiled artifacts may enter the tree.

A ``src/repro/fabric/__pycache__`` directory once leaked into listings;
these guards make the regression impossible to miss: the VCS index must
never carry byte-compiled artifacts, and ``.gitignore`` must keep
covering the patterns that prevent them from being added.
"""

import subprocess
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def tracked_files() -> list[str]:
    result = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return result.stdout.splitlines()


def test_no_tracked_compiled_artifacts():
    offenders = [
        path
        for path in tracked_files()
        if "__pycache__" in path
        or path.endswith((".pyc", ".pyo"))
        or ".egg-info" in path
    ]
    assert offenders == [], (
        f"compiled artifacts are tracked: {offenders}; "
        f"git rm -r --cached them"
    )


def test_gitignore_covers_compiled_artifacts():
    patterns = (REPO_ROOT / ".gitignore").read_text().split()
    for required in ("__pycache__/", "*.pyc"):
        assert required in patterns, (
            f".gitignore lost the {required!r} pattern"
        )
