"""Tests for repro.utils.validation and the error hierarchy."""

import numpy as np
import pytest

from repro.utils import (
    InvalidDistributionError,
    InvalidParameterError,
    ReproError,
    check_fraction,
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero(self):
        with pytest.raises(InvalidParameterError, match="x"):
            check_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            check_positive("x", -1.0)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int("n", 3) == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int("n", np.int64(7)) == 7

    def test_returns_builtin_int(self):
        assert type(check_positive_int("n", np.int64(7))) is int

    def test_rejects_bool(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int("n", True)

    def test_rejects_float(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int("n", 3.0)

    def test_respects_minimum(self):
        with pytest.raises(InvalidParameterError, match=">= 2"):
            check_positive_int("n", 1, minimum=2)

    def test_minimum_zero_allows_zero(self):
        assert check_positive_int("n", 0, minimum=0) == 0


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects_outside(self, value):
        with pytest.raises(InvalidParameterError):
            check_probability("p", value)

    def test_rejects_non_numeric(self):
        with pytest.raises(InvalidParameterError):
            check_probability("p", "half")

    def test_fraction_alias(self):
        assert check_fraction("f", 0.25) == 0.25


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(InvalidParameterError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)

    def test_rejects_nan(self):
        with pytest.raises(InvalidParameterError):
            check_in_range("x", float("nan"), 0.0, 1.0)


class TestCheckProbabilityVector:
    def test_accepts_distribution(self):
        out = check_probability_vector("mu", [0.25, 0.75])
        assert out.sum() == pytest.approx(1.0)

    def test_rejects_negative_entries(self):
        with pytest.raises(InvalidDistributionError):
            check_probability_vector("mu", [-0.1, 1.1])

    def test_rejects_wrong_sum(self):
        with pytest.raises(InvalidDistributionError, match="sum"):
            check_probability_vector("mu", [0.3, 0.3])

    def test_rejects_empty(self):
        with pytest.raises(InvalidDistributionError):
            check_probability_vector("mu", [])

    def test_rejects_matrix(self):
        with pytest.raises(InvalidDistributionError):
            check_probability_vector("mu", [[0.5, 0.5]])

    def test_clips_tiny_negatives(self):
        out = check_probability_vector("mu", [1.0 + 1e-13, -1e-13])
        assert (out >= 0).all()


class TestErrorHierarchy:
    def test_parameter_error_is_repro_and_value_error(self):
        assert issubclass(InvalidParameterError, ReproError)
        assert issubclass(InvalidParameterError, ValueError)

    def test_distribution_error_is_repro_error(self):
        assert issubclass(InvalidDistributionError, ReproError)

    def test_library_errors_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            check_positive("x", -1)
