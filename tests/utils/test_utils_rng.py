"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 4)
        assert len(gens) == 4

    def test_independent_streams(self):
        g1, g2 = spawn_generators(0, 2)
        assert not np.array_equal(g1.random(10), g2.random(10))

    def test_reproducible_from_seed(self):
        a = [g.random() for g in spawn_generators(5, 3)]
        b = [g.random() for g in spawn_generators(5, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        gens = spawn_generators(np.random.default_rng(0), 3)
        assert len(gens) == 3

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)
