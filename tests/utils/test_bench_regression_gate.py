"""The benchmark regression gate: agent and count cases are both gated."""

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (pathlib.Path(__file__).resolve().parents[2] / "scripts"
           / "check_bench_regression.py")


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("bench_gate", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write(path, cases):
    payload = {"cases": [
        {"workload": w, "backend": b, "n": n, "interactions_per_sec": ips}
        for (w, b, n, ips) in cases]}
    path.write_text(json.dumps(payload))
    return str(path)


def test_agent_and_count_both_gated(gate, tmp_path):
    baseline = write(tmp_path / "base.json", [
        ("igt", "agent", 10_000, 20_000_000),
        ("igt", "count", 10_000, 20_000_000),
        ("igt-observed", "count", 1000, 5_000_000),
    ])
    healthy = write(tmp_path / "ok.json", [
        ("igt", "agent", 10_000, 11_000_000),
        ("igt", "count", 10_000, 19_000_000),
        ("igt-observed", "count", 1000, 4_000_000),
    ])
    assert gate.main([healthy, baseline]) == 0
    agent_regressed = write(tmp_path / "bad.json", [
        ("igt", "agent", 10_000, 9_000_000),   # below baseline / 2
        ("igt", "count", 10_000, 19_000_000),
        ("igt-observed", "count", 1000, 4_000_000),
    ])
    assert gate.main([agent_regressed, baseline]) == 1


def test_baseline_backends_not_gated(gate, tmp_path):
    baseline = write(tmp_path / "base.json", [
        ("igt", "agent-seq", 1000, 5_000_000),
        ("igt", "seed-loop", 1000, 130_000),
        ("igt-observed", "count-perstep", 1000, 40_000),
        ("igt", "auto", 1000, 9_000_000),
        ("igt", "count", 1000, 9_000_000),
    ])
    slower_baselines = write(tmp_path / "cur.json", [
        ("igt", "agent-seq", 1000, 1),
        ("igt", "seed-loop", 1000, 1),
        ("igt-observed", "count-perstep", 1000, 1),
        ("igt", "auto", 1000, 1),
        ("igt", "count", 1000, 8_000_000),
    ])
    assert gate.main([slower_baselines, baseline]) == 0


def test_vacuous_gate_fails(gate, tmp_path):
    baseline = write(tmp_path / "base.json",
                     [("igt", "count", 1000, 1_000_000)])
    unrelated = write(tmp_path / "cur.json",
                      [("igt", "count", 2000, 1_000_000)])
    assert gate.main([unrelated, baseline]) == 1
