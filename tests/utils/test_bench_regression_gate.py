"""The benchmark regression gate: agent and count cases are both gated."""

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (pathlib.Path(__file__).resolve().parents[2] / "scripts"
           / "check_bench_regression.py")


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("bench_gate", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write(path, cases):
    payload = {"cases": [
        {"workload": w, "backend": b, "n": n, "interactions_per_sec": ips}
        for (w, b, n, ips) in cases]}
    path.write_text(json.dumps(payload))
    return str(path)


#: Every fixture file carries the required headline cases so tests of
#: the factor logic are not confounded by the presence check (which has
#: its own test below).
REQUIRED = [
    ("igt-weighted", "agent", 1_000_000, 3_000_000),
    ("igt-weighted", "count", 1_000_000, 4_000_000),
    ("igt-topology", "agent", 100_000, 20_000_000),
    ("igt-topology", "count", 100_000, 20_000_000),
]


def test_agent_and_count_both_gated(gate, tmp_path):
    baseline = write(tmp_path / "base.json", [
        ("igt", "agent", 10_000, 20_000_000),
        ("igt", "count", 10_000, 20_000_000),
        ("igt-observed", "count", 1000, 5_000_000),
    ] + REQUIRED)
    healthy = write(tmp_path / "ok.json", [
        ("igt", "agent", 10_000, 11_000_000),
        ("igt", "count", 10_000, 19_000_000),
        ("igt-observed", "count", 1000, 4_000_000),
    ] + REQUIRED)
    assert gate.main([healthy, baseline]) == 0
    agent_regressed = write(tmp_path / "bad.json", [
        ("igt", "agent", 10_000, 9_000_000),   # below baseline / 2
        ("igt", "count", 10_000, 19_000_000),
        ("igt-observed", "count", 1000, 4_000_000),
    ] + REQUIRED)
    assert gate.main([agent_regressed, baseline]) == 1


def test_baseline_backends_not_gated(gate, tmp_path):
    baseline = write(tmp_path / "base.json", [
        ("igt", "agent-seq", 1000, 5_000_000),
        ("igt", "seed-loop", 1000, 130_000),
        ("igt-observed", "count-perstep", 1000, 40_000),
        ("igt", "auto", 1000, 9_000_000),
        ("igt", "count", 1000, 9_000_000),
    ] + REQUIRED)
    slower_baselines = write(tmp_path / "cur.json", [
        ("igt", "agent-seq", 1000, 1),
        ("igt", "seed-loop", 1000, 1),
        ("igt-observed", "count-perstep", 1000, 1),
        ("igt", "auto", 1000, 1),
        ("igt", "count", 1000, 8_000_000),
    ] + REQUIRED)
    assert gate.main([slower_baselines, baseline]) == 0


def test_vacuous_gate_fails(gate, tmp_path):
    baseline = write(tmp_path / "base.json",
                     [("igt", "count", 1000, 1_000_000)])
    unrelated = write(tmp_path / "cur.json",
                      [("igt", "count", 2000, 1_000_000)])
    assert gate.main([unrelated, baseline]) == 1


def test_missing_required_weighted_case_fails(gate, tmp_path):
    """Silently dropping a headline weighted case un-gates it — exit 1."""
    baseline = write(tmp_path / "base.json",
                     [("igt", "count", 1000, 1_000_000)] + REQUIRED)
    no_weighted = write(tmp_path / "cur.json", [
        ("igt", "count", 1000, 1_000_000),
        ("igt-weighted", "agent", 1_000_000, 3_000_000),
        # igt-weighted/count at n=1e6 absent
    ])
    assert gate.main([no_weighted, baseline]) == 1
    # Present in both (even if only the required pair) passes.
    current = write(tmp_path / "ok.json",
                    [("igt", "count", 1000, 900_000)] + REQUIRED)
    assert gate.main([current, baseline]) == 0


def test_count_birthday_case_is_baseline_not_gated(gate, tmp_path):
    """The forced-birthday record is informational, never gated."""
    baseline = write(tmp_path / "base.json", [
        ("igt", "count", 1000, 1_000_000),
        ("igt-weighted", "count-birthday", 10_000_000, 2_000_000),
    ] + REQUIRED)
    slower = write(tmp_path / "cur.json", [
        ("igt", "count", 1000, 900_000),
        ("igt-weighted", "count-birthday", 10_000_000, 1),
    ] + REQUIRED)
    assert gate.main([slower, baseline]) == 0
