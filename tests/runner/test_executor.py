"""Plan execution: ordering, caching, round-tripping, and fan-out."""

import pytest

from repro.experiments.base import ExperimentReport
from repro.runner import (
    PROVENANCE_FIELDS,
    LocalPool,
    RunPlan,
    RunTask,
    TaskPool,
    TaskResult,
    execute,
    experiments_plan,
    parallel_map,
    replicate_plan,
    run_task,
    strip_provenance,
    task_outcome,
    task_seed,
)
from repro.utils import InvalidParameterError


def square(value: int) -> int:
    # Module-level so process pools can pickle it.
    return value * value


class TestPlanConstruction:
    def test_replicate_plan_seeds_and_labels(self):
        plan = replicate_plan(
            "E5", replicates=3, base_seed=42, backends=("count", "agent")
        )
        assert len(plan.tasks) == 6
        for backend_index, backend in enumerate(("count", "agent")):
            for replicate in range(3):
                task = plan.tasks[backend_index * 3 + replicate]
                assert task.backend == backend
                assert task.label == f"r{replicate}"
                # Same replicate seed on every backend.
                assert task.seed == task_seed(42, replicate)

    def test_experiments_plan(self):
        plan = experiments_plan(["E1", "E2"], seed=3, backend="count")
        assert [task.experiment_id for task in plan.tasks] == ["E1", "E2"]
        assert all(task.seed == 3 for task in plan.tasks)

    def test_empty_experiments_plan_rejected(self):
        with pytest.raises(InvalidParameterError, match="at least one"):
            experiments_plan([])

    def test_bad_backend_rejected(self):
        with pytest.raises(InvalidParameterError, match="backend"):
            RunTask(experiment_id="E1", backend="gpu")

    def test_bad_jobs_rejected(self):
        with pytest.raises(InvalidParameterError, match="jobs"):
            RunPlan(tasks=(RunTask(experiment_id="E1"),), jobs=0)

    def test_non_task_rejected(self):
        with pytest.raises(InvalidParameterError, match="RunTask"):
            RunPlan(tasks=("E1",))


class TestExecute:
    def test_reports_in_task_order(self):
        plan = experiments_plan(["E2", "E1"])
        report = execute(plan)
        ids = [result.report.experiment_id for result in report.results]
        assert ids == ["E2", "E1"]
        assert report.all_checks_pass

    def test_reports_round_trip_through_json(self):
        report = execute(experiments_plan(["E1"])).results[0].report
        assert isinstance(report, ExperimentReport)
        payload = report.to_dict()
        assert ExperimentReport.from_dict(payload).to_dict() == payload

    def test_cache_hits_on_second_execution(self, tmp_path):
        plan = replicate_plan("E1", replicates=2, base_seed=5, cache_dir=str(tmp_path))
        first = execute(plan)
        second = execute(plan)
        assert first.cache_hits == 0
        assert second.cache_hits == 2
        first_payloads = [r.report.to_dict() for r in first.results]
        second_payloads = [r.report.to_dict() for r in second.results]
        assert first_payloads == second_payloads

    def test_run_experiment_cache_interoperates_with_executor(self, tmp_path):
        # An entry written by run_experiment(cache=...) is served to
        # executor plans with the same coordinates, and vice versa.
        from repro.experiments import run_experiment

        direct = run_experiment("E1", seed=task_seed(5, 0), cache=str(tmp_path))
        plan = replicate_plan("E1", 1, base_seed=5, cache_dir=str(tmp_path))
        planned = execute(plan)
        assert planned.cache_hits == 1
        assert planned.results[0].report.to_dict() == direct.to_dict()
        again = run_experiment("E1", seed=task_seed(5, 0), cache=str(tmp_path))
        assert again.to_dict() == direct.to_dict()

    def test_seed_change_misses_cache(self, tmp_path):
        cache_dir = str(tmp_path)
        execute(replicate_plan("E1", 1, base_seed=5, cache_dir=cache_dir))
        rerun = execute(replicate_plan("E1", 1, base_seed=6, cache_dir=cache_dir))
        assert rerun.cache_hits == 0

    def test_empty_plan(self):
        report = execute(RunPlan(tasks=()))
        assert report.results == []
        assert report.all_checks_pass

    def test_summary_and_pass_rates(self):
        report = execute(replicate_plan("E1", replicates=2, base_seed=1))
        headers, rows = report.summary_table()
        assert "experiment" in headers
        assert len(rows) == 2
        rates = report.check_pass_rates()
        assert rates
        assert all(total == 2 for _, total in rates.values())


class RecordingPool(TaskPool):
    """A pool stub attributing every outcome to a fixed worker."""

    def __init__(self, worker="stub-pool", short_by=0):
        self.worker = worker
        self.short_by = short_by
        self.seen = []

    def run(self, tasks):
        self.seen.extend(tasks)
        outcomes = [
            task_outcome(*run_task(task), worker=self.worker)
            for task in tasks
        ]
        return outcomes[: len(outcomes) - self.short_by]


class TestTaskPools:
    def test_local_pool_provenance(self):
        report = execute(experiments_plan(["E1"]))
        [result] = report.results
        assert result.source == "executed"
        assert result.worker is None
        assert result.from_cache is False

    def test_cache_hit_provenance(self, tmp_path):
        plan = experiments_plan(["E1"], cache_dir=str(tmp_path))
        execute(plan)
        [result] = execute(plan).results
        assert result.source == "cache"
        assert result.from_cache is True
        assert result.worker is None

    def test_custom_pool_is_honored(self):
        pool = RecordingPool(worker="w7")
        plan = experiments_plan(["E1", "E2"])
        report = execute(plan, pool=pool)
        assert pool.seen == list(plan.tasks)
        assert [r.worker for r in report.results] == ["w7", "w7"]
        assert [r.source for r in report.results] == ["executed", "executed"]

    def test_custom_pool_skips_cache_hits(self, tmp_path):
        plan = experiments_plan(["E1"], cache_dir=str(tmp_path))
        execute(plan)
        pool = RecordingPool()
        execute(plan, pool=pool)
        assert pool.seen == []  # everything came from the cache

    def test_wrong_outcome_count_rejected(self):
        plan = experiments_plan(["E1", "E2"])
        with pytest.raises(InvalidParameterError, match="outcome"):
            execute(plan, pool=RecordingPool(short_by=1))

    def test_non_pool_rejected(self):
        with pytest.raises(InvalidParameterError, match="TaskPool"):
            execute(experiments_plan(["E1"]), pool=object())

    def test_bad_local_pool_jobs_rejected(self):
        with pytest.raises(InvalidParameterError, match="jobs"):
            LocalPool(jobs=0)

    def test_task_result_source_validated(self):
        task = RunTask(experiment_id="E1")
        with pytest.raises(InvalidParameterError, match="source"):
            TaskResult(task=task, report=object(), seconds=0.0, source="psychic")


class TestRecordsAndProvenance:
    def test_records_identical_across_jobs_modulo_provenance(self, tmp_path):
        records = {}
        for jobs in (1, 2):
            plan = replicate_plan("E2", replicates=2, base_seed=9, jobs=jobs)
            records[jobs] = [
                strip_provenance(record)
                for record in execute(plan).to_records()
            ]
        assert records[1] == records[2]

    def test_records_carry_provenance_fields(self, tmp_path):
        plan = experiments_plan(["E1"], cache_dir=str(tmp_path))
        execute(plan)
        [record] = execute(plan).to_records()
        for field in PROVENANCE_FIELDS:
            assert field in record
        assert record["source"] == "cache"
        assert record["from_cache"] is True
        assert record["worker"] is None
        stripped = strip_provenance(record)
        assert not set(stripped) & set(PROVENANCE_FIELDS)
        assert stripped["experiment"] == "E1"

    def test_summary_table_shows_source_and_worker(self):
        plan = experiments_plan(["E1"])
        report = execute(plan, pool=RecordingPool(worker="w9"))
        headers, rows = report.summary_table()
        assert headers[-1] == "source"
        assert rows[0][-1] == "executed@w9"


class TestParallelMap:
    def test_inline_order(self):
        assert parallel_map(square, [3, 1, 2]) == [9, 1, 4]

    def test_pooled_order(self):
        values = list(range(12))
        assert parallel_map(square, values, jobs=3) == [v * v for v in values]

    def test_empty(self):
        assert parallel_map(square, [], jobs=4) == []

    def test_bad_jobs(self):
        with pytest.raises(InvalidParameterError, match="jobs"):
            parallel_map(square, [1], jobs=0)
