"""The CLI commands: run/sweep orchestration, params, cache, error paths."""

import json

import pytest

from repro.cli import main, parse_age, parse_size
from repro.experiments.base import _REGISTRY, ExperimentReport, register
from repro.utils import InvalidParameterError


@pytest.fixture
def failing_experiment():
    """Temporarily register an experiment whose single check fails."""

    def runner(fast=True, seed=None):
        return ExperimentReport(
            experiment_id="E99X",
            title="always fails",
            claim="test fixture",
            headers=["x"],
            rows=[[1]],
            checks={"never true": False},
        )

    register("E99X", "always fails")(runner)
    yield "E99X"
    del _REGISTRY["E99X"]


class TestSweepCommand:
    def test_sweep_passes_and_prints_rates(self, capsys):
        code = main(["sweep", "E1", "--replicates", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 replicate(s)" in out
        assert "[2/2]" in out

    def test_sweep_with_cache_reports_hits(self, capsys, tmp_path):
        arguments = [
            "sweep",
            "E1",
            "--replicates",
            "2",
            "--cache",
            str(tmp_path),
        ]
        assert main(arguments) == 0
        assert "cache hits: 0/2" in capsys.readouterr().out
        assert main(arguments) == 0
        assert "cache hits: 2/2" in capsys.readouterr().out

    def test_sweep_backends_grid(self, capsys):
        code = main(["sweep", "E2", "--replicates", "1", "--backends", "default"])
        assert code == 0
        assert "1 backend(s)" in capsys.readouterr().out

    def test_sweep_failing_experiment_exits_nonzero(
        self, capsys, failing_experiment
    ):
        assert main(["sweep", failing_experiment, "--replicates", "2"]) == 1
        assert "[0/2] never true" in capsys.readouterr().out

    def test_sweep_unknown_experiment_exits_2(self, capsys):
        assert main(["sweep", "E404"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestRunCommand:
    def test_run_with_cache_marks_cached(self, capsys, tmp_path):
        arguments = ["run", "E1", "--cache", str(tmp_path)]
        assert main(arguments) == 0
        assert "(cached)" not in capsys.readouterr().out
        assert main(arguments) == 0
        assert "(cached)" in capsys.readouterr().out

    def test_run_failing_experiment_exits_nonzero(self, failing_experiment):
        assert main(["run", failing_experiment]) == 1

    def test_run_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "E404"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "E1" in err  # the message lists the known ids

    def test_run_with_set_override(self, capsys):
        assert main(["run", "E1", "--set", "k=4"]) == 0
        out = capsys.readouterr().out
        assert "g_4" in out
        assert "g_5" not in out

    def test_run_with_profile_flag(self, capsys):
        assert main(["run", "E1", "--profile", "full"]) == 0
        assert "[PASS]" in capsys.readouterr().out


class TestCliErrorPaths:
    """Bad user input exits 2 with a schema-aware message on stderr."""

    def test_bad_set_key_lists_valid_params(self, capsys):
        assert main(["run", "E1", "--set", "zz=3"]) == 2
        err = capsys.readouterr().err
        assert "unknown parameter 'zz'" in err
        assert "valid parameters: k, g_max" in err

    def test_bad_set_value_names_the_constraint(self, capsys):
        assert main(["run", "E1", "--set", "k=one"]) == 2
        assert "expects int" in capsys.readouterr().err

    def test_out_of_range_set_value(self, capsys):
        assert main(["run", "E1", "--set", "k=1"]) == 2
        assert ">= 2" in capsys.readouterr().err

    def test_malformed_set_pair(self, capsys):
        assert main(["run", "E1", "--set", "k"]) == 2
        assert "name=value" in capsys.readouterr().err

    def test_malformed_grid_axis(self, capsys):
        assert main(["sweep", "E1", "--grid", "k=2:4"]) == 2
        assert "start:stop:count" in capsys.readouterr().err

    def test_grid_unknown_param_lists_schema(self, capsys):
        assert main(["sweep", "E2", "--grid", "zz=1,2"]) == 2
        err = capsys.readouterr().err
        assert "unknown parameter 'zz'" in err
        assert "valid parameters: k, a, b, m" in err

    def test_set_with_multiple_experiments_rejected(self, capsys):
        assert main(["run", "all", "--set", "k=4"]) == 2
        assert "single experiment" in capsys.readouterr().err


class TestGridSweepCommand:
    def test_grid_sweep_runs_cartesian_product(self, capsys):
        code = main(["sweep", "E2", "--grid", "a=0.25,0.3", "--grid", "m=3,4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 point(s)" in out
        assert "a=0.25,m=3" in out
        assert "a=0.3,m=4" in out

    def test_grid_sweep_range_axis(self, capsys):
        code = main(["sweep", "E1", "--grid", "k=3:5:3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "k=3" in out and "k=4" in out and "k=5" in out

    def test_grid_sweep_with_cache_hits(self, capsys, tmp_path):
        arguments = ["sweep", "E1", "--grid", "k=3,4", "--cache", str(tmp_path)]
        assert main(arguments) == 0
        assert "cache hits: 0/2" in capsys.readouterr().out
        assert main(arguments) == 0
        assert "cache hits: 2/2" in capsys.readouterr().out

    def test_grid_sweep_equivalent_spellings_hit_cache(self, capsys, tmp_path):
        assert main(["sweep", "E1", "--grid", "k=3,4", "--cache", str(tmp_path)]) == 0
        capsys.readouterr()
        # 3e0 spells 3: resolves to the same canonical point -> cache hit.
        spelled = ["sweep", "E1", "--grid", "k=3e0,4", "--cache", str(tmp_path)]
        assert main(spelled) == 0
        assert "cache hits: 2/2" in capsys.readouterr().out

    def test_grid_sweep_multi_backend_rejected(self, capsys):
        arguments = ["sweep", "E4", "--grid", "n=100,200", "--backends", "count,agent"]
        assert main(arguments) == 2
        assert "single --backends" in capsys.readouterr().err


class TestParamsCommand:
    def test_params_prints_schema_table(self, capsys):
        assert main(["params", "E4"]) == 0
        out = capsys.readouterr().out
        assert "n" in out and "eps" in out
        assert "200000" in out      # fast default
        assert "1000000" in out     # full profile override

    def test_params_lowercase_id(self, capsys):
        assert main(["params", "e4"]) == 0
        assert "eps" in capsys.readouterr().out

    def test_params_json_round_trips(self, capsys):
        from repro.params import ParamSpace

        assert main(["params", "E4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rebuilt = ParamSpace.from_dict(payload)
        assert rebuilt.to_dict() == payload

    def test_params_unknown_experiment_exits_2(self, capsys):
        assert main(["params", "E404"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_params_all_prints_every_schema(self, capsys):
        from repro.experiments import all_experiments

        assert main(["params", "--all"]) == 0
        out = capsys.readouterr().out
        for experiment_id, title in all_experiments():
            assert f"{experiment_id}: {title}" in out

    def test_params_all_json_keyed_by_id(self, capsys):
        from repro.experiments import all_experiments
        from repro.params import ParamSpace

        assert main(["params", "--all", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == sorted(
            eid for eid, _ in all_experiments())
        for schema in payload.values():
            assert ParamSpace.from_dict(schema).to_dict() == schema

    def test_params_without_id_or_all_exits_2(self, capsys):
        assert main(["params"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_params_id_and_all_conflict_exits_2(self, capsys):
        assert main(["params", "E4", "--all"]) == 2
        assert "not both" in capsys.readouterr().err


class TestCacheCommand:
    def fill_cache(self, tmp_path) -> str:
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "E1", "--cache", cache_dir]) == 0
        assert main(["run", "E2", "--cache", cache_dir]) == 0
        return cache_dir

    def test_info_reports_entries(self, capsys, tmp_path):
        cache_dir = self.fill_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "info", "--cache", cache_dir]) == 0
        assert "2 entries" in capsys.readouterr().out

    def test_prune_by_size_evicts_everything_at_zero(self, capsys, tmp_path):
        cache_dir = self.fill_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "prune", "--cache", cache_dir, "--max-size", "0"]) == 0
        assert "evicted 2 entries" in capsys.readouterr().out

    def test_prune_by_age_keeps_fresh_entries(self, capsys, tmp_path):
        cache_dir = self.fill_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "prune", "--cache", cache_dir, "--max-age", "7d"]) == 0
        assert "evicted 0 entries, kept 2" in capsys.readouterr().out

    def test_prune_without_policy_exits_2(self, capsys, tmp_path):
        assert main(["cache", "prune", "--cache", str(tmp_path)]) == 2
        assert "--max-age" in capsys.readouterr().err

    def test_prune_malformed_age_exits_2(self, capsys, tmp_path):
        arguments = ["cache", "prune", "--cache", str(tmp_path), "--max-age", "soon"]
        assert main(arguments) == 2
        assert "malformed age" in capsys.readouterr().err

    def test_info_json_is_strict_and_machine_readable(self, capsys, tmp_path):
        cache_dir = self.fill_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "info", "--cache", cache_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["root"] == cache_dir
        assert payload["entries"] == 2
        assert payload["bytes"] > 0

    def test_info_json_on_empty_cache(self, capsys, tmp_path):
        assert main(["cache", "info", "--cache", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 0
        assert payload["bytes"] == 0


class TestHumanUnits:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("3600", 3600.0),
            ("90s", 90.0),
            ("5m", 300.0),
            ("12h", 43200.0),
            ("7d", 604800.0),
            ("1w", 604800.0),
        ],
    )
    def test_parse_age(self, spec, expected):
        assert parse_age(spec) == expected

    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("4096", 4096),
            ("2k", 2048),
            ("100M", 100 * 1024**2),
            ("1G", 1024**3),
        ],
    )
    def test_parse_size(self, spec, expected):
        assert parse_size(spec) == expected

    @pytest.mark.parametrize(
        "parse,bad",
        [
            (parse_age, "soon"),
            (parse_age, "-5"),
            (parse_age, "nan"),
            (parse_age, "inf"),
            (parse_size, "big"),
            (parse_size, "-1"),
            (parse_size, "nan"),
            (parse_size, "inf"),
        ],
    )
    def test_malformed_rejected(self, parse, bad):
        with pytest.raises(InvalidParameterError):
            parse(bad)


class TestSweepOutputRecords:
    def test_replicate_sweep_writes_jsonl(self, capsys, tmp_path):
        path = tmp_path / "records.jsonl"
        arguments = [
            "sweep",
            "E1",
            "--replicates",
            "2",
            "--output",
            str(path),
        ]
        code = main(arguments)
        assert code == 0
        assert f"wrote 2 record(s) to {path}" in capsys.readouterr().out
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert [record["label"] for record in records] == ["r0", "r1"]
        for record in records:
            assert record["experiment"] == "E1"
            assert record["from_cache"] is False
            assert record["report"]["experiment_id"] == "E1"
            assert record["report"]["checks"]

    def test_grid_sweep_records_carry_points(self, capsys, tmp_path):
        path = tmp_path / "grid.jsonl"
        arguments = [
            "sweep",
            "E6",
            "--grid",
            "samples=20,30",
            "--set",
            "tol=0.2",
            "--output",
            str(path),
        ]
        assert main(arguments) == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [record["params"]["samples"] for record in records] == [20, 30]
        assert all(record["params"]["tol"] == 0.2 for record in records)

    def test_records_are_strict_json(self, tmp_path):
        path = tmp_path / "strict.jsonl"
        arguments = ["sweep", "E1", "--replicates", "1", "--output", str(path)]
        assert main(arguments) == 0

        def reject(token):
            raise AssertionError(f"non-strict literal {token}")

        # strict decode: json.loads with a parse_constant hook that
        # rejects the non-portable NaN/Infinity literals
        for line in path.read_text().splitlines():
            json.loads(line, parse_constant=reject)


class TestFabricCli:
    def test_serve_without_cache_exits_2(self, capsys):
        assert main(["serve"]) == 2
        assert "--cache" in capsys.readouterr().err

    def test_serve_grid_without_experiment_exits_2(self, capsys, tmp_path):
        arguments = ["serve", "--cache", str(tmp_path), "--grid", "n=1e4"]
        assert main(arguments) == 2
        assert "experiment" in capsys.readouterr().err

    def test_shutdown_without_remote_exits_2(self, capsys):
        assert main(["sweep", "E1", "--shutdown"]) == 2
        assert "--remote" in capsys.readouterr().err

    def test_worker_against_dead_coordinator_exits_1(self, capsys):
        arguments = ["worker", "--remote", "http://127.0.0.1:1", "--retries", "0"]
        assert main(arguments) == 1

    def test_serve_worker_sweep_round_trip(self, tmp_path):
        # The whole fabric driven purely through CLI entry points:
        # coordinator and worker on background threads, a remote sweep
        # with --shutdown in the foreground, all via main().
        import socket
        import threading
        import time as time_module

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        url = f"http://127.0.0.1:{port}"
        codes = {}

        def serve():
            codes["serve"] = main(
                ["serve", "--cache", str(tmp_path / "cache"), "--port", str(port)]
            )

        def work():
            codes["worker"] = main(["worker", "--remote", url, "--poll", "0.05"])

        serve_thread = threading.Thread(target=serve, daemon=True)
        serve_thread.start()
        from repro.fabric import FabricUnavailable, fabric_status

        for _ in range(100):
            try:
                fabric_status(url, retries=0)
                break
            except FabricUnavailable:
                time_module.sleep(0.05)
        worker_thread = threading.Thread(target=work, daemon=True)
        worker_thread.start()

        records_path = tmp_path / "remote.jsonl"
        code = main(
            [
                "sweep",
                "E1",
                "--replicates",
                "2",
                "--remote",
                url,
                "--shutdown",
                "--output",
                str(records_path),
            ]
        )
        assert code == 0
        worker_thread.join(timeout=10.0)
        serve_thread.join(timeout=10.0)
        assert codes == {"serve": 0, "worker": 0}

        records = [
            json.loads(line)
            for line in records_path.read_text().splitlines()
        ]
        assert [record["source"] for record in records] == ["executed"] * 2
        assert all(record["worker"] for record in records)


class TestSweepSeries:
    E13_FAST = ["--set", "n=100", "--set", "m_urn=8", "--set", "m3=3"]

    def test_series_streams_and_reports(self, capsys, tmp_path):
        series_dir = tmp_path / "series"
        arguments = (["sweep", "E13", "--replicates", "2"]
                     + self.E13_FAST + ["--series", str(series_dir)])
        # Tiny-n E13 fails its physics checks (exit 1); streaming is
        # independent of check outcomes.
        assert main(arguments) in (0, 1)
        out = capsys.readouterr().out
        assert f"streamed 2 series file(s) under {series_dir}" in out
        files = sorted(series_dir.glob("*--coalescence.jsonl"))
        assert len(files) == 2
        for path in files:
            assert path.stat().st_size > 0

    def test_series_paths_land_in_output_records(self, capsys, tmp_path):
        series_dir = tmp_path / "series"
        records_path = tmp_path / "records.jsonl"
        arguments = (["sweep", "E13", "--replicates", "1"]
                     + self.E13_FAST
                     + ["--series", str(series_dir),
                        "--output", str(records_path)])
        assert main(arguments) in (0, 1)
        (record,) = [json.loads(line)
                     for line in records_path.read_text().splitlines()]
        assert len(record["series"]) == 1
        assert record["series"][0].endswith("--coalescence.jsonl")

    def test_records_without_series_have_no_key(self, capsys, tmp_path):
        records_path = tmp_path / "records.jsonl"
        arguments = (["sweep", "E13", "--replicates", "1"]
                     + self.E13_FAST + ["--output", str(records_path)])
        assert main(arguments) in (0, 1)
        (record,) = [json.loads(line)
                     for line in records_path.read_text().splitlines()]
        assert "series" not in record

    def test_series_with_remote_exits_2(self, capsys, tmp_path):
        arguments = ["sweep", "E1", "--remote", "http://127.0.0.1:1",
                     "--series", str(tmp_path)]
        assert main(arguments) == 2
        assert "--series" in capsys.readouterr().err

    def test_usage_error_does_not_truncate_output(self, capsys, tmp_path):
        # Validation happens before the record writer opens the file.
        records_path = tmp_path / "records.jsonl"
        records_path.write_text('{"precious": true}\n')
        arguments = ["sweep", "E1", "--remote", "http://127.0.0.1:1",
                     "--series", str(tmp_path / "series"),
                     "--output", str(records_path)]
        assert main(arguments) == 2
        assert records_path.read_text() == '{"precious": true}\n'


class TestSimulateObserve:
    BASE = ["simulate", "--n", "500", "--k", "3", "--steps", "20000",
            "--backend", "count", "--seed", "7"]

    def test_jsonl_stream(self, capsys, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        arguments = self.BASE + ["--observe-every", "5000",
                                 "--observe", f"jsonl:{path}"]
        assert main(arguments) == 0
        out = capsys.readouterr().out
        assert f"streamed 5 observation record(s)" in out
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        first = json.loads(lines[0])
        assert first["step"] == 0
        assert sum(first["counts"]) == 500

    def test_reducer_summary(self, capsys):
        arguments = self.BASE + ["--observe-every", "5000",
                                 "--observe", "mean"]
        assert main(arguments) == 0
        out = capsys.readouterr().out
        assert "observer summary: " in out
        summary = json.loads(out.split("observer summary: ")[1]
                             .splitlines()[0])
        assert summary["kind"] == "mean"
        assert summary["observations"] == 5

    def test_observe_without_cadence_exits_2(self, capsys):
        assert main(self.BASE + ["--observe", "mean"]) == 2
        assert "--observe-every" in capsys.readouterr().err

    def test_degree_profile_needs_topology(self, capsys):
        arguments = self.BASE + ["--observe-every", "5000",
                                 "--observe", "degree-profile"]
        assert main(arguments) == 2
        assert "topology" in capsys.readouterr().err

    def test_degree_profile_on_a_graph(self, capsys):
        arguments = ["simulate", "--n", "200", "--k", "3", "--steps",
                     "20000", "--backend", "agent", "--seed", "7",
                     "--topology", "ring:2", "--observe-every", "5000",
                     "--observe", "degree-profile"]
        assert main(arguments) == 0
        out = capsys.readouterr().out
        summary = json.loads(out.split("observer summary: ")[1]
                             .splitlines()[0])
        assert summary["kind"] == "degree-profile"
        assert summary["classes"] == [4]  # ring:2 is 4-regular

    def test_snapshots_run_completes_and_clears(self, capsys, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        arguments = self.BASE + ["--observe-every", "5000",
                                 "--observe", f"jsonl:{path}",
                                 "--snapshots", str(tmp_path / "snaps")]
        assert main(arguments) == 0
        assert len(path.read_text().splitlines()) == 5
        leftovers = list((tmp_path / "snaps").glob("*"))
        assert leftovers == []
