"""The sweep / run-all CLI commands and their orchestration knobs."""

import pytest

from repro.cli import main
from repro.experiments.base import _REGISTRY, ExperimentReport, register
from repro.utils import InvalidParameterError


@pytest.fixture
def failing_experiment():
    """Temporarily register an experiment whose single check fails."""

    def runner(fast=True, seed=None):
        return ExperimentReport(
            experiment_id="E99X",
            title="always fails",
            claim="test fixture",
            headers=["x"],
            rows=[[1]],
            checks={"never true": False},
        )

    register("E99X", "always fails")(runner)
    yield "E99X"
    del _REGISTRY["E99X"]


class TestSweepCommand:
    def test_sweep_passes_and_prints_rates(self, capsys):
        code = main(["sweep", "E1", "--replicates", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 replicate(s)" in out
        assert "[2/2]" in out

    def test_sweep_with_cache_reports_hits(self, capsys, tmp_path):
        arguments = [
            "sweep",
            "E1",
            "--replicates",
            "2",
            "--cache",
            str(tmp_path),
        ]
        assert main(arguments) == 0
        assert "cache hits: 0/2" in capsys.readouterr().out
        assert main(arguments) == 0
        assert "cache hits: 2/2" in capsys.readouterr().out

    def test_sweep_backends_grid(self, capsys):
        code = main(["sweep", "E2", "--replicates", "1", "--backends", "default"])
        assert code == 0
        assert "1 backend(s)" in capsys.readouterr().out

    def test_sweep_failing_experiment_exits_nonzero(
        self, capsys, failing_experiment
    ):
        assert main(["sweep", failing_experiment, "--replicates", "2"]) == 1
        assert "[0/2] never true" in capsys.readouterr().out

    def test_sweep_unknown_experiment_fails_fast(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            main(["sweep", "E404"])


class TestRunCommand:
    def test_run_with_cache_marks_cached(self, capsys, tmp_path):
        arguments = ["run", "E1", "--cache", str(tmp_path)]
        assert main(arguments) == 0
        assert "(cached)" not in capsys.readouterr().out
        assert main(arguments) == 0
        assert "(cached)" in capsys.readouterr().out

    def test_run_failing_experiment_exits_nonzero(self, failing_experiment):
        assert main(["run", failing_experiment]) == 1

    def test_run_unknown_experiment_fails_fast(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            main(["run", "E404"])
