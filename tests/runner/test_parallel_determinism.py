"""Parallel-vs-serial equivalence: identical seeds => identical records.

The orchestration contract the ISSUE pins down: fanning work out across
worker processes must never change the records — ``jobs=1`` and
``jobs=4`` produce byte-identical results for runner plans (on both
engine backends) and for ``parameter_sweep`` grids.
"""

import json

import numpy as np

from repro.analysis.sweep import parameter_sweep
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.runner import execute, replicate_plan


def measure_point(n: int, seed: int, backend: str) -> dict:
    # Module-level so the sweep's process pool can pickle it.
    shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
    grid = GenerosityGrid(k=3, g_max=0.6)
    sim = IGTSimulation(
        n=n,
        shares=shares,
        grid=grid,
        seed=seed,
        initial_indices=0,
        backend=backend,
    )
    sim.run(2000)
    return {
        "mean_generosity": sim.average_generosity(),
        "final_counts": [int(c) for c in sim.counts],
    }


def canonical(records) -> str:
    return json.dumps(records, sort_keys=True)


class TestRunnerJobsEquivalence:
    def test_replicates_identical_across_jobs_and_backends(self):
        payloads = {}
        for jobs in (1, 4):
            plan = replicate_plan(
                "E2",
                replicates=2,
                base_seed=11,
                backends=("count", "agent"),
                jobs=jobs,
            )
            report = execute(plan)
            assert len(report.results) == 4
            payloads[jobs] = [r.report.to_dict() for r in report.results]
        assert canonical(payloads[1]) == canonical(payloads[4])


class TestSweepJobsEquivalence:
    def test_grid_identical_across_jobs(self):
        results = {}
        for jobs in (1, 4):
            sweep = parameter_sweep(
                measure_point,
                jobs=jobs,
                n=[60, 90],
                seed=[3, 4],
                backend=["count", "agent"],
            )
            assert len(sweep.records) == 8
            results[jobs] = sweep.records
        assert canonical(results[1]) == canonical(results[4])

    def test_backends_share_the_seed_grid(self):
        # Both backends are swept over identical (n, seed) points, so the
        # record layout is comparable point-for-point across backends.
        sweep = parameter_sweep(
            measure_point,
            n=[60],
            seed=[3, 4],
            backend=["count", "agent"],
        )
        count_rows = sweep.where(backend="count")
        agent_rows = sweep.where(backend="agent")
        assert [r["seed"] for r in count_rows] == [r["seed"] for r in agent_rows]
        for row in sweep.records:
            assert sum(row["final_counts"]) == 30  # GTFT head count at n=60
            assert np.isfinite(row["mean_generosity"])


class TestSeedAxisJobsEquivalence:
    """--grid seed=... replicate grids obey the same jobs-determinism
    contract as parameter grids."""

    def test_grid_plan_seed_axis_identical_across_jobs(self):
        from repro.runner import grid_plan

        payloads = {}
        for jobs in (1, 4):
            plan = grid_plan("E1", {"k": [3, 4], "seed": [0, 1, 2]},
                             jobs=jobs)
            assert [task.seed for task in plan.tasks] == [0, 1, 2, 0, 1, 2]
            # The axis is a task coordinate, never a parameter override.
            assert all("seed" not in task.params_dict()
                       for task in plan.tasks)
            assert plan.tasks[0].label == "k=3,seed=0"
            report = execute(plan)
            payloads[jobs] = [r.report.to_dict() for r in report.results]
        assert canonical(payloads[1]) == canonical(payloads[4])
