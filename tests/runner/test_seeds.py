"""Deterministic per-task seed streams."""

import numpy as np
import pytest

from repro.runner import task_seed, task_seeds
from repro.utils import InvalidParameterError


class TestTaskSeed:
    def test_deterministic(self):
        assert task_seed(123, 7) == task_seed(123, 7)

    def test_distinct_across_indices(self):
        seeds = task_seeds(123, 64)
        assert len(set(seeds)) == 64

    def test_distinct_across_base_seeds(self):
        # Adjacent integer base seeds must not produce colliding streams.
        left = set(task_seeds(0, 32))
        right = set(task_seeds(1, 32))
        assert not left & right

    def test_matches_seed_sequence_spawning(self):
        # The contract: task i's seed is child i of SeedSequence(base).
        children = np.random.SeedSequence(99).spawn(5)
        expected = [int(c.generate_state(1, np.uint64)[0]) for c in children]
        assert task_seeds(99, 5) == expected

    def test_plain_int(self):
        seed = task_seed(5, 0)
        assert type(seed) is int
        np.random.default_rng(seed)  # usable as a generator seed

    def test_rejects_non_integer_base(self):
        with pytest.raises(InvalidParameterError, match="integer"):
            task_seed(np.random.default_rng(0), 0)

    def test_rejects_negative_index(self):
        with pytest.raises(InvalidParameterError, match=">= 0"):
            task_seed(1, -1)

    def test_rejects_negative_count(self):
        with pytest.raises(InvalidParameterError, match=">= 0"):
            task_seeds(1, -2)
