"""Resumable-sweep plumbing: env channel binding, scoping, E4 wiring.

The engine-level byte-identity contract lives in
``tests/property/test_snapshot_equivalence.py``; these tests pin the
*runner* half — how :func:`repro.runner.executor.run_task` binds a
snapshot channel from :data:`SNAPSHOT_DIR_ENV`, when checkpoints are
cleared versus kept, and that E4's relaxation actually checkpoints
through a scoped channel (so ``repro sweep --resume`` has something to
resume).  The full kill-and-resume byte-compare runs as a subprocess
scenario in ``scripts/run_chaos_smoke.py``.
"""

import os

import pytest

from repro.engine.snapshot import (
    RecordingChannel,
    SnapshotState,
    SnapshotStore,
    use_snapshot_channel,
)
from repro.runner import RunPlan, RunTask, execute, run_task, strip_provenance
from repro.runner.executor import (
    SNAPSHOT_DIR_ENV,
    _snapshot_dir_env,
    _task_cache_key,
)
def stale_snapshot() -> SnapshotState:
    return SnapshotState(kind="count", payload={"steps_run": 3})


class TestEnvChannelBinding:
    def test_success_clears_the_task_checkpoints(self, tmp_path, monkeypatch):
        task = RunTask(experiment_id="E1", seed=3)
        store = SnapshotStore(tmp_path / "snapshots")
        store.save(_task_cache_key(task), stale_snapshot())
        monkeypatch.setenv(SNAPSHOT_DIR_ENV, str(tmp_path / "snapshots"))
        run_task(task)
        assert store.load(_task_cache_key(task)) is None

    def test_failure_keeps_the_task_checkpoints(self, tmp_path, monkeypatch):
        import repro.experiments.base as base

        def dying(*args, **kwargs):
            raise RuntimeError("simulated mid-task crash")

        task = RunTask(experiment_id="E1", seed=3)
        store = SnapshotStore(tmp_path / "snapshots")
        store.save(_task_cache_key(task), stale_snapshot())
        monkeypatch.setenv(SNAPSHOT_DIR_ENV, str(tmp_path / "snapshots"))
        monkeypatch.setattr(base, "run_experiment", dying)
        with pytest.raises(RuntimeError, match="simulated"):
            run_task(task)
        found = store.load(_task_cache_key(task))
        assert found is not None and found.payload == {"steps_run": 3}

    def test_no_env_means_no_channel_side_effects(self, tmp_path):
        task = RunTask(experiment_id="E1", seed=3)
        store = SnapshotStore(tmp_path / "snapshots")
        store.save(_task_cache_key(task), stale_snapshot())
        assert SNAPSHOT_DIR_ENV not in os.environ
        run_task(task)
        assert store.load(_task_cache_key(task)) is not None

    def test_ambient_channel_wins_over_env(self, tmp_path, monkeypatch):
        # The fabric worker binds its HTTP channel before run_task runs;
        # the env directory must not shadow it.
        task = RunTask(experiment_id="E1", seed=3)
        store = SnapshotStore(tmp_path / "snapshots")
        store.save(_task_cache_key(task), stale_snapshot())
        monkeypatch.setenv(SNAPSHOT_DIR_ENV, str(tmp_path / "snapshots"))
        ambient = RecordingChannel()
        with use_snapshot_channel(ambient):
            run_task(task)
        assert ambient.cleared == 1
        assert store.load(_task_cache_key(task)) is not None


class TestSnapshotDirEnv:
    def test_sets_and_restores(self, monkeypatch):
        monkeypatch.delenv(SNAPSHOT_DIR_ENV, raising=False)
        with _snapshot_dir_env("/tmp/snaps"):
            assert os.environ[SNAPSHOT_DIR_ENV] == "/tmp/snaps"
        assert SNAPSHOT_DIR_ENV not in os.environ

    def test_restores_previous_value(self, monkeypatch):
        monkeypatch.setenv(SNAPSHOT_DIR_ENV, "/previous")
        with _snapshot_dir_env("/tmp/snaps"):
            assert os.environ[SNAPSHOT_DIR_ENV] == "/tmp/snaps"
        assert os.environ[SNAPSHOT_DIR_ENV] == "/previous"

    def test_none_is_a_no_op(self):
        with _snapshot_dir_env(None):
            assert SNAPSHOT_DIR_ENV not in os.environ


class TestExecuteResume:
    def test_snapshot_dir_execute_matches_plain(self, tmp_path):
        plan = RunPlan(tasks=(RunTask(experiment_id="E1", seed=11),
                              RunTask(experiment_id="E2", seed=11)))
        plain = execute(plan)
        resumed = execute(plan, snapshot_dir=tmp_path / "snapshots")
        assert SNAPSHOT_DIR_ENV not in os.environ
        assert [strip_provenance(r) for r in resumed.to_records()] == [
            strip_provenance(r) for r in plain.to_records()
        ]

    def test_cached_cells_never_reexecute(self, tmp_path):
        plan = RunPlan(tasks=(RunTask(experiment_id="E1", seed=11),),
                       cache_dir=str(tmp_path / "cache"))
        first = execute(plan, snapshot_dir=tmp_path / "snapshots")
        second = execute(plan, snapshot_dir=tmp_path / "snapshots")
        assert [r.source for r in first.results] == ["executed"]
        assert [r.source for r in second.results] == ["cache"]


class TestE4Checkpointing:
    """E4's relaxation must checkpoint scoped, resumable snapshots."""

    PARAMS = {"n": 60_000, "m": 4, "k_max": 3, "m_urn": 8}

    def test_relaxation_checkpoints_through_scoped_channel(self):
        from repro.experiments.base import run_experiment

        channel = RecordingChannel()
        with use_snapshot_channel(channel):
            report = run_experiment("E4", params=self.PARAMS, seed=2)
        # The relaxation outruns one segment at this n, so snapshots
        # flowed — each tagged with the sub-run scope that keeps one
        # task's multiple simulations from resuming each other.
        assert len(channel.snapshots) > 0
        scopes = {s.payload["scope"] for s in channel.snapshots}
        assert all(scope.startswith("e4-relax:n=") for scope in scopes)

        # Channel presence is invisible in the result (segmented
        # execution is unconditional).
        bare = run_experiment("E4", params=self.PARAMS, seed=2)
        assert bare.to_dict() == report.to_dict()

    def test_relaxation_resumes_from_mid_run_checkpoint(self):
        from repro.experiments.base import run_experiment

        recording = RecordingChannel()
        with use_snapshot_channel(recording):
            baseline = run_experiment("E4", params=self.PARAMS, seed=2)
        middle = recording.snapshots[len(recording.snapshots) // 2]

        resumed_channel = RecordingChannel(initial=middle)
        with use_snapshot_channel(resumed_channel):
            resumed = run_experiment("E4", params=self.PARAMS, seed=2)
        assert resumed.to_dict() == baseline.to_dict()
