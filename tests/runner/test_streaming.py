"""Runner-level streaming: per-task series files and record streaming.

The sweep executor binds an ambient series scope per task (keyed like
the result cache), discovers whatever JSONL series the experiment
streamed, carries the paths on :class:`~repro.runner.plan.TaskResult`
and through the cache, and hands finished records to a
``record_stream`` callback in task order the moment each task's
done-prefix completes.  E13 is the streaming experiment of record: its
coalescence probe rows go to a ``coalescence`` series whenever a scope
is bound.
"""

import json
import os

from repro.engine.observe import SERIES_DIR_ENV, decode_record
from repro.runner import RunPlan, RunTask, execute, run_task, task_record
from repro.runner.executor import _task_cache_key

E13_FAST = {"n": 100, "m_urn": 8, "m3": 3}


def e13_task(seed=3):
    return RunTask(experiment_id="E13", seed=seed, params=E13_FAST)


def series_files(root):
    return sorted(str(path) for path in root.glob("*.jsonl"))


class TestSeriesScope:
    def test_no_env_means_no_series(self, tmp_path):
        assert SERIES_DIR_ENV not in os.environ
        run_task(e13_task())
        assert series_files(tmp_path) == []

    def test_env_scope_streams_task_series(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SERIES_DIR_ENV, str(tmp_path))
        task = e13_task()
        run_task(task)
        found = series_files(tmp_path)
        assert len(found) == 1
        name = os.path.basename(found[0])
        assert name.startswith(_task_cache_key(task))
        assert name.endswith("--coalescence.jsonl")
        with open(found[0], "rb") as handle:
            rows = [decode_record(line) for line in handle]
        assert rows  # the probe cadence produced real observations
        steps = [step for step, _ in rows]
        assert steps == sorted(steps)


class TestExecuteSeries:
    def test_results_carry_series_paths(self, tmp_path):
        plan = RunPlan(tasks=(e13_task(3), e13_task(4)))
        report = execute(plan, series_dir=tmp_path / "series")
        assert SERIES_DIR_ENV not in os.environ
        for result in report.results:
            assert len(result.series) == 1
            assert os.path.exists(result.series[0])
            assert "--coalescence.jsonl" in result.series[0]

    def test_series_survive_the_cache(self, tmp_path):
        plan = RunPlan(tasks=(e13_task(),),
                       cache_dir=str(tmp_path / "cache"))
        first = execute(plan, series_dir=tmp_path / "series")
        second = execute(plan, series_dir=tmp_path / "series")
        assert [r.source for r in second.results] == ["cache"]
        assert second.results[0].series == first.results[0].series

    def test_records_without_series_are_unchanged(self, tmp_path):
        # Byte-compat: a series-free run's records must not grow a key.
        plan = RunPlan(tasks=(e13_task(),))
        report = execute(plan)
        record = task_record(report.results[0])
        assert "series" not in record
        streamed = execute(plan, series_dir=tmp_path / "series")
        with_series = task_record(streamed.results[0])
        assert "series" in with_series
        del with_series["series"]
        assert sorted(with_series) == sorted(record)


class TestRecordStream:
    def test_streams_in_task_order(self):
        plan = RunPlan(tasks=(e13_task(3), e13_task(4), e13_task(5)))
        seen = []
        report = execute(plan, record_stream=seen.append)
        assert [r.task.seed for r in seen] == [3, 4, 5]
        assert seen == list(report.results)

    def test_streams_cache_hits_too(self, tmp_path):
        plan = RunPlan(tasks=(e13_task(),),
                       cache_dir=str(tmp_path / "cache"))
        execute(plan)
        seen = []
        execute(plan, record_stream=seen.append)
        assert len(seen) == 1

    def test_streamed_records_serialize_like_the_report(self, tmp_path):
        plan = RunPlan(tasks=(e13_task(),))
        lines = []
        report = execute(
            plan,
            record_stream=lambda r: lines.append(
                json.dumps(task_record(r), sort_keys=True,
                           allow_nan=False)))
        assert [json.loads(line) for line in lines] == report.to_records()
