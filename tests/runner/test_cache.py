"""Cache keys (and their invalidation) plus the on-disk result store."""

import json

import pytest

from repro.runner import (
    ResultCache,
    cache_key,
    code_version,
    experiment_cache_key,
    parallel_map,
)
from repro.utils import InvalidParameterError

BASE = dict(
    experiment_id="E5",
    params={"fast": True},
    seed=7,
    backend="count",
    version="abc123",
)


def key_with(**overrides) -> str:
    coordinates = {**BASE, **overrides}
    return cache_key(
        coordinates["experiment_id"],
        coordinates["params"],
        coordinates["seed"],
        coordinates["backend"],
        coordinates["version"],
    )


class TestCacheKeyInvalidation:
    def test_stable_for_identical_coordinates(self):
        assert key_with() == key_with()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("experiment_id", "E6"),
            ("params", {"fast": False}),
            ("seed", 8),
            ("backend", "agent"),
            ("backend", None),
            ("version", "def456"),
        ],
    )
    def test_any_coordinate_change_invalidates(self, field, value):
        assert key_with(**{field: value}) != key_with()

    def test_experiment_id_case_insensitive(self):
        assert key_with(experiment_id="e5") == key_with(experiment_id="E5")

    def test_params_order_irrelevant(self):
        left = cache_key("E1", {"a": 1, "b": 2}, 0, None, "v")
        right = cache_key("E1", {"b": 2, "a": 1}, 0, None, "v")
        assert left == right

    def test_defaults_to_live_code_version(self):
        live = cache_key("E1", {}, 0, None)
        pinned = cache_key("E1", {}, 0, None, code_version())
        assert live == pinned
        assert live != cache_key("E1", {}, 0, None, "not-the-live-version")

    def test_rejects_generator_seeds(self):
        import numpy as np

        with pytest.raises(InvalidParameterError, match="seed"):
            cache_key("E1", {}, np.random.default_rng(0), None, "v")

    def test_rejects_unserializable_params(self):
        with pytest.raises(InvalidParameterError, match="JSON"):
            cache_key("E1", {"fn": object()}, 0, None, "v")


class TestExperimentCacheKey:
    def test_backend_ignored_by_backendless_runners(self):
        # E1 is exact computation: its runner has no backend parameter,
        # so the knob must not split the cache into duplicate entries.
        with_backend = experiment_cache_key("E1", True, 7, "count")
        without = experiment_cache_key("E1", True, 7, None)
        assert with_backend == without

    def test_backend_distinguishes_backend_aware_runners(self):
        # E4 simulates populations and accepts backend=.
        count_key = experiment_cache_key("E4", True, 7, "count")
        agent_key = experiment_cache_key("E4", True, 7, "agent")
        default_key = experiment_cache_key("E4", True, 7, None)
        assert len({count_key, agent_key, default_key}) == 3

    def test_seed_and_fast_still_split(self):
        base = experiment_cache_key("E1", True, 7, None)
        assert experiment_cache_key("E1", False, 7, None) != base
        assert experiment_cache_key("E1", True, 8, None) != base

    def test_bool_shim_matches_profile_names(self):
        fast_key = experiment_cache_key("E1", "fast", 7, None)
        full_key = experiment_cache_key("E1", "full", 7, None)
        assert experiment_cache_key("E1", True, 7, None) == fast_key
        assert experiment_cache_key("E1", False, 7, None) == full_key

    def test_equivalent_param_spellings_share_a_key(self):
        # n=1e4 (string), n=10000.0 (float) and n=10000 (int) all resolve
        # to the same canonical payload -> one cache entry.
        base = experiment_cache_key("E4", "fast", 7, None, {"n": 10_000})
        assert experiment_cache_key("E4", "fast", 7, None, {"n": "1e4"}) == base
        assert experiment_cache_key("E4", "fast", 7, None, {"n": 10_000.0}) == base

    def test_default_equal_override_shares_the_bare_key(self):
        bare = experiment_cache_key("E1", "fast", 7, None)
        spelled = experiment_cache_key("E1", "fast", 7, None, {"k": 6})
        assert bare == spelled  # k=6 is E1's declared default

    def test_changed_param_splits_the_key(self):
        bare = experiment_cache_key("E1", "fast", 7, None)
        assert experiment_cache_key("E1", "fast", 7, None, {"k": 4}) != bare

    def test_unknown_param_rejected_with_schema(self):
        with pytest.raises(InvalidParameterError, match="valid parameters"):
            experiment_cache_key("E1", "fast", 7, None, {"zz": 1})


class TestCodeVersion:
    def test_stable_within_process(self):
        assert code_version() == code_version()

    def test_short_hex(self):
        version = code_version()
        assert len(version) == 16
        int(version, 16)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = key_with()
        assert cache.get(key) is None
        cache.put(key, {"report": {"x": 1}})
        assert cache.get(key) == {"report": {"x": 1}}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        for index in range(3):
            cache.put(key_with(seed=index), {"seed": index})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = key_with()
        cache.put(key, {"ok": True})
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_write_is_atomic(self, tmp_path):
        # No temp files are left behind and the entry parses as JSON.
        cache = ResultCache(tmp_path)
        key = key_with()
        cache.put(key, {"payload": list(range(100))})
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []
        stored = json.loads((tmp_path / key[:2] / f"{key}.json").read_text())
        assert stored["payload"][:3] == [0, 1, 2]

    def test_put_rejects_non_strict_json(self, tmp_path):
        # Raw NaN payloads must be encoded portably upstream; the store
        # refuses to write non-strict JSON rather than emit NaN literals.
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.put(key_with(), {"x": float("nan")})


def hammer_one_key(args) -> int:
    """Write/read one key 25 times (module-level for the spawn pool).

    Every read must see a complete entry: atomic ``os.replace`` writes
    mean concurrent writers can race on *which* payload wins, never on
    whether the file parses.
    """
    root, key, writer = args
    cache = ResultCache(root)
    for iteration in range(25):
        cache.put(
            key, {"writer": writer, "iteration": iteration, "pad": "x" * 256}
        )
        entry = cache.get(key)
        assert entry is not None, "reader saw a torn entry"
        assert set(entry) == {"writer", "iteration", "pad"}
    return writer


class TestConcurrentWriters:
    def test_racing_processes_never_tear_an_entry(self, tmp_path):
        # Four spawn-pool processes hammer the same key concurrently —
        # the multi-sweep-sharing-one-cache (and fabric-coordinator)
        # scenario.  The store must stay readable throughout and end in
        # a complete final state with no temp-file debris.
        key = key_with()
        writers = parallel_map(
            hammer_one_key,
            [(str(tmp_path), key, writer) for writer in range(4)],
            jobs=4,
        )
        assert sorted(writers) == [0, 1, 2, 3]
        assert list(tmp_path.rglob("*.tmp")) == []
        final = json.loads((tmp_path / key[:2] / f"{key}.json").read_text())
        assert set(final) == {"writer", "iteration", "pad"}
        # The chronologically last replace is some writer's final write.
        assert final["iteration"] == 24


class TestPrune:
    def seed_entries(self, tmp_path, ages):
        """One entry per age (seconds before 'now'); returns the cache."""
        import os

        cache = ResultCache(tmp_path)
        now = 1_000_000_000.0
        for index, age in enumerate(ages):
            key = key_with(seed=index)
            cache.put(key, {"payload": "x" * 100, "index": index})
            path = tmp_path / key[:2] / f"{key}.json"
            os.utime(path, (now - age, now - age))
        return cache, now

    def test_max_age_evicts_old_entries(self, tmp_path):
        cache, now = self.seed_entries(tmp_path, [10, 5000, 10_000])
        stats = cache.prune(max_age=3600, now=now)
        assert stats["removed"] == 2
        assert stats["kept"] == 1
        assert len(cache) == 1

    def test_max_size_evicts_oldest_first(self, tmp_path):
        cache, now = self.seed_entries(tmp_path, [30, 20, 10])
        sizes = [size for _, _, size in cache._entries()]
        stats = cache.prune(max_size=sizes[0] * 2, now=now)
        assert stats["removed"] == 1
        assert len(cache) == 2
        # The newest two survive: their payload indices are 1 and 2.
        kept = []
        for path in tmp_path.glob("*/*.json"):
            kept.append(json.loads(path.read_text())["index"])
        assert sorted(kept) == [1, 2]

    def test_combined_policies(self, tmp_path):
        cache, now = self.seed_entries(tmp_path, [10, 20, 99_999])
        stats = cache.prune(max_age=3600, max_size=0, now=now)
        assert stats["removed"] == 3
        assert stats["bytes"] == 0

    def test_prune_without_policy_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="max_age"):
            ResultCache(tmp_path).prune()

    def test_negative_knobs_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            ResultCache(tmp_path).prune(max_age=-1)
        with pytest.raises(InvalidParameterError):
            ResultCache(tmp_path).prune(max_size=-1)

    def test_stats_reports_entries_and_bytes(self, tmp_path):
        cache, _ = self.seed_entries(tmp_path, [10, 20])
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
