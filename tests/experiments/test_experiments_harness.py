"""Tests for the experiment registry, parameter specs, reports, and CLI."""

import math

import pytest

from repro.cli import main
from repro.experiments import (
    all_experiments,
    experiment_params,
    get_experiment,
    get_spec,
    run_experiment,
)
from repro.experiments.base import (
    _REGISTRY,
    ExperimentReport,
    _from_wire,
    _jsonable,
    register,
)
from repro.params import ParamSpace
from repro.utils import InvalidParameterError

EXPECTED_IDS = [f"E{i}" for i in range(1, 17)]


class TestRegistry:
    def test_all_sixteen_registered(self):
        ids = [eid for eid, _ in all_experiments()]
        assert sorted(ids) == sorted(EXPECTED_IDS)

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("e1") is get_experiment("E1")

    def test_unknown_id_raises(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            get_experiment("E99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidParameterError):
            register("E1", "dup")(lambda fast, seed: None)

    def test_register_normalizes_lowercase_ids(self):
        # register() uppercases ids exactly like get_experiment lookups,
        # so a lowercase registration cannot shadow its uppercase twin.
        def runner(params=None, seed=None):
            return None

        register("e77x", "normalized")(runner)
        try:
            assert "E77X" in _REGISTRY
            assert "e77x" not in _REGISTRY
            assert get_experiment("e77x") is runner
            assert get_experiment("E77X") is runner
        finally:
            del _REGISTRY["E77X"]

    def test_register_lowercase_duplicate_rejected(self):
        with pytest.raises(InvalidParameterError, match="twice"):
            register("e1", "dup")(lambda params, seed: None)

    def test_register_blank_id_rejected(self):
        with pytest.raises(InvalidParameterError, match="non-empty"):
            register("  ", "blank")(lambda params, seed: None)

    def test_titles_nonempty(self):
        assert all(title for _, title in all_experiments())


class TestParamSpaces:
    """Every experiment declares a typed, resolvable parameter schema."""

    @pytest.mark.parametrize("experiment_id", EXPECTED_IDS)
    def test_declares_a_param_space(self, experiment_id):
        space = experiment_params(experiment_id)
        assert isinstance(space, ParamSpace)
        assert len(space) > 0, f"{experiment_id} declares no knobs"

    @pytest.mark.parametrize("experiment_id", EXPECTED_IDS)
    def test_profiles_resolve(self, experiment_id):
        space = experiment_params(experiment_id)
        fast = space.resolve("fast")
        full = space.resolve("full")
        assert set(fast.values) == set(full.values) == set(space.names)

    @pytest.mark.parametrize("experiment_id", EXPECTED_IDS)
    def test_schema_round_trips_through_json(self, experiment_id):
        space = experiment_params(experiment_id)
        assert ParamSpace.from_dict(space.to_dict()).to_dict() == \
            space.to_dict()

    @pytest.mark.parametrize("experiment_id", EXPECTED_IDS)
    def test_every_param_documented(self, experiment_id):
        for param in experiment_params(experiment_id):
            assert param.help, \
                f"{experiment_id}.{param.name} lacks a help string"

    def test_spec_resolve_prefixes_errors_with_the_id(self):
        with pytest.raises(InvalidParameterError, match="E4: unknown"):
            get_spec("E4").resolve("fast", {"zz": 1})

    def test_run_experiment_rejects_unknown_params(self):
        with pytest.raises(InvalidParameterError, match="valid parameters"):
            run_experiment("E1", params={"zz": 1})

    def test_run_experiment_accepts_string_spellings(self):
        report = run_experiment("E1", params={"k": "4"})
        assert len(report.rows) == 4
        assert report.all_checks_pass

    def test_profile_changes_resolved_scale(self):
        report = run_experiment("E12", profile="full")
        # full resolves k_max=64 -> 6 k values x 4 betas = 24 rows.
        assert len(report.rows) == 24
        assert report.all_checks_pass


class TestWireFormat:
    """Strict-JSON wire coding of report payloads (incl. nan/inf cells)."""

    def test_non_finite_floats_encode_portably(self):
        assert _jsonable(math.nan) == {"$float": "nan"}
        assert _jsonable(math.inf) == {"$float": "inf"}
        assert _jsonable(-math.inf) == {"$float": "-inf"}

    def test_from_wire_decodes_markers(self):
        assert math.isnan(_from_wire({"$float": "nan"}))
        assert _from_wire({"$float": "inf"}) == math.inf
        assert _from_wire({"$float": "-inf"}) == -math.inf
        assert _from_wire({"$float": "bogus"}) == {"$float": "bogus"}

    def test_report_with_non_finite_cells_round_trips(self):
        import json

        import numpy as np

        report = ExperimentReport(
            experiment_id="EW", title="wire", claim="c",
            headers=["value"],
            rows=[[math.nan], [math.inf], [-math.inf],
                  [np.float64("nan")], [1.5], ["text"], [None]],
        )
        payload = report.to_dict()
        # The payload is strict JSON: no NaN/Infinity literals anywhere.
        encoded = json.dumps(payload, allow_nan=False)
        decoded = ExperimentReport.from_dict(json.loads(encoded))
        assert math.isnan(decoded.rows[0][0])
        assert decoded.rows[1][0] == math.inf
        assert decoded.rows[2][0] == -math.inf
        assert math.isnan(decoded.rows[3][0])
        assert decoded.rows[4:] == [[1.5], ["text"], [None]]
        # A second round-trip is the identity.
        assert decoded.to_dict() == payload


class TestReport:
    def test_render_contains_table_and_checks(self):
        report = ExperimentReport(
            experiment_id="EX", title="t", claim="c",
            headers=["a"], rows=[[1]], checks={"ok": True, "bad": False},
            notes=["hello"])
        text = report.render()
        assert "EX" in text
        assert "[PASS] ok" in text
        assert "[FAIL] bad" in text
        assert "note: hello" in text

    def test_all_checks_pass(self):
        good = ExperimentReport("E", "t", "c", ["h"], checks={"x": True})
        bad = ExperimentReport("E", "t", "c", ["h"], checks={"x": False})
        assert good.all_checks_pass
        assert not bad.all_checks_pass

    def test_empty_checks_pass(self):
        report = ExperimentReport("E", "t", "c", ["h"])
        assert report.all_checks_pass


class TestDeterministicExperiments:
    """The cheap, fully deterministic experiments run and pass here; the
    stochastic ones are exercised in the integration suite and benchmarks."""

    @pytest.mark.parametrize("experiment_id", ["E1", "E2", "E4", "E8",
                                               "E12", "E13", "E16"])
    def test_runs_and_passes(self, experiment_id):
        report = run_experiment(experiment_id, fast=True)
        assert report.experiment_id == experiment_id
        assert report.rows
        assert report.all_checks_pass, report.render()

    def test_e1_has_six_rows(self):
        assert len(run_experiment("E1").rows) == 6

    def test_e2_has_ten_rows(self):
        assert len(run_experiment("E2").rows) == 10

    def test_reports_render(self):
        for experiment_id in ("E1", "E2"):
            text = run_experiment(experiment_id).render()
            assert "claim:" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in EXPECTED_IDS:
            assert eid in out

    def test_run_single(self, capsys):
        assert main(["run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out

    def test_run_with_seed(self, capsys):
        assert main(["run", "E2", "--seed", "7"]) == 0

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestBackendDispatchAndProfiles:
    def test_e4_huge_profile_resolves_to_population_scale(self):
        spec = get_spec("E4")
        resolved = spec.resolve("huge")
        assert resolved["n"] == 10_000_000
        # everything else stays at the fast defaults
        assert resolved["m_urn"] == spec.resolve("fast")["m_urn"]

    def test_e16_declares_population_knobs(self):
        spec = get_spec("E16")
        resolved = spec.resolve("fast")
        assert resolved["n_pop"] >= 80
        assert spec.resolve("full")["n_pop"] > resolved["n_pop"]

    def test_run_experiment_accepts_auto_backend(self):
        report = run_experiment("E6", backend="auto",
                                params={"samples": 20, "tol": 0.2})
        assert report.experiment_id == "E6"

    def test_run_experiment_rejects_unknown_backend(self):
        with pytest.raises(InvalidParameterError):
            run_experiment("E6", backend="gpu")

    def test_e6_weighted_variant_runs_both_backends(self):
        for backend in ("agent", "count"):
            report = run_experiment(
                "E6", backend=backend,
                params={"samples": 20, "tol": 0.2,
                        "weights": "twoclass:3"})
            assert report.all_checks_pass
            assert any("twoclass:3" in row for row in report.rows)

    def test_e6_rejects_malformed_weight_spec(self):
        with pytest.raises(InvalidParameterError):
            run_experiment("E6", params={"weights": "zipf"})
