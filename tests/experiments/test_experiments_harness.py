"""Tests for the experiment registry, reports, and the CLI."""

import pytest

from repro.cli import main
from repro.experiments import all_experiments, get_experiment, run_experiment
from repro.experiments.base import ExperimentReport, register
from repro.utils import InvalidParameterError

EXPECTED_IDS = [f"E{i}" for i in range(1, 17)]


class TestRegistry:
    def test_all_sixteen_registered(self):
        ids = [eid for eid, _ in all_experiments()]
        assert sorted(ids) == sorted(EXPECTED_IDS)

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("e1") is get_experiment("E1")

    def test_unknown_id_raises(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            get_experiment("E99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidParameterError):
            register("E1", "dup")(lambda fast, seed: None)

    def test_titles_nonempty(self):
        assert all(title for _, title in all_experiments())


class TestReport:
    def test_render_contains_table_and_checks(self):
        report = ExperimentReport(
            experiment_id="EX", title="t", claim="c",
            headers=["a"], rows=[[1]], checks={"ok": True, "bad": False},
            notes=["hello"])
        text = report.render()
        assert "EX" in text
        assert "[PASS] ok" in text
        assert "[FAIL] bad" in text
        assert "note: hello" in text

    def test_all_checks_pass(self):
        good = ExperimentReport("E", "t", "c", ["h"], checks={"x": True})
        bad = ExperimentReport("E", "t", "c", ["h"], checks={"x": False})
        assert good.all_checks_pass
        assert not bad.all_checks_pass

    def test_empty_checks_pass(self):
        report = ExperimentReport("E", "t", "c", ["h"])
        assert report.all_checks_pass


class TestDeterministicExperiments:
    """The cheap, fully deterministic experiments run and pass here; the
    stochastic ones are exercised in the integration suite and benchmarks."""

    @pytest.mark.parametrize("experiment_id", ["E1", "E2", "E4", "E8",
                                               "E12", "E13", "E16"])
    def test_runs_and_passes(self, experiment_id):
        report = run_experiment(experiment_id, fast=True)
        assert report.experiment_id == experiment_id
        assert report.rows
        assert report.all_checks_pass, report.render()

    def test_e1_has_six_rows(self):
        assert len(run_experiment("E1").rows) == 6

    def test_e2_has_ten_rows(self):
        assert len(run_experiment("E2").rows) == 10

    def test_reports_render(self):
        for experiment_id in ("E1", "E2"):
            text = run_experiment(experiment_id).render()
            assert "claim:" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in EXPECTED_IDS:
            assert eid in out

    def test_run_single(self, capsys):
        assert main(["run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out

    def test_run_with_seed(self, capsys):
        assert main(["run", "E2", "--seed", "7"]) == 0

    def test_unknown_experiment_raises(self):
        with pytest.raises(InvalidParameterError):
            main(["run", "E99"])
