"""Tests for spectral diagnostics and cutoff profiling."""

import math

import numpy as np
import pytest

from repro.markov.chain import FiniteMarkovChain
from repro.markov.cutoff import cutoff_profile
from repro.markov.ehrenfest import EhrenfestProcess, classic_two_urn_process
from repro.markov.mixing import exact_mixing_time
from repro.markov.spectral import relaxation_time, spectral_gap
from repro.utils import InvalidParameterError


class TestSpectralGap:
    def test_two_state_known_gap(self):
        # Eigenvalues 1 and 1 - p - q.
        chain = FiniteMarkovChain(np.array([[0.8, 0.2], [0.3, 0.7]]))
        assert spectral_gap(chain) == pytest.approx(0.5)

    def test_uniform_chain_gap_one(self):
        chain = FiniteMarkovChain(np.full((4, 4), 0.25))
        assert spectral_gap(chain) == pytest.approx(1.0)

    def test_ehrenfest_gap_positive(self):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=6)
        chain = process.exact_chain()
        gap = spectral_gap(chain, process.stationary_distribution())
        assert 0 < gap < 1

    def test_relaxation_time_inverse(self):
        chain = FiniteMarkovChain(np.array([[0.8, 0.2], [0.3, 0.7]]))
        assert relaxation_time(chain) == pytest.approx(2.0)

    def test_relaxation_bounds_mixing(self):
        """(t_rel - 1) log 2 <= t_mix <= t_rel log(4/pi_min) (reversible)."""
        process = EhrenfestProcess(k=2, a=0.4, b=0.3, m=10)
        chain = process.exact_chain()
        pi = process.stationary_distribution()
        t_rel = relaxation_time(chain, pi)
        tmix = exact_mixing_time(chain, pi=pi, t_max=50_000)
        assert (t_rel - 1) * math.log(2) <= tmix + 1
        assert tmix <= t_rel * math.log(4.0 / pi.min()) + 1

    def test_unsupported_stationary_raises(self):
        chain = FiniteMarkovChain(np.eye(2))
        with pytest.raises(InvalidParameterError):
            spectral_gap(chain, np.array([1.0, 0.0]))


class TestCutoffProfile:
    def test_profile_crossings_ordered(self):
        profile = cutoff_profile(classic_two_urn_process(20))
        times = profile.crossing_times
        assert times[0.75] <= times[0.5] <= times[0.25] <= times[0.05]

    def test_mixing_time_accessor(self):
        profile = cutoff_profile(classic_two_urn_process(20))
        assert profile.mixing_time == profile.crossing_times[0.25]

    def test_window_width_nonnegative(self):
        profile = cutoff_profile(classic_two_urn_process(16))
        assert profile.window_width >= 0

    def test_normalized_mixing_time_near_half(self):
        profile = cutoff_profile(classic_two_urn_process(60))
        assert profile.normalized_mixing_time(60) == pytest.approx(0.5, abs=0.2)

    def test_relative_window_shrinks(self):
        small = cutoff_profile(classic_two_urn_process(16))
        large = cutoff_profile(classic_two_urn_process(64))
        assert (large.window_width / large.mixing_time
                < small.window_width / small.mixing_time)

    def test_works_for_k3(self):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=6)
        profile = cutoff_profile(process)
        assert profile.mixing_time > 0
