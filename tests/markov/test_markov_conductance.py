"""Tests for conductance-based mixing lower bounds."""

import numpy as np
import pytest

from repro.markov.chain import FiniteMarkovChain
from repro.markov.conductance import (
    bottleneck_ratio,
    ehrenfest_conductance_bound,
    ehrenfest_level_cut,
    mixing_lower_bound_from_cut,
    sweep_conductance,
)
from repro.markov.ehrenfest import EhrenfestProcess
from repro.markov.mixing import exact_mixing_time
from repro.utils import InvalidParameterError


@pytest.fixture
def two_state():
    return FiniteMarkovChain(np.array([[0.9, 0.1], [0.1, 0.9]]))


class TestBottleneckRatio:
    def test_two_state_exact(self, two_state):
        # pi = (1/2, 1/2); Q({0}, {1}) = 0.5 * 0.1; Phi = 0.1.
        assert bottleneck_ratio(two_state, [0]) == pytest.approx(0.1)

    def test_rejects_heavy_subset(self, two_state):
        with pytest.raises(InvalidParameterError):
            bottleneck_ratio(two_state, [0, 1])

    def test_rejects_empty(self, two_state):
        with pytest.raises(InvalidParameterError):
            bottleneck_ratio(two_state, [])

    def test_rejects_out_of_range(self, two_state):
        with pytest.raises(InvalidParameterError):
            bottleneck_ratio(two_state, [5])

    def test_lower_bound_valid_two_state(self, two_state):
        bound = mixing_lower_bound_from_cut(two_state, [0])
        tmix = exact_mixing_time(two_state, t_max=1000)
        assert tmix >= bound - 1  # integer rounding slack


class TestSweep:
    def test_finds_two_state_cut(self, two_state):
        ratio, subset = sweep_conductance(two_state)
        assert ratio == pytest.approx(0.1)
        assert len(subset) == 1

    def test_barbell_bottleneck_detected(self):
        """Two well-connected pairs joined by a weak link: the sweep finds
        the weak link."""
        eps = 0.01
        P = np.array([
            [0.5 - eps, 0.5, eps, 0.0],
            [0.5, 0.5, 0.0, 0.0],
            [eps, 0.0, 0.5 - eps, 0.5],
            [0.0, 0.0, 0.5, 0.5],
        ])
        chain = FiniteMarkovChain(P)
        ratio, subset = sweep_conductance(chain)
        assert ratio < 0.02
        assert sorted(subset) in ([0, 1], [2, 3])

    def test_rejects_bad_ordering(self, two_state):
        with pytest.raises(InvalidParameterError):
            sweep_conductance(two_state, ordering=[0, 0])


class TestEhrenfestConductance:
    def test_level_cut_contents(self):
        process = EhrenfestProcess(k=2, a=0.3, b=0.3, m=4)
        cut = ehrenfest_level_cut(process, 1)
        space = process.space()
        assert all(space.state(i)[-1] <= 1 for i in cut)
        assert len(cut) == 2  # top urn holds 0 or 1 of 4 balls

    def test_level_validation(self):
        process = EhrenfestProcess(k=2, a=0.3, b=0.3, m=4)
        with pytest.raises(InvalidParameterError):
            ehrenfest_level_cut(process, 4)

    @pytest.mark.parametrize("k,a,b,m", [
        (2, 0.5, 0.5, 10), (2, 0.4, 0.2, 10), (3, 0.3, 0.2, 6),
    ])
    def test_bound_is_valid(self, k, a, b, m):
        """The conductance bound never exceeds the exact mixing time."""
        process = EhrenfestProcess(k=k, a=a, b=b, m=m)
        bound = ehrenfest_conductance_bound(process)
        chain = process.exact_chain()
        tmix = exact_mixing_time(chain,
                                 pi=process.stationary_distribution(),
                                 t_max=200_000)
        assert tmix >= bound - 1

    def test_bound_grows_with_m_for_classic_urn(self):
        small = ehrenfest_conductance_bound(
            EhrenfestProcess(k=2, a=0.5, b=0.5, m=10))
        large = ehrenfest_conductance_bound(
            EhrenfestProcess(k=2, a=0.5, b=0.5, m=30))
        assert large > small

    def test_weaker_than_diameter_for_ehrenfest(self):
        """Honest comparison: Ehrenfest processes have no bottleneck (the
        binomial bulk is well connected), so the conductance bound is valid
        but *weaker* than the paper's diameter bound — the diameter
        argument is the right tool for this family."""
        process = EhrenfestProcess(k=2, a=0.5, b=0.5, m=30)
        conductance = ehrenfest_conductance_bound(process)
        diameter = process.mixing_time_lower_bound()
        assert 0 < conductance < diameter

    def test_dominates_diameter_on_barbell(self):
        """...whereas on a genuine bottleneck the ordering flips: the
        barbell's conductance bound exceeds its diameter/2 = 1.5."""
        eps = 0.001
        P = np.array([
            [0.5 - eps, 0.5, eps, 0.0],
            [0.5, 0.5, 0.0, 0.0],
            [eps, 0.0, 0.5 - eps, 0.5],
            [0.0, 0.0, 0.5, 0.5],
        ])
        chain = FiniteMarkovChain(P)
        ratio, subset = sweep_conductance(chain)
        bound = mixing_lower_bound_from_cut(chain, subset)
        assert bound > 1.5  # diameter of the 4-state graph is 3
