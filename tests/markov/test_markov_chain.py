"""Tests for the generic FiniteMarkovChain."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.markov.chain import FiniteMarkovChain
from repro.utils import InvalidParameterError


@pytest.fixture
def two_state():
    """Simple two-state chain with known stationary distribution (0.6, 0.4)."""
    # pi = (q/(p+q), p/(p+q)) for flip probabilities p=0.2, q=0.3.
    return FiniteMarkovChain(np.array([[0.8, 0.2], [0.3, 0.7]]))


class TestConstruction:
    def test_rejects_non_square(self):
        with pytest.raises(InvalidParameterError):
            FiniteMarkovChain(np.ones((2, 3)) / 3)

    def test_rejects_non_stochastic_rows(self):
        with pytest.raises(InvalidParameterError, match="row"):
            FiniteMarkovChain(np.array([[0.5, 0.4], [0.5, 0.5]]))

    def test_rejects_negative_entries(self):
        with pytest.raises(InvalidParameterError, match="negative"):
            FiniteMarkovChain(np.array([[1.2, -0.2], [0.5, 0.5]]))

    def test_validate_false_skips_check(self):
        chain = FiniteMarkovChain(np.array([[0.5, 0.4], [0.5, 0.5]]),
                                  validate=False)
        assert chain.n_states == 2

    def test_sparse_accepted(self):
        P = sp.csr_matrix(np.array([[0.8, 0.2], [0.3, 0.7]]))
        assert FiniteMarkovChain(P).n_states == 2

    def test_label_count_mismatch(self):
        with pytest.raises(InvalidParameterError):
            FiniteMarkovChain(np.eye(2), state_labels=["a"])

    def test_dense_of_sparse(self):
        P = sp.csr_matrix(np.array([[0.8, 0.2], [0.3, 0.7]]))
        assert np.allclose(FiniteMarkovChain(P).dense(),
                           [[0.8, 0.2], [0.3, 0.7]])


class TestDistributions:
    def test_step_distribution(self, two_state):
        out = two_state.step_distribution(np.array([1.0, 0.0]))
        assert np.allclose(out, [0.8, 0.2])

    def test_distribution_after_zero(self, two_state):
        start = np.array([0.5, 0.5])
        assert np.allclose(two_state.distribution_after(start, 0), start)

    def test_distribution_after_preserves_mass(self, two_state):
        out = two_state.distribution_after(np.array([1.0, 0.0]), 17)
        assert out.sum() == pytest.approx(1.0)


class TestStationary:
    def test_two_state_solve(self, two_state):
        pi = two_state.stationary_distribution(method="solve")
        assert np.allclose(pi, [0.6, 0.4])

    def test_two_state_power(self, two_state):
        pi = two_state.stationary_distribution(method="power")
        assert np.allclose(pi, [0.6, 0.4], atol=1e-8)

    def test_auto_matches_solve(self, two_state):
        assert np.allclose(two_state.stationary_distribution("auto"),
                           two_state.stationary_distribution("solve"))

    def test_unknown_method_raises(self, two_state):
        with pytest.raises(InvalidParameterError):
            two_state.stationary_distribution(method="magic")

    def test_is_stationary(self, two_state):
        assert two_state.is_stationary([0.6, 0.4], atol=1e-12)
        assert not two_state.is_stationary([0.5, 0.5], atol=1e-12)

    def test_identity_chain_any_distribution_stationary(self):
        chain = FiniteMarkovChain(np.eye(3))
        assert chain.is_stationary([0.2, 0.3, 0.5])

    def test_sparse_stationary(self):
        P = sp.csr_matrix(np.array([[0.8, 0.2], [0.3, 0.7]]))
        pi = FiniteMarkovChain(P).stationary_distribution(method="solve")
        assert np.allclose(pi, [0.6, 0.4])


class TestDetailedBalance:
    def test_reversible_chain(self, two_state):
        assert two_state.satisfies_detailed_balance([0.6, 0.4], atol=1e-12)

    def test_non_reversible_cycle(self):
        # Deterministic 3-cycle: stationary uniform but not reversible.
        P = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
        chain = FiniteMarkovChain(P)
        pi = np.full(3, 1 / 3)
        assert chain.is_stationary(pi)
        assert not chain.satisfies_detailed_balance(pi)

    def test_sparse_detailed_balance(self):
        P = sp.csr_matrix(np.array([[0.8, 0.2], [0.3, 0.7]]))
        chain = FiniteMarkovChain(P)
        assert chain.satisfies_detailed_balance(np.array([0.6, 0.4]),
                                                atol=1e-12)


class TestSamplePath:
    def test_length(self, two_state):
        path = two_state.sample_path(0, 50, seed=0)
        assert path.shape == (51,)

    def test_starts_at_start(self, two_state):
        assert two_state.sample_path(1, 5, seed=0)[0] == 1

    def test_reproducible(self, two_state):
        a = two_state.sample_path(0, 100, seed=3)
        b = two_state.sample_path(0, 100, seed=3)
        assert np.array_equal(a, b)

    def test_states_in_range(self, two_state):
        path = two_state.sample_path(0, 200, seed=1)
        assert path.min() >= 0 and path.max() <= 1

    def test_empirical_frequencies_near_stationary(self, two_state):
        path = two_state.sample_path(0, 20000, seed=5)
        frequency = np.mean(path == 0)
        assert frequency == pytest.approx(0.6, abs=0.05)

    def test_out_of_range_start_raises(self, two_state):
        with pytest.raises(InvalidParameterError):
            two_state.sample_path(5, 10, seed=0)
