"""Tests for strong lumpability and chain projection."""

import numpy as np
import pytest

from repro.markov.chain import FiniteMarkovChain
from repro.markov.ehrenfest import EhrenfestProcess
from repro.markov.lumping import (
    block_transition_probabilities,
    is_strongly_lumpable,
    lump_chain,
    lumped_stationary,
)
from repro.utils import InvalidParameterError


@pytest.fixture
def symmetric_chain():
    """Random walk on a 4-cycle with laziness — lumpable by opposite pairs."""
    P = np.array([
        [0.5, 0.25, 0.0, 0.25],
        [0.25, 0.5, 0.25, 0.0],
        [0.0, 0.25, 0.5, 0.25],
        [0.25, 0.0, 0.25, 0.5],
    ])
    return FiniteMarkovChain(P)


class TestPartitionValidation:
    def test_rejects_incomplete_partition(self, symmetric_chain):
        with pytest.raises(InvalidParameterError):
            is_strongly_lumpable(symmetric_chain, [[0, 1]])

    def test_rejects_overlapping_blocks(self, symmetric_chain):
        with pytest.raises(InvalidParameterError):
            is_strongly_lumpable(symmetric_chain, [[0, 1], [1, 2, 3]])

    def test_rejects_empty_block(self, symmetric_chain):
        with pytest.raises(InvalidParameterError):
            is_strongly_lumpable(symmetric_chain, [[0, 1, 2, 3], []])

    def test_rejects_out_of_range(self, symmetric_chain):
        with pytest.raises(InvalidParameterError):
            is_strongly_lumpable(symmetric_chain, [[0, 1], [2, 5]])


class TestLumpability:
    def test_trivial_partitions_lumpable(self, symmetric_chain):
        singletons = [[i] for i in range(4)]
        assert is_strongly_lumpable(symmetric_chain, singletons)
        assert is_strongly_lumpable(symmetric_chain, [[0, 1, 2, 3]])

    def test_opposite_pairs_lumpable(self, symmetric_chain):
        assert is_strongly_lumpable(symmetric_chain, [[0, 2], [1, 3]])

    def test_adjacent_pairs_lumpable_on_cycle(self, symmetric_chain):
        # {0,1} vs {2,3}: from 0 -> block2 prob 0.25; from 1 -> 0.25. OK.
        assert is_strongly_lumpable(symmetric_chain, [[0, 1], [2, 3]])

    def test_non_lumpable_detected(self):
        P = np.array([
            [0.0, 1.0, 0.0],
            [0.5, 0.0, 0.5],
            [0.0, 0.2, 0.8],
        ])
        chain = FiniteMarkovChain(P)
        # Block {0, 2}: from 0 the chain enters {1} w.p. 1, from 2 w.p. 0.2.
        assert not is_strongly_lumpable(chain, [[0, 2], [1]])

    def test_block_probabilities_shape(self, symmetric_chain):
        rows = block_transition_probabilities(symmetric_chain,
                                              [[0, 2], [1, 3]])
        assert rows.shape == (4, 2)
        assert np.allclose(rows.sum(axis=1), 1.0)


class TestLumpedChain:
    def test_lumped_kernel(self, symmetric_chain):
        lumped = lump_chain(symmetric_chain, [[0, 2], [1, 3]])
        assert lumped.n_states == 2
        assert np.allclose(lumped.dense(), [[0.5, 0.5], [0.5, 0.5]])

    def test_lump_rejects_non_lumpable(self):
        P = np.array([
            [0.0, 1.0, 0.0],
            [0.5, 0.0, 0.5],
            [0.0, 0.2, 0.8],
        ])
        with pytest.raises(InvalidParameterError):
            lump_chain(FiniteMarkovChain(P), [[0, 2], [1]])

    def test_lumped_stationary_consistency(self, symmetric_chain):
        """Aggregated stationary == stationary of the lumped chain."""
        partition = [[0, 2], [1, 3]]
        aggregated = lumped_stationary(symmetric_chain, partition)
        lumped = lump_chain(symmetric_chain, partition)
        assert np.allclose(aggregated, lumped.stationary_distribution(),
                           atol=1e-10)

    def test_ehrenfest_k3_coordinate_projection_not_lumpable(self):
        """Projecting the k=3 Ehrenfest chain onto its first coordinate is
        NOT strongly lumpable (moves out of urn 1 depend on urn 2's load),
        which is why the paper uses the full planar embedding in A.2."""
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=3)
        space = process.space()
        chain = process.exact_chain(space)
        blocks: dict[int, list[int]] = {}
        for i, state in enumerate(space):
            blocks.setdefault(state[0], []).append(i)
        partition = [blocks[v] for v in sorted(blocks)]
        assert not is_strongly_lumpable(chain, partition)

    def test_ehrenfest_k2_projection_lumpable_and_matches_eq_11(self):
        """For k=2 the coordinate projection IS (trivially) lumpable and the
        lumped kernel equals the paper's eq. 11 birth-death chain."""
        from repro.markov.birth_death import ehrenfest_projection_chain

        m, a, b = 4, 0.4, 0.2
        process = EhrenfestProcess(k=2, a=a, b=b, m=m)
        space = process.space()
        chain = process.exact_chain(space)
        blocks: dict[int, list[int]] = {}
        for i, state in enumerate(space):
            blocks.setdefault(state[0], []).append(i)
        partition = [blocks[v] for v in sorted(blocks)]
        assert is_strongly_lumpable(chain, partition)
        lumped = lump_chain(chain, partition)
        reference = ehrenfest_projection_chain(m, a, b).transition_matrix()
        assert np.allclose(lumped.dense(), reference)
