"""Tests for the birth-death chain toolkit."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.markov.birth_death import BirthDeathChain, ehrenfest_projection_chain
from repro.markov.ehrenfest import EhrenfestProcess
from repro.markov.hitting import expected_hitting_times
from repro.markov.random_walks import ReflectedWalk
from repro.utils import InvalidParameterError


@pytest.fixture
def biased_chain():
    """Birth-death chain on {0..4} with constant rates p=0.4, q=0.2."""
    return BirthDeathChain([0.4] * 4, [0.2] * 4)


class TestConstruction:
    def test_n_states(self, biased_chain):
        assert biased_chain.n_states == 5

    def test_rejects_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            BirthDeathChain([0.3, 0.3], [0.2])

    def test_rejects_zero_rates(self):
        with pytest.raises(InvalidParameterError):
            BirthDeathChain([0.3, 0.0], [0.2, 0.2])

    def test_rejects_overfull_interior(self):
        with pytest.raises(InvalidParameterError):
            BirthDeathChain([0.7, 0.7], [0.5, 0.5])

    def test_kernel_is_tridiagonal_stochastic(self, biased_chain):
        P = biased_chain.transition_matrix()
        assert np.allclose(P.sum(axis=1), 1.0)
        assert P[0, 2] == 0.0
        assert P[2, 0] == 0.0


class TestStationary:
    def test_product_form_matches_solve(self, biased_chain):
        pi_formula = biased_chain.stationary_distribution()
        pi_solved = biased_chain.chain().stationary_distribution()
        assert np.allclose(pi_formula, pi_solved, atol=1e-10)

    def test_detailed_balance(self, biased_chain):
        assert biased_chain.chain().satisfies_detailed_balance(
            biased_chain.stationary_distribution(), atol=1e-12)

    def test_matches_reflected_walk(self):
        """Constant-rate birth-death on {0..k-1} == ReflectedWalk on {1..k}."""
        walk = ReflectedWalk(5, 0.4, 0.2)
        chain = BirthDeathChain([0.4] * 4, [0.2] * 4)
        assert np.allclose(chain.stationary_distribution(),
                           walk.stationary_distribution())

    def test_extreme_bias_stable(self):
        chain = BirthDeathChain([0.9] * 40, [1e-3] * 40)
        pi = chain.stationary_distribution()
        assert np.isfinite(pi).all()
        assert pi.sum() == pytest.approx(1.0)
        assert pi[-1] > 0.99


class TestHittingTimes:
    def test_up_matches_linear_solve(self, biased_chain):
        h = expected_hitting_times(biased_chain.chain(), [4])
        for start in range(4):
            assert biased_chain.expected_hitting_time_up(start, 4) == \
                pytest.approx(h[start])

    def test_down_matches_linear_solve(self, biased_chain):
        h = expected_hitting_times(biased_chain.chain(), [0])
        for start in range(1, 5):
            assert biased_chain.expected_hitting_time_down(start, 0) == \
                pytest.approx(h[start])

    def test_additivity_along_path(self, biased_chain):
        """E_0[hit 4] = E_0[hit 2] + E_2[hit 4] (birth-death paths)."""
        total = biased_chain.expected_hitting_time(0, 4)
        split = (biased_chain.expected_hitting_time(0, 2)
                 + biased_chain.expected_hitting_time(2, 4))
        assert total == pytest.approx(split)

    def test_same_state_zero(self, biased_chain):
        assert biased_chain.expected_hitting_time(2, 2) == 0.0

    def test_direction_validation(self, biased_chain):
        with pytest.raises(InvalidParameterError):
            biased_chain.expected_hitting_time_up(3, 1)
        with pytest.raises(InvalidParameterError):
            biased_chain.expected_hitting_time_down(1, 3)

    def test_against_drift_heuristic(self):
        """Strong upward bias: hitting time ~ distance/drift."""
        chain = BirthDeathChain([0.6] * 30, [0.05] * 30)
        time = chain.expected_hitting_time(0, 30)
        assert time == pytest.approx(30 / 0.55, rel=0.15)


class TestEhrenfestProjection:
    def test_matches_paper_eq_11(self):
        """The projected kernel has entries b(m-x)/m and a·x/m."""
        m, a, b = 6, 0.4, 0.2
        chain = ehrenfest_projection_chain(m, a, b)
        P = chain.transition_matrix()
        for x in range(m + 1):
            if x < m:
                assert P[x, x + 1] == pytest.approx(b * (m - x) / m)
            if x > 0:
                assert P[x, x - 1] == pytest.approx(a * x / m)

    def test_stationary_is_binomial_marginal(self):
        """Remark A.2: the first coordinate is Binomial(m, 1/(1+lambda))."""
        m, a, b = 8, 0.4, 0.2
        chain = ehrenfest_projection_chain(m, a, b)
        pi = chain.stationary_distribution()
        p_first = (b / a) / (1 + b / a)  # weight of urn 1 under Thm 2.4
        expected = scipy_stats.binom(m, 1 - p_first).pmf(np.arange(m + 1))
        # Careful with orientation: urn-1 count i has weight p1 = 1/(1+lam).
        process = EhrenfestProcess(k=2, a=a, b=b, m=m)
        p1 = process.stationary_weights()[0]
        expected = scipy_stats.binom(m, p1).pmf(np.arange(m + 1))
        assert np.allclose(pi, expected, atol=1e-12)

    def test_agrees_with_full_chain_marginal(self):
        """Projecting the exact 2-urn chain's stationary law coordinate-wise
        equals the projection chain's stationary law."""
        m, a, b = 5, 0.35, 0.15
        process = EhrenfestProcess(k=2, a=a, b=b, m=m)
        space = process.space()
        pi_full = process.stationary_distribution(space)
        marginal = np.zeros(m + 1)
        for i, state in enumerate(space):
            marginal[state[0]] += pi_full[i]
        projected = ehrenfest_projection_chain(m, a, b)
        assert np.allclose(marginal, projected.stationary_distribution(),
                           atol=1e-12)
