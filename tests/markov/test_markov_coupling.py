"""Tests for the coordinate coupling (Appendix A.4.1)."""

import numpy as np
import pytest

from repro.markov.coupling import (
    CoordinateCoupling,
    coupling_mixing_estimate,
    coupling_time_samples,
)
from repro.markov.ehrenfest import EhrenfestProcess
from repro.utils import InvalidParameterError


@pytest.fixture
def process():
    return EhrenfestProcess(k=3, a=0.35, b=0.15, m=10)


class TestCouplingRun:
    def test_coalesces(self, process, rng):
        result = CoordinateCoupling(process).run(seed=rng)
        assert result.coalesced
        assert result.coupling_time > 0

    def test_identical_starts_couple_immediately(self, process, rng):
        x = np.full(10, 2, dtype=np.int64)
        result = CoordinateCoupling(process).run(x, x.copy(), seed=rng)
        assert result.coupling_time == 0

    def test_reproducible(self, process):
        t1 = CoordinateCoupling(process).run(seed=11).coupling_time
        t2 = CoordinateCoupling(process).run(seed=11).coupling_time
        assert t1 == t2

    def test_extreme_starts_shape(self, process):
        low, high = CoordinateCoupling(process).extreme_starts()
        assert (low == 1).all() and (high == 3).all()
        assert low.size == high.size == 10

    def test_budget_exhaustion_reports_censored(self, process, rng):
        result = CoordinateCoupling(process).run(seed=rng, max_steps=1)
        assert not result.coalesced
        assert result.coupling_time is None

    def test_wrong_coordinate_count_raises(self, process, rng):
        with pytest.raises(InvalidParameterError):
            CoordinateCoupling(process).run(np.ones(3, dtype=np.int64),
                                            np.ones(3, dtype=np.int64),
                                            seed=rng)

    def test_out_of_range_coordinates_raise(self, process, rng):
        bad = np.full(10, 9, dtype=np.int64)
        with pytest.raises(InvalidParameterError):
            CoordinateCoupling(process).run(bad, bad.copy(), seed=rng)


class TestCouplingSamples:
    def test_sample_count(self, process, rng):
        times = coupling_time_samples(process, 5, seed=rng)
        assert times.shape == (5,)
        assert (times > 0).all()

    def test_lemma_a8_tail_bound(self, rng):
        """At least 3/4 of coupling times fall below 2*Phi*log(4m)."""
        process = EhrenfestProcess(k=3, a=0.35, b=0.15, m=15)
        bound = process.mixing_time_upper_bound()
        times = coupling_time_samples(process, 24, seed=rng)
        assert np.mean(times <= bound) >= 0.75

    def test_couple_time_scales_with_m(self, rng):
        small = EhrenfestProcess(k=3, a=0.35, b=0.15, m=5)
        large = EhrenfestProcess(k=3, a=0.35, b=0.15, m=40)
        t_small = np.median(coupling_time_samples(small, 9, seed=rng))
        t_large = np.median(coupling_time_samples(large, 9, seed=rng))
        assert t_large > t_small


class TestMixingEstimate:
    def test_quantile_is_conservative(self):
        # method="higher": the estimate never undershoots the order statistic.
        times = np.array([10, 20, 30, 40])
        assert coupling_mixing_estimate(times, quantile=0.5) == pytest.approx(30.0)
        assert coupling_mixing_estimate(times, quantile=1.0) == pytest.approx(40.0)

    def test_censored_treated_as_infinite(self):
        times = np.array([10, -1, -1, -1])
        assert coupling_mixing_estimate(times, quantile=0.75) == np.inf

    def test_estimate_upper_bounds_exact_tmix(self, rng):
        """Coupling-quantile estimate dominates the exact mixing time."""
        from repro.markov.mixing import exact_mixing_time

        process = EhrenfestProcess(k=2, a=0.4, b=0.3, m=8)
        times = coupling_time_samples(process, 40, seed=rng)
        estimate = coupling_mixing_estimate(times)
        chain = process.exact_chain()
        tmix = exact_mixing_time(chain, pi=process.stationary_distribution(),
                                 t_max=20_000)
        # The 0.75-quantile coupling time is a high-probability upper bound;
        # allow slack for sampling noise.
        assert estimate >= 0.5 * tmix


class TestCouplingMarginals:
    def test_marginal_is_ehrenfest(self, rng):
        """Counts of the X-copy evolve with the correct stationary mean."""
        process = EhrenfestProcess(k=2, a=0.45, b=0.15, m=20)
        coupling = CoordinateCoupling(process)
        x0, y0 = coupling.extreme_starts()
        # Run well past the bound; then X == Y and both are ~stationary.
        result = coupling.run(x0, y0, seed=rng)
        assert result.coalesced
