"""Tests for the (k, a, b, m)-Ehrenfest process (paper Definition 2.3)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.markov.chain import FiniteMarkovChain
from repro.markov.distributions import total_variation
from repro.markov.ehrenfest import EhrenfestProcess, classic_two_urn_process
from repro.utils import InvalidParameterError


class TestConstruction:
    def test_rejects_k_one(self):
        with pytest.raises(InvalidParameterError):
            EhrenfestProcess(k=1, a=0.3, b=0.3, m=5)

    def test_rejects_zero_a(self):
        with pytest.raises(InvalidParameterError):
            EhrenfestProcess(k=3, a=0.0, b=0.3, m=5)

    def test_rejects_a_plus_b_above_one(self):
        with pytest.raises(InvalidParameterError):
            EhrenfestProcess(k=3, a=0.7, b=0.4, m=5)

    def test_lambda(self):
        assert EhrenfestProcess(k=3, a=0.4, b=0.2, m=5).lam == pytest.approx(2.0)


class TestStationaryWeights:
    def test_sum_to_one(self):
        p = EhrenfestProcess(k=5, a=0.4, b=0.1, m=3).stationary_weights()
        assert p.sum() == pytest.approx(1.0)

    def test_geometric_ratios(self):
        process = EhrenfestProcess(k=4, a=0.4, b=0.2, m=3)
        p = process.stationary_weights()
        ratios = p[1:] / p[:-1]
        assert np.allclose(ratios, process.lam)

    def test_uniform_when_a_equals_b(self):
        p = EhrenfestProcess(k=4, a=0.25, b=0.25, m=3).stationary_weights()
        assert np.allclose(p, 0.25)

    def test_large_lambda_numerically_stable(self):
        p = EhrenfestProcess(k=50, a=0.9, b=0.001, m=2).stationary_weights()
        assert np.isfinite(p).all()
        assert p.sum() == pytest.approx(1.0)

    def test_mean_counts(self):
        process = EhrenfestProcess(k=3, a=0.3, b=0.3, m=9)
        assert np.allclose(process.mean_stationary_counts(), 3.0)


class TestTransitionStructure:
    def test_transitions_move_one_ball(self):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=4)
        for t in process.transitions_from((2, 1, 1)):
            diff = np.array(t.target) - np.array(t.source)
            assert sorted(diff) == [-1, 0, 1]

    def test_transition_probabilities(self):
        process = EhrenfestProcess(k=2, a=0.3, b=0.2, m=4)
        moves = {t.target: t.probability
                 for t in process.transitions_from((3, 1))}
        assert moves[(2, 2)] == pytest.approx(0.3 * 3 / 4)
        assert moves[(4, 0)] == pytest.approx(0.2 * 1 / 4)

    def test_no_moves_from_empty_cells(self):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=2)
        targets = [t.target for t in process.transitions_from((0, 0, 2))]
        assert targets == [(0, 1, 1)]

    def test_invalid_state_raises(self):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=2)
        with pytest.raises(InvalidParameterError):
            list(process.transitions_from((1, 1, 1)))

    def test_matrix_rows_sum_to_one(self):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=5)
        P = process.transition_matrix()
        assert np.allclose(np.asarray(P.sum(axis=1)).ravel(), 1.0)

    def test_dense_matches_sparse(self):
        process = EhrenfestProcess(k=2, a=0.4, b=0.3, m=4)
        assert np.allclose(process.transition_matrix(sparse=False),
                           process.transition_matrix().toarray())

    def test_exact_chain_type(self):
        chain = EhrenfestProcess(k=2, a=0.4, b=0.3, m=3).exact_chain()
        assert isinstance(chain, FiniteMarkovChain)

    def test_n_states(self):
        assert EhrenfestProcess(k=3, a=0.3, b=0.2, m=4).n_states() == 15


class TestTheorem24:
    """Exact verification of Theorem 2.4 on small instances."""

    @pytest.mark.parametrize("k,a,b,m", [
        (2, 0.5, 0.5, 8), (2, 0.6, 0.2, 8), (3, 0.3, 0.2, 6),
        (4, 0.25, 0.25, 5), (5, 0.45, 0.05, 4),
    ])
    def test_multinomial_is_stationary(self, k, a, b, m):
        process = EhrenfestProcess(k=k, a=a, b=b, m=m)
        chain = process.exact_chain()
        pi = process.stationary_distribution()
        assert chain.is_stationary(pi, atol=1e-10)

    @pytest.mark.parametrize("k,a,b,m", [
        (2, 0.6, 0.2, 6), (3, 0.3, 0.2, 5), (4, 0.4, 0.1, 4),
    ])
    def test_detailed_balance(self, k, a, b, m):
        process = EhrenfestProcess(k=k, a=a, b=b, m=m)
        chain = process.exact_chain()
        pi = process.stationary_distribution()
        assert chain.satisfies_detailed_balance(pi, atol=1e-12)

    def test_formula_matches_linear_solve(self):
        process = EhrenfestProcess(k=3, a=0.35, b=0.15, m=7)
        chain = process.exact_chain()
        assert total_variation(process.stationary_distribution(),
                               chain.stationary_distribution()) < 1e-10

    def test_k2_reduces_to_binomial(self):
        process = EhrenfestProcess(k=2, a=0.3, b=0.6, m=10)
        space = process.space()
        pi = process.stationary_distribution(space)
        p2 = process.stationary_weights()[1]
        for i, x in enumerate(space):
            expected = scipy_stats.binom(10, p2).pmf(x[1])
            assert pi[i] == pytest.approx(expected)


class TestSimulation:
    def test_counts_conserved(self):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=12)
        final = process.simulate_counts((12, 0, 0), 500, seed=1)
        assert final.sum() == 12
        assert final.min() >= 0

    def test_zero_steps_identity(self):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=5)
        final = process.simulate_counts((2, 2, 1), 0, seed=1)
        assert tuple(final) == (2, 2, 1)

    def test_reproducible(self):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=10)
        a1 = process.simulate_counts((10, 0, 0), 300, seed=7)
        a2 = process.simulate_counts((10, 0, 0), 300, seed=7)
        assert np.array_equal(a1, a2)

    def test_trajectory_recording(self):
        process = EhrenfestProcess(k=2, a=0.4, b=0.3, m=6)
        traj = process.simulate_counts((6, 0), 100, seed=2, observe_every=10)
        assert traj.shape == (11, 2)
        assert (traj.sum(axis=1) == 6).all()
        assert tuple(traj[0]) == (6, 0)

    def test_invalid_start_raises(self):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=5)
        with pytest.raises(InvalidParameterError):
            process.simulate_counts((3, 3, 3), 10, seed=0)

    def test_initial_coordinates_consistent(self):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=6)
        coords = process.initial_coordinates((2, 1, 3))
        counts = process.counts_from_coordinates(coords, 3)
        assert tuple(counts) == (2, 1, 3)

    def test_sample_stationary_moments(self, rng):
        process = EhrenfestProcess(k=3, a=0.4, b=0.2, m=30)
        samples = process.sample_stationary(seed=rng, size=4000)
        expected = process.mean_stationary_counts()
        assert np.allclose(samples.mean(axis=0), expected, atol=0.5)

    def test_sample_state_at_matches_simulate_distribution(self, rng):
        """The vectorized sampler and the sequential simulator agree in law."""
        process = EhrenfestProcess(k=2, a=0.4, b=0.3, m=8)
        t = 60
        n = 1500
        direct = np.array([process.simulate_counts((8, 0), t, seed=rng)[0]
                           for _ in range(n)])
        fast = process.sample_state_at((8, 0), t, seed=rng, size=n)[:, 0]
        hist_direct = np.bincount(direct, minlength=9) / n
        hist_fast = np.bincount(fast, minlength=9) / n
        assert total_variation(hist_direct, hist_fast) < 0.08

    def test_long_run_reaches_stationary(self, rng):
        process = EhrenfestProcess(k=3, a=0.35, b=0.15, m=20)
        t = int(2 * process.mixing_time_upper_bound())
        samples = process.sample_state_at((20, 0, 0), t, seed=rng, size=800)
        expected = process.mean_stationary_counts()
        assert np.allclose(samples.mean(axis=0), expected, atol=1.0)


class TestBounds:
    def test_phi_biased(self):
        process = EhrenfestProcess(k=4, a=0.5, b=0.1, m=10)
        assert process.phi() == pytest.approx(min(4 / 0.4, 16) * 10)

    def test_phi_unbiased(self):
        process = EhrenfestProcess(k=4, a=0.3, b=0.3, m=10)
        assert process.phi() == pytest.approx(16 * 10)

    def test_upper_bound_formula(self):
        process = EhrenfestProcess(k=3, a=0.4, b=0.2, m=8)
        expected = 2 * process.phi() * np.log(4 * 8)
        assert process.mixing_time_upper_bound() == pytest.approx(expected)

    def test_lower_bound(self):
        assert EhrenfestProcess(k=3, a=0.4, b=0.2, m=8) \
            .mixing_time_lower_bound() == 12.0

    def test_diameter(self):
        assert EhrenfestProcess(k=4, a=0.3, b=0.2, m=5).diameter() == 15

    def test_upper_exceeds_lower(self):
        for k, m in [(2, 5), (4, 10), (8, 20)]:
            process = EhrenfestProcess(k=k, a=0.4, b=0.2, m=m)
            assert process.mixing_time_upper_bound() \
                > process.mixing_time_lower_bound()


class TestClassicTwoUrn:
    def test_parameters(self):
        process = classic_two_urn_process(10)
        assert (process.k, process.a, process.b, process.m) == (2, 0.5, 0.5, 10)

    def test_stationary_is_symmetric_binomial(self):
        process = classic_two_urn_process(6)
        pi = process.stationary_distribution()
        space = process.space()
        assert pi[space.index((3, 3))] == pytest.approx(
            scipy_stats.binom(6, 0.5).pmf(3))
