"""Tests for distance-to-stationarity and mixing-time computation."""

import numpy as np
import pytest

from repro.markov.chain import FiniteMarkovChain
from repro.markov.distributions import binomial_pmf
from repro.markov.ehrenfest import EhrenfestProcess
from repro.markov.mixing import (
    distance_to_stationarity_curve,
    empirical_state_tv,
    exact_mixing_time,
    mixing_time_from_curve,
    projected_marginal_tv,
)
from repro.utils import ConvergenceError, InvalidParameterError


@pytest.fixture
def lazy_flip():
    """Two-state lazy chain: stays w.p. 3/4, flips w.p. 1/4."""
    return FiniteMarkovChain(np.array([[0.75, 0.25], [0.25, 0.75]]))


class TestDistanceCurve:
    def test_starts_at_worst_case(self, lazy_flip):
        curve = distance_to_stationarity_curve(lazy_flip, t_max=10)
        assert curve[0] == pytest.approx(0.5)

    def test_monotone_nonincreasing(self, lazy_flip):
        curve = distance_to_stationarity_curve(lazy_flip, t_max=30)
        assert (np.diff(curve) <= 1e-12).all()

    def test_known_geometric_decay(self, lazy_flip):
        # d(t) = (1/2) * (1/2)^t for this chain (eigenvalue 1/2).
        curve = distance_to_stationarity_curve(lazy_flip, t_max=8)
        expected = 0.5 * 0.5 ** np.arange(9)
        assert np.allclose(curve, expected)

    def test_subset_of_states(self, lazy_flip):
        full = distance_to_stationarity_curve(lazy_flip, t_max=5)
        partial = distance_to_stationarity_curve(lazy_flip, t_max=5,
                                                 from_states=[0])
        assert np.allclose(full, partial)  # symmetric chain

    def test_empty_from_states_raises(self, lazy_flip):
        with pytest.raises(InvalidParameterError):
            distance_to_stationarity_curve(lazy_flip, t_max=5, from_states=[])

    def test_bad_state_index_raises(self, lazy_flip):
        with pytest.raises(InvalidParameterError):
            distance_to_stationarity_curve(lazy_flip, t_max=5,
                                           from_states=[9])


class TestMixingTime:
    def test_from_curve(self):
        curve = np.array([0.5, 0.3, 0.24, 0.1])
        assert mixing_time_from_curve(curve) == 2

    def test_from_curve_custom_threshold(self):
        curve = np.array([0.5, 0.3, 0.24, 0.1])
        assert mixing_time_from_curve(curve, threshold=0.1) == 3

    def test_never_below_raises(self):
        with pytest.raises(ConvergenceError):
            mixing_time_from_curve(np.array([0.9, 0.8, 0.7]))

    def test_exact_matches_curve(self, lazy_flip):
        curve = distance_to_stationarity_curve(lazy_flip, t_max=20)
        expected = mixing_time_from_curve(curve)
        assert exact_mixing_time(lazy_flip, t_max=20) == expected

    def test_exact_zero_when_already_mixed(self):
        uniform = FiniteMarkovChain(np.full((3, 3), 1 / 3))
        assert exact_mixing_time(uniform) <= 1

    def test_budget_exhaustion_raises(self, lazy_flip):
        with pytest.raises(ConvergenceError):
            exact_mixing_time(lazy_flip, threshold=1e-9, t_max=2)

    def test_ehrenfest_tmix_between_paper_bounds(self):
        process = EhrenfestProcess(k=3, a=0.4, b=0.2, m=8)
        chain = process.exact_chain()
        pi = process.stationary_distribution()
        tmix = exact_mixing_time(chain, pi=pi, t_max=50_000)
        assert process.mixing_time_lower_bound() <= tmix
        assert tmix <= process.mixing_time_upper_bound()


class TestEmpiricalTV:
    def test_zero_for_exact_samples(self):
        reference = np.array([0.5, 0.5])
        samples = [0] * 50 + [1] * 50
        assert empirical_state_tv(samples, reference) == pytest.approx(0.0)

    def test_detects_bias(self):
        reference = np.array([0.5, 0.5])
        samples = [0] * 90 + [1] * 10
        assert empirical_state_tv(samples, reference) == pytest.approx(0.4)


class TestProjectedMarginal:
    def test_stationary_samples_have_small_marginal_tv(self, rng):
        process = EhrenfestProcess(k=3, a=0.4, b=0.2, m=12)
        samples = process.sample_stationary(seed=rng, size=4000)
        weights = process.stationary_weights()
        for j in range(3):
            marginal = np.array([binomial_pmf(i, 12, weights[j])
                                 for i in range(13)])
            tv = projected_marginal_tv(samples, j, 12, marginal)
            assert tv < 0.05

    def test_wrong_marginal_length_raises(self, rng):
        process = EhrenfestProcess(k=2, a=0.4, b=0.2, m=5)
        samples = process.sample_stationary(seed=rng, size=10)
        with pytest.raises(InvalidParameterError):
            projected_marginal_tv(samples, 0, 5, np.ones(3) / 3)

    def test_requires_2d_samples(self):
        with pytest.raises(InvalidParameterError):
            projected_marginal_tv(np.array([1, 2, 3]), 0, 5, np.ones(6) / 6)
