"""Tests for exact hitting-time analysis."""

import numpy as np
import pytest

from repro.markov.chain import FiniteMarkovChain
from repro.markov.ehrenfest import EhrenfestProcess
from repro.markov.hitting import (
    corner_hitting_time,
    expected_hitting_times,
    expected_return_time,
)
from repro.utils import InvalidParameterError


@pytest.fixture
def two_state():
    return FiniteMarkovChain(np.array([[0.8, 0.2], [0.3, 0.7]]))


class TestExpectedHittingTimes:
    def test_zero_on_targets(self, two_state):
        h = expected_hitting_times(two_state, [1])
        assert h[1] == 0.0

    def test_geometric_two_state(self, two_state):
        # From state 0, hit state 1 in Geometric(0.2): mean 5.
        h = expected_hitting_times(two_state, [1])
        assert h[0] == pytest.approx(5.0)

    def test_gamblers_ruin_expected_duration(self):
        """Unbiased gambler's ruin on {0..N}: E_i[tau] = i(N - i)."""
        N = 8
        P = np.zeros((N + 1, N + 1))
        P[0, 0] = P[N, N] = 1.0
        for i in range(1, N):
            P[i, i - 1] = P[i, i + 1] = 0.5
        chain = FiniteMarkovChain(P)
        h = expected_hitting_times(chain, [0, N])
        for i in range(N + 1):
            assert h[i] == pytest.approx(i * (N - i))

    def test_biased_interval_matches_martingale_formula(self):
        """Hitting {-k, k} from 0 equals Proposition A.7's closed form."""
        from repro.markov.random_walks import expected_absorption_time

        k, a, b = 4, 0.4, 0.2
        size = 2 * k + 1  # states -k..k
        P = np.zeros((size, size))
        P[0, 0] = P[-1, -1] = 1.0
        for i in range(1, size - 1):
            P[i, i + 1] = a
            P[i, i - 1] = b
            P[i, i] = 1 - a - b
        chain = FiniteMarkovChain(P)
        h = expected_hitting_times(chain, [0, size - 1])
        assert h[k] == pytest.approx(expected_absorption_time(k, a, b))

    def test_unreachable_target_raises(self):
        P = np.array([[1.0, 0.0], [0.5, 0.5]])
        chain = FiniteMarkovChain(P)
        with pytest.raises(InvalidParameterError):
            expected_hitting_times(chain, [1])

    def test_empty_targets_raise(self, two_state):
        with pytest.raises(InvalidParameterError):
            expected_hitting_times(two_state, [])

    def test_all_states_targets(self, two_state):
        h = expected_hitting_times(two_state, [0, 1])
        assert np.allclose(h, 0.0)

    def test_out_of_range_target(self, two_state):
        with pytest.raises(InvalidParameterError):
            expected_hitting_times(two_state, [5])


class TestReturnTime:
    def test_kac_formula(self, two_state):
        pi = two_state.stationary_distribution()
        assert expected_return_time(two_state, 0) == pytest.approx(1 / pi[0])

    def test_zero_mass_raises(self):
        chain = FiniteMarkovChain(np.array([[1.0, 0.0], [1.0, 0.0]]))
        with pytest.raises(InvalidParameterError):
            expected_return_time(chain, 1, pi=np.array([1.0, 0.0]))

    def test_return_time_vs_simulation(self, rng):
        chain = FiniteMarkovChain(np.array([[0.6, 0.4], [0.2, 0.8]]))
        path = chain.sample_path(0, 40_000, seed=rng)
        visits = np.nonzero(path == 0)[0]
        gaps = np.diff(visits)
        assert gaps.mean() == pytest.approx(expected_return_time(chain, 0),
                                            rel=0.1)


class TestCornerHitting:
    def test_at_least_graph_distance(self):
        process = EhrenfestProcess(k=3, a=0.4, b=0.1, m=4)
        distance = (3 - 1) * 4
        assert corner_hitting_time(process, "up") >= distance
        assert corner_hitting_time(process, "down") >= distance

    def test_drift_direction_asymmetry(self):
        """Upward drift (a > b) makes the up-hit much cheaper."""
        process = EhrenfestProcess(k=3, a=0.45, b=0.05, m=5)
        up = corner_hitting_time(process, "up")
        down = corner_hitting_time(process, "down")
        assert up < down / 5

    def test_symmetric_process_symmetric_times(self):
        process = EhrenfestProcess(k=3, a=0.25, b=0.25, m=4)
        up = corner_hitting_time(process, "up")
        down = corner_hitting_time(process, "down")
        assert up == pytest.approx(down, rel=1e-9)

    def test_bad_direction(self):
        process = EhrenfestProcess(k=2, a=0.3, b=0.3, m=3)
        with pytest.raises(InvalidParameterError):
            corner_hitting_time(process, "sideways")

    def test_diameter_bound_consistency(self):
        """t_mix lower bound km/2 is indeed below the corner hitting time."""
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=6)
        hit = corner_hitting_time(process, "up")
        assert hit >= process.mixing_time_lower_bound()
