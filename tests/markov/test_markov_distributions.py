"""Tests for multinomial helpers and total variation."""

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.markov.distributions import (
    binomial_pmf,
    empirical_distribution,
    log_multinomial_coefficient,
    multinomial_covariance,
    multinomial_mean,
    multinomial_pmf,
    multinomial_pmf_over_space,
    total_variation,
)
from repro.markov.state_space import CompositionSpace
from repro.utils import InvalidParameterError


class TestLogMultinomialCoefficient:
    def test_simple(self):
        assert log_multinomial_coefficient((2, 1)) == pytest.approx(math.log(3))

    def test_all_in_one_cell(self):
        assert log_multinomial_coefficient((5, 0, 0)) == pytest.approx(0.0)


class TestMultinomialPmf:
    def test_matches_scipy(self):
        p = [0.2, 0.3, 0.5]
        for x in [(1, 2, 3), (0, 0, 6), (2, 2, 2)]:
            expected = scipy_stats.multinomial(6, p).pmf(x)
            assert multinomial_pmf(x, 6, p) == pytest.approx(expected)

    def test_wrong_total_gives_zero(self):
        assert multinomial_pmf((1, 1), 3, [0.5, 0.5]) == 0.0

    def test_negative_count_gives_zero(self):
        assert multinomial_pmf((-1, 4), 3, [0.5, 0.5]) == 0.0

    def test_zero_probability_cell(self):
        assert multinomial_pmf((1, 2), 3, [0.0, 1.0]) == 0.0
        assert multinomial_pmf((0, 3), 3, [0.0, 1.0]) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            multinomial_pmf((1, 2, 3), 6, [0.5, 0.5])

    def test_binomial_special_case(self):
        assert binomial_pmf(2, 5, 0.3) == pytest.approx(
            scipy_stats.binom(5, 0.3).pmf(2))

    def test_binomial_out_of_range(self):
        assert binomial_pmf(-1, 5, 0.3) == 0.0
        assert binomial_pmf(6, 5, 0.3) == 0.0


class TestPmfOverSpace:
    def test_sums_to_one(self):
        space = CompositionSpace(6, 3)
        pmf = multinomial_pmf_over_space(space, [0.2, 0.3, 0.5])
        assert pmf.sum() == pytest.approx(1.0)

    def test_matches_pointwise(self):
        space = CompositionSpace(4, 3)
        p = [0.1, 0.6, 0.3]
        pmf = multinomial_pmf_over_space(space, p)
        for i, x in enumerate(space):
            assert pmf[i] == pytest.approx(multinomial_pmf(x, 4, p))

    def test_zero_probability_cells(self):
        space = CompositionSpace(3, 2)
        pmf = multinomial_pmf_over_space(space, [1.0, 0.0])
        assert pmf[space.index((3, 0))] == pytest.approx(1.0)
        assert pmf.sum() == pytest.approx(1.0)

    def test_length_mismatch_raises(self):
        space = CompositionSpace(3, 2)
        with pytest.raises(InvalidParameterError):
            multinomial_pmf_over_space(space, [0.2, 0.3, 0.5])


class TestMomentHelpers:
    def test_mean(self):
        assert np.allclose(multinomial_mean(10, [0.2, 0.8]), [2.0, 8.0])

    def test_covariance_diagonal(self):
        cov = multinomial_covariance(10, [0.2, 0.8])
        assert cov[0, 0] == pytest.approx(10 * 0.2 * 0.8)

    def test_covariance_off_diagonal_negative(self):
        cov = multinomial_covariance(10, [0.3, 0.3, 0.4])
        assert cov[0, 1] == pytest.approx(-10 * 0.3 * 0.3)

    def test_covariance_rows_sum_to_zero(self):
        cov = multinomial_covariance(7, [0.2, 0.3, 0.5])
        assert np.allclose(cov.sum(axis=1), 0.0)


class TestTotalVariation:
    def test_identical_is_zero(self):
        assert total_variation([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_symmetry(self):
        p, q = [0.2, 0.8], [0.6, 0.4]
        assert total_variation(p, q) == total_variation(q, p)

    def test_triangle_inequality(self):
        p, q, r = [0.2, 0.8], [0.5, 0.5], [0.9, 0.1]
        assert total_variation(p, r) <= (total_variation(p, q)
                                         + total_variation(q, r) + 1e-15)

    def test_known_value(self):
        assert total_variation([0.2, 0.8], [0.4, 0.6]) == pytest.approx(0.2)

    def test_shape_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            total_variation([0.5, 0.5], [1.0])


class TestEmpiricalDistribution:
    def test_counts(self):
        out = empirical_distribution([0, 0, 1, 2], 3)
        assert np.allclose(out, [0.5, 0.25, 0.25])

    def test_out_of_range_raises(self):
        with pytest.raises(InvalidParameterError):
            empirical_distribution([0, 3], 3)

    def test_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            empirical_distribution([], 3)
