"""Tests for the Delta_k^m composition space."""

from math import comb

import numpy as np
import pytest

from repro.markov.state_space import CompositionSpace, compositions, num_compositions
from repro.utils import InvalidParameterError


class TestNumCompositions:
    @pytest.mark.parametrize("m,k,expected", [
        (0, 1, 1), (3, 1, 1), (2, 2, 3), (3, 3, 10), (5, 4, 56),
    ])
    def test_known_values(self, m, k, expected):
        assert num_compositions(m, k) == expected

    def test_matches_binomial(self):
        for m in range(6):
            for k in range(1, 5):
                assert num_compositions(m, k) == comb(m + k - 1, k - 1)

    def test_rejects_bad_k(self):
        with pytest.raises(InvalidParameterError):
            num_compositions(3, 0)


class TestCompositions:
    def test_enumeration_count(self):
        assert len(list(compositions(4, 3))) == num_compositions(4, 3)

    def test_all_sum_to_m(self):
        assert all(sum(x) == 5 for x in compositions(5, 3))

    def test_all_nonnegative(self):
        assert all(min(x) >= 0 for x in compositions(4, 4))

    def test_no_duplicates(self):
        states = list(compositions(5, 3))
        assert len(set(states)) == len(states)

    def test_lexicographic_order(self):
        states = list(compositions(2, 2))
        assert states == [(0, 2), (1, 1), (2, 0)]

    def test_k_equals_one(self):
        assert list(compositions(7, 1)) == [(7,)]

    def test_m_zero(self):
        assert list(compositions(0, 3)) == [(0, 0, 0)]


class TestCompositionSpace:
    def test_len(self):
        assert len(CompositionSpace(4, 3)) == 15

    def test_index_state_roundtrip(self):
        space = CompositionSpace(5, 3)
        for i, state in enumerate(space):
            assert space.index(state) == i
            assert space.state(i) == state

    def test_index_accepts_numpy(self):
        space = CompositionSpace(3, 2)
        assert space.index(np.array([1, 2])) == space.index((1, 2))

    def test_contains(self):
        space = CompositionSpace(3, 2)
        assert (1, 2) in space
        assert (2, 2) not in space

    def test_missing_state_raises(self):
        space = CompositionSpace(3, 2)
        with pytest.raises(KeyError):
            space.index((4, -1))

    def test_as_array_shape_and_sums(self):
        space = CompositionSpace(4, 3)
        arr = space.as_array()
        assert arr.shape == (len(space), 3)
        assert (arr.sum(axis=1) == 4).all()

    def test_extreme_states(self):
        low, high = CompositionSpace(5, 3).extreme_states()
        assert low == (5, 0, 0)
        assert high == (0, 0, 5)

    def test_extremes_are_members(self):
        space = CompositionSpace(4, 4)
        low, high = space.extreme_states()
        assert low in space and high in space
