"""Tests for biased walks, gambler's ruin, and reflected walks."""

import numpy as np
import pytest

from repro.markov.random_walks import (
    BiasedWalkSpec,
    ReflectedWalk,
    expected_absorption_time,
    gamblers_ruin_win_probability,
    paper_absorption_bound,
    simulate_absorption_time,
    symmetric_interval_win_probability,
)
from repro.utils import InvalidParameterError


class TestBiasedWalkSpec:
    def test_valid(self):
        spec = BiasedWalkSpec(0.4, 0.2)
        assert spec.lam == pytest.approx(2.0)
        assert spec.drift == pytest.approx(0.2)

    def test_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            BiasedWalkSpec(0.0, 0.2)

    def test_rejects_sum_above_one(self):
        with pytest.raises(InvalidParameterError):
            BiasedWalkSpec(0.6, 0.5)


class TestWinProbability:
    def test_unbiased_is_half(self):
        assert symmetric_interval_win_probability(5, 0.3, 0.3) == 0.5

    def test_formula(self):
        lam = 0.4 / 0.2
        k = 4
        expected = (lam**k - 1) / (lam**k - lam**(-k))
        assert symmetric_interval_win_probability(4, 0.4, 0.2) == \
            pytest.approx(expected)

    def test_strong_upward_bias_near_one(self):
        assert symmetric_interval_win_probability(8, 0.6, 0.05) > 0.99

    def test_symmetry_under_swap(self):
        p_up = symmetric_interval_win_probability(5, 0.4, 0.2)
        p_down = symmetric_interval_win_probability(5, 0.2, 0.4)
        assert p_up + p_down == pytest.approx(1.0)

    def test_simulation_agrees(self, rng):
        k, a, b = 4, 0.4, 0.2
        wins = sum(simulate_absorption_time(k, a, b, seed=rng)[1] == k
                   for _ in range(600))
        theory = symmetric_interval_win_probability(k, a, b)
        assert wins / 600 == pytest.approx(theory, abs=0.07)


class TestAbsorptionTime:
    def test_unbiased_includes_laziness(self):
        assert expected_absorption_time(3, 0.25, 0.25) == pytest.approx(
            9 / 0.5)

    def test_nonlazy_unbiased_is_k_squared(self):
        assert expected_absorption_time(4, 0.5, 0.5) == pytest.approx(16.0)

    def test_biased_formula(self):
        k, a, b = 3, 0.4, 0.2
        p_plus = symmetric_interval_win_probability(k, a, b)
        expected = k * (2 * p_plus - 1) / (a - b)
        assert expected_absorption_time(k, a, b) == pytest.approx(expected)

    def test_continuity_at_zero_bias(self):
        """Biased formula converges to the unbiased one as a -> b."""
        near = expected_absorption_time(5, 0.3 + 1e-7, 0.3 - 1e-7)
        exact = expected_absorption_time(5, 0.3, 0.3)
        assert near == pytest.approx(exact, rel=1e-3)

    def test_simulation_agrees_biased(self, rng):
        k, a, b = 4, 0.4, 0.2
        times = [simulate_absorption_time(k, a, b, seed=rng)[0]
                 for _ in range(600)]
        assert np.mean(times) == pytest.approx(
            expected_absorption_time(k, a, b), rel=0.15)

    def test_simulation_agrees_unbiased(self, rng):
        k, a, b = 3, 0.3, 0.3
        times = [simulate_absorption_time(k, a, b, seed=rng)[0]
                 for _ in range(600)]
        assert np.mean(times) == pytest.approx(
            expected_absorption_time(k, a, b), rel=0.15)

    def test_paper_bound_dominates_drift_term(self):
        # For a + b = 1 the paper bound min{k/|a-b|, k^2} dominates E[tau].
        for k, a, b in [(3, 0.7, 0.3), (5, 0.9, 0.1), (4, 0.5, 0.5)]:
            assert expected_absorption_time(k, a, b) \
                <= paper_absorption_bound(k, a, b) + 1e-9

    def test_paper_bound_branches(self):
        assert paper_absorption_bound(10, 0.6, 0.1) == pytest.approx(20.0)
        assert paper_absorption_bound(3, 0.51, 0.49) == pytest.approx(9.0)
        assert paper_absorption_bound(3, 0.4, 0.4) == pytest.approx(9.0)


class TestGamblersRuin:
    def test_boundaries(self):
        assert gamblers_ruin_win_probability(0, 10, 0.3, 0.2) == 0.0
        assert gamblers_ruin_win_probability(10, 10, 0.3, 0.2) == 1.0

    def test_unbiased_linear(self):
        assert gamblers_ruin_win_probability(3, 10, 0.3, 0.3) == \
            pytest.approx(0.3)

    def test_biased_formula(self):
        a, b, start, target = 0.4, 0.2, 3, 8
        ratio = b / a
        expected = (1 - ratio**start) / (1 - ratio**target)
        assert gamblers_ruin_win_probability(start, target, a, b) == \
            pytest.approx(expected)

    def test_start_above_target_raises(self):
        with pytest.raises(InvalidParameterError):
            gamblers_ruin_win_probability(11, 10, 0.3, 0.3)

    def test_monotone_in_start(self):
        probs = [gamblers_ruin_win_probability(s, 10, 0.35, 0.25)
                 for s in range(11)]
        assert all(probs[i] < probs[i + 1] for i in range(10))


class TestReflectedWalk:
    def test_stationary_matches_birth_death_solve(self):
        walk = ReflectedWalk(5, 0.4, 0.2)
        pi_formula = walk.stationary_distribution()
        pi_solved = walk.chain().stationary_distribution()
        assert np.allclose(pi_formula, pi_solved, atol=1e-10)

    def test_stationary_is_per_ball_marginal_of_theorem_2_4(self):
        """A single coupled coordinate has the Theorem 2.4 cell weights."""
        from repro.markov.ehrenfest import EhrenfestProcess

        process = EhrenfestProcess(k=4, a=0.4, b=0.2, m=7)
        walk = ReflectedWalk(4, 0.4, 0.2)
        assert np.allclose(walk.stationary_distribution(),
                           process.stationary_weights())

    def test_detailed_balance(self):
        walk = ReflectedWalk(4, 0.35, 0.15)
        assert walk.chain().satisfies_detailed_balance(
            walk.stationary_distribution(), atol=1e-12)

    def test_kernel_rows(self):
        P = ReflectedWalk(3, 0.3, 0.2).transition_matrix()
        assert np.allclose(P.sum(axis=1), 1.0)
        assert P[0, 0] == pytest.approx(0.7)  # no down-move at the bottom
        assert P[2, 2] == pytest.approx(0.8)  # no up-move at the top

    def test_simulate_stays_in_range(self, rng):
        path = ReflectedWalk(4, 0.4, 0.2).simulate(2, 500, seed=rng)
        assert path.min() >= 1 and path.max() <= 4

    def test_simulate_occupancy_matches_stationary(self, rng):
        walk = ReflectedWalk(3, 0.4, 0.2)
        path = walk.simulate(1, 60_000, seed=rng)
        occupancy = np.bincount(path[1000:] - 1, minlength=3) \
            / (path.size - 1000)
        assert np.allclose(occupancy, walk.stationary_distribution(),
                           atol=0.02)

    def test_bad_start_raises(self, rng):
        with pytest.raises(InvalidParameterError):
            ReflectedWalk(3, 0.4, 0.2).simulate(4, 10, seed=rng)
