"""Unit tests for the ``backend="auto"`` dispatcher."""

import json

import pytest

from repro.engine import check_backend, choose_backend, resolve_backend
from repro.engine.dispatch import (
    DEFAULT_THRESHOLDS,
    _reset_threshold_cache,
    load_thresholds,
)
from repro.utils import InvalidParameterError


class TestCheckBackend:
    def test_concrete_names(self):
        assert check_backend("agent") == "agent"
        assert check_backend("count") == "count"

    def test_auto_needs_opt_in(self):
        with pytest.raises(InvalidParameterError):
            check_backend("auto")
        assert check_backend("auto", allow_auto=True) == "auto"

    def test_unknown_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_backend("gpu", allow_auto=True)


class TestChooseBackend:
    def test_crossover_decides(self):
        thresholds = {"strategy_crossover_n": 1000,
                      "action_crossover_n": 50}
        assert choose_backend(999, thresholds=thresholds) == "agent"
        assert choose_backend(1000, thresholds=thresholds) == "count"
        assert choose_backend(60, mode="action",
                              thresholds=thresholds) == "count"
        assert choose_backend(40, mode="action",
                              thresholds=thresholds) == "agent"

    def test_per_agent_observables_force_agent(self):
        thresholds = {"strategy_crossover_n": 10}
        assert choose_backend(10 ** 9, needs_per_agent=True,
                              thresholds=thresholds) == "agent"

    def test_weighted_crossover_decides(self):
        thresholds = {"strategy_crossover_n": 10,
                      "weighted_crossover_n": 5000}
        assert choose_backend(100, weighted=True,
                              thresholds=thresholds) == "agent"
        assert choose_backend(5000, weighted=True,
                              thresholds=thresholds) == "count"
        # Without the weighted flag the strategy crossover rules.
        assert choose_backend(100, thresholds=thresholds) == "count"
        assert choose_backend(10 ** 9, weighted=True,
                              needs_per_agent=True,
                              thresholds=thresholds) == "agent"

    def test_resolve_passthrough_and_auto(self):
        assert resolve_backend("agent", n=10 ** 9) == "agent"
        assert resolve_backend("count", n=2) == "count"
        resolved = resolve_backend("auto", n=10 ** 9)
        assert resolved == "count"
        assert resolve_backend(None, n=10 ** 9) == resolved
        with pytest.raises(InvalidParameterError):
            resolve_backend("gpu", n=10)


class TestThresholdFile:
    def test_missing_file_falls_back_to_defaults(self, tmp_path):
        _reset_threshold_cache()
        thresholds = load_thresholds(tmp_path / "absent.json")
        assert thresholds == DEFAULT_THRESHOLDS

    def test_recorded_thresholds_override(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(
            {"auto_thresholds": {"strategy_crossover_n": 123,
                                 "unknown_key": 7}}))
        _reset_threshold_cache()
        thresholds = load_thresholds(path)
        assert thresholds["strategy_crossover_n"] == 123
        assert thresholds["action_crossover_n"] == \
            DEFAULT_THRESHOLDS["action_crossover_n"]
        assert "unknown_key" not in thresholds

    def test_malformed_values_ignored(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(
            {"auto_thresholds": {"strategy_crossover_n": -4,
                                 "action_crossover_n": "soon"}}))
        _reset_threshold_cache()
        assert load_thresholds(path) == DEFAULT_THRESHOLDS

    def test_cache_serves_repeat_reads(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(
            {"auto_thresholds": {"strategy_crossover_n": 77}}))
        _reset_threshold_cache()
        first = load_thresholds(path)
        path.unlink()
        assert load_thresholds(path) == first
        _reset_threshold_cache()

    def test_rewritten_file_invalidates_cache(self, tmp_path):
        """Regression: a regenerated BENCH_engine.json (same process,
        e.g. bench_engine.py --output) must not be served stale."""
        import os

        path = tmp_path / "bench.json"
        path.write_text(json.dumps(
            {"auto_thresholds": {"strategy_crossover_n": 111}}))
        _reset_threshold_cache()
        assert load_thresholds(path)["strategy_crossover_n"] == 111
        path.write_text(json.dumps(
            {"auto_thresholds": {"strategy_crossover_n": 222}}))
        # Force a visible mtime change even on coarse filesystems.
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10_000_000))
        assert load_thresholds(path)["strategy_crossover_n"] == 222
        _reset_threshold_cache()

    def test_file_appearing_after_miss_is_picked_up(self, tmp_path):
        path = tmp_path / "bench.json"
        _reset_threshold_cache()
        assert load_thresholds(path) == DEFAULT_THRESHOLDS
        path.write_text(json.dumps(
            {"auto_thresholds": {"weighted_crossover_n": 4321}}))
        assert load_thresholds(path)["weighted_crossover_n"] == 4321
        _reset_threshold_cache()
