"""Integer-overflow edges: huge populations and huge step cursors.

The crash-safety work made the interaction-count cursor a first-class,
serialized quantity, so this suite audits the arithmetic around it:

* the birthday-batching paths at ``n = 10^9`` (counts and collision
  CDFs must stay exact — ``int64`` counts, float survival products
  built from *Python-int* ``n`` so no ``int64`` cube overflows),
* step cursors far beyond ``2^31`` (all cursor arithmetic is
  Python-int: observation labels, ``steps_run`` accumulation, and the
  snapshot round-trip must preserve ``2^62``-scale values exactly),
* the snapshot codec's arbitrary-precision integer passthrough (the
  PCG64 bit-generator state already needs 128-bit ints; cursors ride
  the same rule).
"""

import numpy as np
import pytest

from repro.engine import CountBackend, WeightedCountBackend, igt_model
from repro.engine.count import _collision_cdf
from repro.engine.snapshot import SnapshotState

HUGE_N = 10**9
HUGE_CURSOR = 2**62


def huge_counts(n_states: int = 5) -> np.ndarray:
    counts = np.zeros(n_states, dtype=np.int64)
    counts[0] = HUGE_N - 2 * (HUGE_N // 5)
    counts[1] = HUGE_N // 5
    counts[2] = HUGE_N // 5
    return counts


class TestHugePopulation:
    def test_collision_cdf_is_exact_at_1e9(self):
        cdf = _collision_cdf(HUGE_N, 2)
        assert np.all(np.isfinite(cdf))
        assert np.all(np.diff(cdf) >= 0)
        assert 0.0 <= cdf[0] and cdf[-1] <= 1.0
        # The table stays O(sqrt(n)) — memory does not scale with n.
        assert len(cdf) < 200_000

    def test_birthday_batches_conserve_1e9_agents(self):
        engine = CountBackend(igt_model(3), huge_counts(), seed=9)
        result = engine.run(50_000)
        assert result.steps == 50_000
        assert engine.steps_run == 50_000
        assert int(result.counts.sum()) == HUGE_N
        assert np.all(result.counts >= 0)

    def test_observed_run_at_1e9_labels_steps_exactly(self):
        engine = CountBackend(igt_model(3), huge_counts(), seed=9)
        result = engine.run(30_000, observe_every=10_000)
        labels = [step for step, _ in result.observations]
        assert labels == [0, 10_000, 20_000, 30_000]
        for _, counts in result.observations:
            assert int(counts.sum()) == HUGE_N

    def test_snapshot_roundtrip_at_1e9(self):
        engine = CountBackend(igt_model(3), huge_counts(), seed=9)
        engine.run(20_000)
        data = engine.snapshot().to_bytes()
        fresh = CountBackend(igt_model(3), huge_counts(), seed=1)
        fresh.restore(SnapshotState.from_bytes(data))
        twin = fresh.run(20_000)
        reference = engine.run(20_000)
        assert np.array_equal(twin.counts, reference.counts)
        assert int(twin.counts.sum()) == HUGE_N


class TestHugeCursor:
    """Cursor arithmetic must be exact far beyond 2^31 and 2^53."""

    @pytest.mark.parametrize("backend", ["count", "weighted"])
    def test_cursor_past_2_62_stays_exact(self, backend):
        if backend == "count":
            engine = CountBackend(igt_model(3), [40, 30, 30, 0, 0], seed=3)
        else:
            engine = WeightedCountBackend(
                igt_model(3),
                [[20, 15, 15, 0, 0], [20, 15, 15, 0, 0]],
                [1.0, 3.0],
                seed=3,
            )
        engine.run(64)
        captured = engine.snapshot()
        # Teleport the cursor to 2^62 + 1: every later label must be an
        # exact Python-int offset from it (a float round-trip anywhere
        # would snap these to multiples of 512).
        captured.payload["steps_run"] = HUGE_CURSOR + 1
        engine.restore(SnapshotState.from_bytes(captured.to_bytes()))
        assert engine.steps_run == HUGE_CURSOR + 1
        result = engine.run(384, observe_every=128)
        assert engine.steps_run == HUGE_CURSOR + 385
        assert result.steps == HUGE_CURSOR + 385
        labels = [step for step, _ in result.observations]
        assert labels == [
            HUGE_CURSOR + 1,
            HUGE_CURSOR + 129,
            HUGE_CURSOR + 257,
            HUGE_CURSOR + 385,
        ]

    def test_snapshot_codec_preserves_huge_ints(self):
        state = SnapshotState(
            kind="count",
            payload={"steps_run": HUGE_CURSOR + 7, "big": 2**127 + 1},
        )
        back = SnapshotState.from_bytes(state.to_bytes())
        assert back.payload["steps_run"] == HUGE_CURSOR + 7
        assert back.payload["big"] == 2**127 + 1
        assert isinstance(back.payload["big"], int)
