"""Weighted pair sampling: laws, shared bitstreams, and loud refusals.

Covers the satellite guarantees of the weighted-scheduler promotion:

* ``WeightedPairSampler`` and ``WeightedScheduler`` share one law *and*
  one bitstream under a shared seed (both route through
  :func:`repro.engine.sampling.weighted_pair_block`);
* with equal weights the pair law is exactly
  :class:`~repro.population.scheduler.RandomScheduler`'s (chi-square on
  ordered-pair frequencies);
* engines never *silently* downgrade a weighted scheduler: the agent
  backend draws every pair (and every observed agent) through it, and
  the exchangeable count backend refuses it outright.
"""

import numpy as np
import pytest

from repro.engine import (
    AgentBackend,
    CountBackend,
    ImitationModel,
    TableModel,
    UniformPairSampler,
    WeightedPairSampler,
)
from repro.population.scheduler import RandomScheduler, WeightedScheduler
from repro.utils import InvalidParameterError

#: chi-square 99.9% quantiles by degrees of freedom (no scipy at runtime).
_CHI2_999 = {11: 31.264, 19: 43.820}


def pair_chi_square(initiators, responders, probabilities) -> float:
    """Chi-square statistic of ordered-pair frequencies vs a pair law."""
    n = probabilities.shape[0]
    observed = np.zeros((n, n))
    np.add.at(observed, (initiators, responders), 1)
    total = len(initiators)
    expected = probabilities * total
    mask = ~np.eye(n, dtype=bool)
    return float(((observed[mask] - expected[mask]) ** 2
                  / expected[mask]).sum())


def uniform_pair_law(n: int) -> np.ndarray:
    law = np.full((n, n), 1.0 / (n * (n - 1)))
    np.fill_diagonal(law, 0.0)
    return law


def weighted_pair_law(weights) -> np.ndarray:
    """P(i, j) = w_i * w_j / (1 - w_i) for the rejection responder law."""
    w = np.asarray(weights, float)
    w = w / w.sum()
    law = w[:, None] * (w[None, :] / (1.0 - w[:, None]))
    np.fill_diagonal(law, 0.0)
    return law


class TestSharedBitstream:
    def test_scheduler_and_sampler_blocks_identical(self):
        weights = [1.0, 3.0, 0.5, 2.0, 4.0]
        scheduler = WeightedScheduler(weights, seed=42)
        sampler = WeightedPairSampler(weights, np.random.default_rng(42))
        si, sj = scheduler.pair_block(5000)
        pi, pj = sampler.pair_block(5000)
        assert np.array_equal(si, pi)
        assert np.array_equal(sj, pj)

    def test_others_blocks_identical(self):
        weights = [1.0, 3.0, 0.5, 2.0]
        scheduler = WeightedScheduler(weights, seed=9)
        sampler = WeightedPairSampler(weights, np.random.default_rng(9))
        first = np.array([0, 1, 2, 3] * 250)
        a = scheduler.others_block(first)
        b = sampler.others_block(first)
        assert np.array_equal(a, b)
        assert (a != first).all()

    def test_uniform_others_block_matches_shift_trick(self):
        sampler = UniformPairSampler(7, np.random.default_rng(3))
        reference_rng = np.random.default_rng(3)
        first = np.arange(7).repeat(100)
        drawn = sampler.others_block(first)
        second = reference_rng.integers(0, 6, size=len(first))
        second = second + (second >= first)
        assert np.array_equal(drawn, second)
        assert (drawn != first).all()


class TestEqualWeightsLaw:
    def test_equal_weights_reproduce_uniform_pair_law(self):
        """Chi-square of equal-weight pair frequencies vs the uniform law."""
        n, draws = 4, 60_000
        sampler = WeightedPairSampler(np.ones(n),
                                      np.random.default_rng(2024))
        initiators, responders = sampler.pair_block(draws)
        statistic = pair_chi_square(initiators, responders,
                                    uniform_pair_law(n))
        dof = n * (n - 1) - 1
        assert statistic < _CHI2_999[dof], statistic

    def test_random_scheduler_passes_same_test(self):
        """The uniform reference itself clears the same chi-square bar."""
        n, draws = 4, 60_000
        scheduler = RandomScheduler(n, seed=7)
        initiators, responders = scheduler.pair_block(draws)
        statistic = pair_chi_square(initiators, responders,
                                    uniform_pair_law(n))
        assert statistic < _CHI2_999[n * (n - 1) - 1], statistic

    def test_weighted_law_matches_rejection_formula(self):
        weights = [1.0, 1.0, 8.0, 2.0, 4.0]
        sampler = WeightedPairSampler(weights, np.random.default_rng(5))
        initiators, responders = sampler.pair_block(80_000)
        statistic = pair_chi_square(initiators, responders,
                                    weighted_pair_law(weights))
        assert statistic < _CHI2_999[5 * 4 - 1], statistic


class TestNoSilentDowngrade:
    """Regression for the silently-ignored-scheduler bug: every engine
    surface either honors a weighted scheduler or refuses loudly."""

    @staticmethod
    def _counting(scheduler):
        calls = {"pair": 0, "others": 0}
        original_pair = scheduler.pair_block
        original_others = scheduler.others_block

        def pair_block(size):
            calls["pair"] += 1
            return original_pair(size)

        def others_block(first):
            calls["others"] += 1
            return original_others(first)

        scheduler.pair_block = pair_block
        scheduler.others_block = others_block
        return calls

    def test_agent_backend_draws_pairs_through_weighted_scheduler(self):
        table = np.zeros((2, 2, 2), dtype=np.int64)
        table[:, :, 0] = np.arange(2)[:, None]
        table[:, :, 1] = np.arange(2)[None, :]
        scheduler = WeightedScheduler([1.0, 2.0, 3.0, 4.0], seed=0)
        calls = self._counting(scheduler)
        backend = AgentBackend(TableModel(table),
                               np.array([0, 1, 0, 1]), scheduler=scheduler)
        backend.run(500)
        assert calls["pair"] > 0

    def test_agent_backend_draws_observers_through_weighted_scheduler(self):
        scheduler = WeightedScheduler([1.0, 2.0, 3.0, 4.0], seed=0)
        calls = self._counting(scheduler)
        model = ImitationModel(np.array([[1.0, 0.0], [2.0, 1.0]]))
        backend = AgentBackend(model, np.array([0, 1, 0, 1]),
                               scheduler=scheduler)
        backend.run(500)
        assert calls["pair"] > 0
        assert calls["others"] > 0

    def test_weighted_law_reaches_the_dynamics(self):
        """An almost-zero-weight agent initiates (essentially) never."""
        # One-way rule: the initiator adopts its partner's state, so an
        # agent that never initiates keeps its initial state.
        table = np.empty((2, 2, 2), dtype=np.int64)
        for u in range(2):
            for v in range(2):
                table[u, v] = (v, v)
        weights = np.ones(50)
        weights[0] = 1e-12
        states = np.zeros(50, dtype=np.int64)
        states[0] = 1
        backend = AgentBackend(TableModel(table), states,
                               scheduler=WeightedScheduler(weights, seed=3))
        result = backend.run(20_000)
        # Agent 0 is (essentially) never the initiator, so it keeps its
        # state; everyone else eventually copies it under this rule only
        # via interactions where 0 responds.
        assert result.states[0] == 1

    def test_count_backend_refuses_weighted_scheduler(self):
        table = np.zeros((2, 2, 2), dtype=np.int64)
        table[:, :, 0] = np.arange(2)[:, None]
        table[:, :, 1] = np.arange(2)[None, :]
        with pytest.raises(InvalidParameterError,
                           match="WeightedCountBackend"):
            CountBackend(TableModel(table), np.array([2, 2]),
                         scheduler=WeightedScheduler(np.ones(4), seed=0))

    def test_count_backend_honors_uniform_scheduler_stream(self):
        table = np.empty((2, 2, 2), dtype=np.int64)
        for u in range(2):
            for v in range(2):
                table[u, v] = (max(u, v), v)
        model = TableModel(table)
        counts = np.array([5, 3])
        via_scheduler = CountBackend(
            model, counts, scheduler=RandomScheduler(8, seed=11)).run(200)
        via_seed = CountBackend(model, counts, seed=11).run(200)
        assert np.array_equal(via_scheduler.counts, via_seed.counts)

    def test_count_backend_rejects_mismatched_scheduler_n(self):
        table = np.zeros((2, 2, 2), dtype=np.int64)
        with pytest.raises(InvalidParameterError, match="n="):
            CountBackend(TableModel(table), np.array([2, 2]),
                         scheduler=RandomScheduler(9, seed=0))

    def test_four_slot_weighted_scheduler_without_others_refused(self):
        """A weighted duck scheduler lacking others_block cannot serve
        models that read observed agents — loud error, no uniform
        fallback."""

        class MinimalWeighted:
            n = 4
            weights = np.full(4, 0.25)

            def __init__(self):
                self.rng = np.random.default_rng(0)

            def pair_block(self, size):
                return (self.rng.integers(0, 4, size),
                        self.rng.integers(0, 4, size))

        model = ImitationModel(np.array([[1.0, 0.0], [2.0, 1.0]]))
        with pytest.raises(InvalidParameterError, match="others_block"):
            AgentBackend(model, np.array([0, 1, 0, 1]),
                         scheduler=MinimalWeighted())
