"""Unit tests for the agent and count simulation backends."""

import numpy as np
import pytest

from repro.engine import (
    AgentBackend,
    CountBackend,
    igt_model,
    matrix_game_model,
    protocol_model,
)
from repro.engine.count import _collision_cdf
from repro.population.protocol import TransitionFunctionProtocol
from repro.population.scheduler import RandomScheduler
from repro.population.simulator import simulate_protocol_counts
from repro.utils import InvalidParameterError


@pytest.fixture
def epidemic():
    """One-way max-epidemic protocol on 3 states."""
    return protocol_model(TransitionFunctionProtocol(
        n_states=3, fn=lambda u, v: (max(u, v), v)))


class TestAgentBackend:
    def test_counts_track_states(self, epidemic, rng):
        states = np.array([0, 1, 2, 0, 0], dtype=np.int64)
        backend = AgentBackend(epidemic, states, seed=rng)
        backend.run(500)
        assert np.array_equal(backend.counts,
                              np.bincount(backend.states, minlength=3))
        assert backend.counts.sum() == 5

    def test_observation_cadence_includes_start(self, epidemic, rng):
        states = np.zeros(10, dtype=np.int64)
        states[0] = 2
        backend = AgentBackend(epidemic, states, seed=rng)
        result = backend.run(100, observe_every=25)
        assert [s for s, _ in result.observations] == [0, 25, 50, 75, 100]

    def test_stop_when_already_true(self, epidemic, rng):
        backend = AgentBackend(epidemic, np.zeros(6, dtype=np.int64),
                               seed=rng)
        result = backend.run(100, stop_when=lambda c: True,
                             check_stop_every=10)
        assert result.converged and result.steps == 0

    def test_stop_cadence(self, epidemic, rng):
        states = np.zeros(20, dtype=np.int64)
        states[0] = 2
        backend = AgentBackend(epidemic, states, seed=rng)
        result = backend.run(10_000, stop_when=lambda c: c[2] == 20,
                             check_stop_every=7)
        assert result.converged
        assert result.steps % 7 == 0

    def test_reproducible(self, epidemic):
        states = (np.arange(30) % 3).astype(np.int64)
        first = AgentBackend(epidemic, states, seed=11).run(2000)
        second = AgentBackend(epidemic, states, seed=11).run(2000)
        assert np.array_equal(first.states, second.states)

    def test_stop_predicate_may_read_backend_counts(self, epidemic, rng):
        # Predicates that consult backend state instead of their argument
        # must still see live counts on the list fast path.
        states = np.zeros(20, dtype=np.int64)
        states[0] = 2
        backend = AgentBackend(epidemic, states, seed=rng)
        result = backend.run(20_000,
                             stop_when=lambda _: backend.counts[2] == 20,
                             check_stop_every=10)
        assert result.converged

    def test_numpy_path_matches_list_path(self, epidemic, monkeypatch):
        # n >> steps takes the NumPy branch; forcing the list branch via
        # the threshold must produce bit-identical outcomes.
        import repro.engine.agent as agent_module

        states = (np.arange(4000) % 3).astype(np.int64)
        numpy_path = AgentBackend(epidemic, states, seed=5).run(50)
        monkeypatch.setattr(agent_module, "_LIST_PATH_MAX_N_PER_STEP",
                            10**9)
        list_path = AgentBackend(epidemic, states, seed=5).run(50)
        assert np.array_equal(numpy_path.states, list_path.states)
        assert np.array_equal(numpy_path.counts, list_path.counts)

    def test_generic_path_runs_stochastic_model(self, rng):
        model = matrix_game_model(np.array([[0.0, 2.0], [1.0, 0.0]]),
                                  "logit", eta=2.0)
        backend = AgentBackend(model, (np.arange(12) % 2).astype(np.int64),
                               seed=rng)
        result = backend.run(400, observe_every=100)
        assert result.counts.sum() == 12
        assert len(result.observations) == 5

    def test_shared_scheduler_and_inplace_states(self, epidemic):
        states = (np.arange(10) % 3).astype(np.int64)
        scheduler = RandomScheduler(10, seed=3)
        backend = AgentBackend(epidemic, states, scheduler=scheduler,
                               copy=False)
        backend.run(100)
        assert backend.states_live is states  # adopted, not copied

    def test_validation(self, epidemic):
        with pytest.raises(InvalidParameterError):
            AgentBackend(epidemic, np.array([0]))
        with pytest.raises(InvalidParameterError):
            AgentBackend(epidemic, np.array([0, 9]))
        with pytest.raises(InvalidParameterError):
            AgentBackend(epidemic, np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(InvalidParameterError):
            AgentBackend(epidemic, np.zeros(4, dtype=np.int64),
                         scheduler=RandomScheduler(7, seed=0))
        with pytest.raises(InvalidParameterError):
            AgentBackend(epidemic, [0, 1, 2], copy=False)


class TestCountBackend:
    def test_population_conserved_through_collisions(self, epidemic, rng):
        # n = 6 forces a collision every couple of interactions.
        backend = CountBackend(epidemic, np.array([4, 1, 1]), seed=rng)
        result = backend.run(5000)
        assert result.counts.sum() == 6
        assert (result.counts >= 0).all()
        assert result.steps == 5000

    def test_absorbing_state_reached(self, epidemic, rng):
        backend = CountBackend(epidemic, np.array([19, 0, 1]), seed=rng)
        result = backend.run(20_000, stop_when=lambda c: c[2] == 20,
                             check_stop_every=50)
        assert result.converged
        assert result.counts[2] == 20

    def test_observation_cadence(self, epidemic, rng):
        backend = CountBackend(epidemic, np.array([50, 0, 10]), seed=rng)
        result = backend.run(1000, observe_every=250)
        assert [s for s, _ in result.observations] == [0, 250, 500, 750, 1000]
        assert all(c.sum() == 60 for _, c in result.observations)

    def test_reproducible(self, epidemic):
        start = np.array([100, 20, 5])
        first = CountBackend(epidemic, start, seed=21).run(3000)
        second = CountBackend(epidemic, start, seed=21).run(3000)
        assert np.array_equal(first.counts, second.counts)

    def test_four_slot_model_small_population(self, rng):
        # Imitation reads four agents per interaction; tiny n exercises
        # the exclusion-aware collision resolution constantly.
        model = matrix_game_model(np.array([[0.0, 2.0], [1.0, 0.0]]),
                                  "imitation")
        backend = CountBackend(model, np.array([3, 2]), seed=rng)
        result = backend.run(4000)
        assert result.counts.sum() == 5
        assert (result.counts >= 0).all()

    def test_igt_counts_only_move_gtft(self, rng):
        model = igt_model(4)
        start = np.array([10, 0, 0, 0, 6, 4])  # 10 GTFT, 6 AC, 4 AD
        backend = CountBackend(model, start, seed=rng)
        result = backend.run(8000)
        assert result.counts[4] == 6 and result.counts[5] == 4
        assert result.counts[:4].sum() == 10

    def test_igt_agent_states_only_move_gtft(self, rng):
        # The per-agent counterpart: AC (state k) and AD (state k+1)
        # agents are inert under the k-IGT table on the agent engine too
        # (guards table bugs the masked IGTSimulation.indices can't see).
        k = 4
        states = np.array([0] * 10 + [k] * 6 + [k + 1] * 4, dtype=np.int64)
        backend = AgentBackend(igt_model(k), states, seed=rng)
        result = backend.run(8000)
        assert (result.states[10:16] == k).all()
        assert (result.states[16:] == k + 1).all()
        assert (result.states[:10] < k).all()

    def test_states_not_tracked(self, epidemic, rng):
        backend = CountBackend(epidemic, np.array([5, 5, 5]), seed=rng)
        assert backend.states is None
        assert backend.run(10).states is None

    def test_validation(self, epidemic):
        with pytest.raises(InvalidParameterError):
            CountBackend(epidemic, np.array([1, 2]))  # wrong length
        with pytest.raises(InvalidParameterError):
            CountBackend(epidemic, np.array([2, -1, 1]))
        with pytest.raises(InvalidParameterError):
            CountBackend(epidemic, np.array([1, 0, 0]))  # n < 2
        imitation = matrix_game_model(np.eye(2), "imitation")
        with pytest.raises(InvalidParameterError):
            CountBackend(imitation, np.array([2, 1]))  # n < 4 with 4 slots


class TestCountBackendCheckpointBatching:
    """Observation / stop cadences no longer split birthday batches; the
    interior counts they see are materialized from per-slot prefix sums."""

    def test_dense_observation_cadence_inside_batches(self, epidemic, rng):
        # observe_every=3 at n=3000 lands many checkpoints inside every
        # birthday run (expected length ~sqrt(n)/2).
        start = np.array([2800, 150, 50])
        backend = CountBackend(epidemic, start, seed=rng)
        result = backend.run(900, observe_every=3)
        assert [s for s, _ in result.observations] == list(range(0, 901, 3))
        assert all(c.sum() == 3000 for _, c in result.observations)
        # The one-way epidemic only grows state 2: interior snapshots must
        # be monotone, which a mis-ordered prefix sum would violate.
        twos = [int(c[2]) for _, c in result.observations]
        assert all(a <= b for a, b in zip(twos, twos[1:]))
        assert np.array_equal(result.observations[-1][1], result.counts)

    def test_observation_steps_continue_across_runs(self, epidemic, rng):
        backend = CountBackend(epidemic, np.array([500, 0, 10]), seed=rng)
        backend.run(130)
        result = backend.run(100, observe_every=40)
        assert [s for s, _ in result.observations] == [130, 170, 210]

    def test_early_stop_rewinds_to_check_point(self, epidemic, rng):
        # Per-interaction checks: the stop step must be exact even though
        # the batch that contains it ran further ahead.
        start = np.array([995, 0, 5])
        backend = CountBackend(epidemic, start, seed=rng)
        result = backend.run(100_000, stop_when=lambda c: c[2] >= 50,
                             check_stop_every=1)
        assert result.converged
        # Counts are rewound to the very first step where the predicate
        # held; one interaction infects at most one agent.
        assert result.counts[2] == 50
        assert result.steps == backend.steps_run
        final = backend.run(0).counts
        assert np.array_equal(final, result.counts)

    def test_stop_step_is_cadence_multiple(self, epidemic, rng):
        backend = CountBackend(epidemic, np.array([995, 0, 5]), seed=rng)
        result = backend.run(100_000, stop_when=lambda c: c[2] >= 50,
                             check_stop_every=7)
        assert result.converged
        assert result.steps % 7 == 0

    def test_observations_truncate_at_stop(self, epidemic, rng):
        backend = CountBackend(epidemic, np.array([995, 0, 5]), seed=rng)
        result = backend.run(100_000, stop_when=lambda c: c[2] >= 30,
                             observe_every=5, check_stop_every=5)
        assert result.converged
        assert [s for s, _ in result.observations] == \
            list(range(0, result.steps + 1, 5))
        assert int(result.observations[-1][1][2]) >= 30
        assert all(int(c[2]) < 30 for _, c in result.observations[:-1])

    def test_observed_run_matches_unobserved_endpoint_law(self, epidemic):
        # Same seed: observations change how the rng stream is consumed
        # only through batch sizes, never through extra draws inside a
        # batch — a run without checkpoints must be reproducible.
        start = np.array([300, 30, 10])
        plain = CountBackend(epidemic, start, seed=5).run(2000)
        observed = CountBackend(epidemic, start, seed=5).run(
            2000, observe_every=2000)
        assert np.array_equal(plain.counts, observed.counts)

    def test_four_slot_model_with_checkpoints(self, rng):
        game = np.array([[1.0, 0.2], [0.8, 0.5]])
        imitation = matrix_game_model(game, rule="imitation")
        backend = CountBackend(imitation, np.array([30, 30]), seed=rng)
        result = backend.run(500, observe_every=7, check_stop_every=3,
                             stop_when=lambda c: c[0] == 0)
        assert result.counts.sum() == 60
        for step, counts in result.observations:
            assert counts.sum() == 60


class TestCollisionCdf:
    def test_monotone_and_bounded(self):
        for n, spp in [(10, 2), (1000, 2), (16, 4), (100_000, 2)]:
            cdf = _collision_cdf(n, spp)
            assert cdf[0] == 0.0
            assert (np.diff(cdf) >= 0).all()
            assert cdf[-1] <= 1.0

    def test_pairwise_first_step_never_collides(self):
        # With two agents per interaction, a collision needs a previous
        # interaction: cdf[1] must be exactly 0.
        assert _collision_cdf(50, 2)[1] == 0.0

    def test_four_slot_first_step_can_collide(self):
        # The two observed agents may hit the pair already in step 0.
        assert _collision_cdf(50, 4)[1] > 0.0

    def test_tiny_population_forces_collision(self):
        cdf = _collision_cdf(2, 2)
        assert cdf[-1] == pytest.approx(1.0)

    def test_cache_returns_same_object(self):
        assert _collision_cdf(123, 2) is _collision_cdf(123, 2)


class TestSimulateProtocolCounts:
    def test_epidemic_spreads(self, rng):
        protocol = TransitionFunctionProtocol(
            n_states=2, fn=lambda u, v: (max(u, v), max(u, v)))
        result = simulate_protocol_counts(
            protocol, np.array([999, 1]), 200_000, seed=rng,
            stop_when=lambda c: c[1] == 1000, check_stop_every=1000)
        assert result.converged
        assert result.counts[1] == 1000
