"""Unit tests for the chunked vectorized kernel and its backend paths.

The load-bearing guarantee is *bit-for-bit* equality with the sequential
loops: same seed, same pair blocks, identical trajectories — including
the degenerate geometries (``n = 2``, ``n = 3``, chunks larger than the
population) where every chunk is one long conflict chain.
"""

import numpy as np
import pytest

from repro.engine import (
    AgentBackend,
    ConflictFreeKernel,
    CountBackend,
    igt_model,
    matrix_game_model,
    protocol_model,
)
from repro.engine.model import TableModel
from repro.engine.vectorized import MIN_VECTORIZED_N, auto_chunk
from repro.population.protocol import TransitionFunctionProtocol
from repro.utils import InvalidParameterError


@pytest.fixture
def epidemic():
    """One-way max-epidemic protocol on 3 states (state 2 is inert)."""
    return protocol_model(TransitionFunctionProtocol(
        n_states=3, fn=lambda u, v: (max(u, v), v)))


@pytest.fixture
def swap():
    """Two-way model: initiator and responder exchange states."""
    s = 3
    table = np.empty((s, s, 2), dtype=np.int64)
    for u in range(s):
        for v in range(s):
            table[u, v] = (v, u)
    return TableModel(table)


def igt_states(n, k=6):
    states = np.empty(n, dtype=np.int64)
    states[:n // 2] = 0
    states[n // 2:n // 2 + (3 * n) // 10] = k
    states[n // 2 + (3 * n) // 10:] = k + 1
    return states


class TestBitParity:
    @pytest.mark.parametrize("n", [2, 3, 5, 17, 300, 1500])
    def test_igt_matches_sequential(self, n):
        # chunk (>= 1024) far exceeds the small populations: every pair
        # of a chunk conflicts with many others.
        model = igt_model(6)
        states = igt_states(n)
        fast = AgentBackend(model, states, seed=11,
                            vectorized=True).run(9000)
        slow = AgentBackend(model, states, seed=11,
                            vectorized=False).run(9000)
        assert np.array_equal(fast.states, slow.states)
        assert np.array_equal(fast.counts, slow.counts)

    @pytest.mark.parametrize("n", [2, 7, 800])
    def test_two_way_matches_sequential(self, swap, n):
        states = (np.arange(n) % 3).astype(np.int64)
        fast = AgentBackend(swap, states, seed=5, vectorized=True).run(6000)
        slow = AgentBackend(swap, states, seed=5, vectorized=False).run(6000)
        assert np.array_equal(fast.states, slow.states)
        assert np.array_equal(fast.counts, slow.counts)

    def test_mixture_model_matches_sequential(self):
        model = igt_model(5, observation_noise=0.2)
        states = igt_states(700, k=5)
        fast = AgentBackend(model, states, seed=3,
                            vectorized=True).run(20_000)
        slow = AgentBackend(model, states, seed=3,
                            vectorized=False).run(20_000)
        assert np.array_equal(fast.states, slow.states)

    def test_observations_and_stop_match(self, epidemic):
        states = np.zeros(400, dtype=np.int64)
        states[0] = 2
        runs = []
        for vectorized in (True, False):
            backend = AgentBackend(epidemic, states, seed=9,
                                   vectorized=vectorized)
            runs.append(backend.run(50_000, stop_when=lambda c: c[2] >= 300,
                                    observe_every=1000,
                                    check_stop_every=500))
        fast, slow = runs
        assert fast.converged and slow.converged
        assert fast.steps == slow.steps
        assert len(fast.observations) == len(slow.observations)
        for (s1, c1), (s2, c2) in zip(fast.observations, slow.observations):
            assert s1 == s2 and np.array_equal(c1, c2)

    def test_inert_filter_epidemic_absorbed(self, epidemic):
        # All agents inert from the start: the whole run is no-ops.
        states = np.full(2000, 2, dtype=np.int64)
        result = AgentBackend(epidemic, states, seed=1,
                              vectorized=True).run(30_000)
        assert result.counts[2] == 2000
        assert np.array_equal(result.states, states)

    def test_epidemic_not_closed_still_exact(self, epidemic):
        # Epidemic agents *become* inert mid-run (active 0/1 -> inert 2),
        # so the static-mask shortcut must not engage; trajectories stay
        # identical to sequential execution.
        states = (np.arange(1200) % 3).astype(np.int64)
        fast = AgentBackend(epidemic, states, seed=21,
                            vectorized=True).run(40_000)
        slow = AgentBackend(epidemic, states, seed=21,
                            vectorized=False).run(40_000)
        assert np.array_equal(fast.states, slow.states)


class TestPathSelection:
    def test_auto_declines_small_population(self, epidemic):
        backend = AgentBackend(epidemic,
                               np.zeros(MIN_VECTORIZED_N - 1,
                                        dtype=np.int64), seed=0)
        assert not backend._use_vectorized(None, None, 1)

    def test_auto_declines_tiny_cadence(self, epidemic):
        backend = AgentBackend(epidemic,
                               np.zeros(5000, dtype=np.int64), seed=0)
        assert backend._use_vectorized(None, None, 1)
        assert not backend._use_vectorized(lambda c: False, None, 10)
        assert backend._use_vectorized(lambda c: False, None, 5000)
        assert not backend._use_vectorized(None, 10, 1)

    def test_explicit_flags_win(self, epidemic):
        states = np.zeros(50, dtype=np.int64)
        forced = AgentBackend(epidemic, states, seed=0, vectorized=True)
        assert forced._use_vectorized(lambda c: False, 1, 1)
        pinned = AgentBackend(epidemic, states, seed=0, vectorized=False)
        assert not pinned._use_vectorized(None, None, 1)

    def test_generic_models_ignore_the_knob(self):
        model = matrix_game_model(np.array([[0.0, 2.0], [1.0, 0.0]]),
                                  "logit", eta=2.0)
        backend = AgentBackend(model, (np.arange(12) % 2).astype(np.int64),
                               seed=1, vectorized=True)
        result = backend.run(500)
        assert result.counts.sum() == 12

    def test_states_live_identity_preserved(self, epidemic):
        states = (np.arange(3000) % 3).astype(np.int64)
        backend = AgentBackend(epidemic, states, seed=2, vectorized=True)
        live = backend.states_live
        backend.run(10_000)
        assert backend.states_live is live
        assert np.array_equal(backend.counts,
                              np.bincount(live, minlength=3))


class TestKernelValidation:
    def test_stochastic_needs_opt_in(self):
        model = matrix_game_model(np.array([[0.0, 2.0], [1.0, 0.0]]),
                                  "logit", eta=2.0)
        states = np.zeros(10, dtype=np.int64)
        counts = np.bincount(states, minlength=2)
        with pytest.raises(InvalidParameterError):
            ConflictFreeKernel(model, states, counts)
        kernel = ConflictFreeKernel(model, states, counts,
                                    allow_stochastic=True)
        assert kernel.one_way

    def test_pair_count_matrix_requires_tracking(self, epidemic):
        states = np.zeros(10, dtype=np.int64)
        kernel = ConflictFreeKernel(epidemic, states,
                                    np.bincount(states, minlength=3))
        with pytest.raises(InvalidParameterError):
            kernel.pair_count_matrix()

    def test_auto_chunk_bounds(self):
        assert auto_chunk(2) == 1024
        assert auto_chunk(10_000) == 8192
        assert auto_chunk(10 ** 9) == 32768


class TestCountProxyPath:
    def test_proxy_and_birthday_conserve_population(self, epidemic):
        counts = np.array([400, 500, 100])
        for vectorized in (True, False, None):
            backend = CountBackend(epidemic, counts, seed=4,
                                   vectorized=vectorized)
            result = backend.run(25_000)
            assert result.counts.sum() == 1000
            assert (result.counts >= 0).all()

    def test_proxy_forced_needs_supported_model(self):
        imitation = matrix_game_model(np.array([[0.0, 2.0], [1.0, 0.0]]),
                                      "imitation")
        with pytest.raises(InvalidParameterError):
            CountBackend(imitation, np.array([5, 5]), seed=0,
                         vectorized=True)
        # slots_per_step == 4 falls back to the birthday path silently.
        backend = CountBackend(imitation, np.array([5, 5]), seed=0)
        assert backend._kernel is None
        assert backend.run(500).counts.sum() == 10

    def test_proxy_observations_and_stop(self, epidemic):
        counts = np.array([999, 0, 1])
        backend = CountBackend(epidemic, counts, seed=8)
        assert backend._kernel is not None
        result = backend.run(500_000, stop_when=lambda c: c[2] == 1000,
                             observe_every=10_000, check_stop_every=100)
        assert result.converged
        assert result.steps % 100 == 0
        assert all(c.sum() == 1000 for _, c in result.observations)

    def test_pair_counts_sum_to_steps(self, epidemic):
        backend = CountBackend(epidemic, np.array([50, 30, 20]), seed=3,
                               track_pair_counts=True)
        backend.run(4321)
        assert backend.pair_counts.sum() == 4321
        birthday = CountBackend(epidemic, np.array([50, 30, 20]), seed=3,
                                track_pair_counts=True, vectorized=False)
        birthday.run(4321)
        assert birthday.pair_counts.sum() == 4321

    def test_pair_counts_rewound_on_early_stop(self, epidemic):
        # Early stop mid-batch discards the remainder; the pair counts
        # must match the executed steps exactly on both paths.
        for vectorized in (True, False):
            backend = CountBackend(epidemic, np.array([900, 0, 100]),
                                   seed=6, track_pair_counts=True,
                                   vectorized=vectorized)
            result = backend.run(200_000,
                                 stop_when=lambda c: c[2] >= 600,
                                 check_stop_every=1)
            assert result.converged
            assert backend.pair_counts.sum() == result.steps

    def test_pair_counts_require_tracking(self, epidemic):
        backend = CountBackend(epidemic, np.array([5, 4, 1]), seed=0)
        with pytest.raises(InvalidParameterError):
            backend.pair_counts
