"""The observer-sink layer: units, byte-compat, and stream resume.

Covers the sink protocol itself (MemorySink identity, JsonlSink
durability/truncation, reducers vs manual computation, TeeSink
fan-out, spec parsing), the cross-backend contract that a JSONL stream
decodes to exactly the MemorySink series, and the ambient per-task
series scope the sweep executor binds.
"""

import os

import numpy as np
import pytest

from repro.engine import (
    AgentBackend,
    CountBackend,
    DegreeProfileReducer,
    ExtinctionTimeReducer,
    JsonlSink,
    MeanReducer,
    MemorySink,
    ObserverSink,
    TeeSink,
    WeightedCountBackend,
    as_sink,
    igt_model,
    series_paths_for,
    series_sink,
    sink_from_spec,
    use_series_scope,
)
from repro.engine.observe import decode_record, encode_record, series_path
from repro.utils.errors import InvalidParameterError


def emit_rows(sink, rows):
    for step, counts in rows:
        sink.emit(step, counts)
    sink.flush()


ROWS = [(0, [3, 1, 0]), (10, [2, 2, 0]), (20, [0, 3, 1])]


class TestMemorySink:
    def test_records_are_owned_int64_copies(self):
        sink = MemorySink()
        live = np.array([5, 7], dtype=np.int64)
        sink.emit(0, live)
        live[:] = 0  # the backend reuses its working buffer
        step, counts = sink.records[0]
        assert step == 0
        assert counts.dtype == np.int64
        assert counts.tolist() == [5, 7]

    def test_accepts_python_lists(self):
        sink = MemorySink()
        sink.emit(3, [1, 2])
        assert sink.records[0][1].tolist() == [1, 2]

    def test_position_and_seek_truncate(self):
        sink = MemorySink()
        emit_rows(sink, ROWS[:2])
        token = sink.position()
        emit_rows(sink, ROWS[2:])
        sink2 = MemorySink()
        emit_rows(sink2, ROWS)
        sink2.seek(token)
        assert len(sink2.records) == 2
        with pytest.raises(InvalidParameterError):
            MemorySink().seek({"records": 5})


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "series.jsonl"
        sink = JsonlSink(path)
        emit_rows(sink, ROWS)
        sink.close()
        lines = path.read_bytes().splitlines(keepends=True)
        assert len(lines) == 3
        decoded = [decode_record(line) for line in lines]
        for (step, counts), (want_step, want_counts) in zip(decoded, ROWS):
            assert step == want_step
            assert counts.tolist() == list(want_counts)

    def test_encode_is_strict_ascii_json(self):
        line = encode_record(np.int64(7), np.array([1, 2], dtype=np.int64))
        assert line == b'{"step":7,"counts":[1,2]}\n'

    def test_fresh_sink_truncates_leftover_file(self, tmp_path):
        path = tmp_path / "series.jsonl"
        path.write_bytes(b"junk from a previous attempt\n")
        sink = JsonlSink(path)
        emit_rows(sink, ROWS[:1])
        sink.close()
        assert path.read_bytes() == encode_record(0, [3, 1, 0])

    def test_batching_defers_writes_until_flush(self, tmp_path):
        path = tmp_path / "series.jsonl"
        sink = JsonlSink(path, batch=100)
        sink.emit(0, [1])
        assert not path.exists()
        sink.flush()
        assert path.exists()

    def test_position_flushes_and_seek_truncates(self, tmp_path):
        path = tmp_path / "series.jsonl"
        sink = JsonlSink(path)
        emit_rows(sink, ROWS[:2])
        token = sink.position()
        emit_rows(sink, ROWS[2:])
        sink.close()
        assert len(path.read_bytes().splitlines()) == 3

        resumed = JsonlSink(path)
        resumed.seek(token)
        resumed.emit(*ROWS[2])
        resumed.close()
        full = JsonlSink(tmp_path / "full.jsonl")
        emit_rows(full, ROWS)
        full.close()
        assert path.read_bytes() == (tmp_path / "full.jsonl").read_bytes()

    def test_seek_after_emit_is_an_error(self, tmp_path):
        sink = JsonlSink(tmp_path / "series.jsonl")
        sink.emit(0, [1])
        with pytest.raises(InvalidParameterError):
            sink.seek(None)

    def test_seek_detects_out_of_sync_stream(self, tmp_path):
        path = tmp_path / "series.jsonl"
        path.write_bytes(b"x")
        sink = JsonlSink(path)
        with pytest.raises(InvalidParameterError,
                           match="out of sync"):
            sink.seek({"records": 9, "bytes": 10_000})


class TestReducers:
    def test_mean_reducer_matches_manual_mean(self):
        sink = MeanReducer()
        emit_rows(sink, ROWS)
        manual = np.mean([counts for _, counts in ROWS], axis=0)
        summary = sink.summary()
        assert summary["kind"] == "mean"
        assert summary["observations"] == 3
        assert np.allclose(summary["mean"], manual)

    def test_mean_reducer_position_round_trip(self):
        sink = MeanReducer()
        emit_rows(sink, ROWS[:2])
        token = sink.position()
        resumed = MeanReducer()
        resumed.seek(token)
        emit_rows(resumed, ROWS[2:])
        full = MeanReducer()
        emit_rows(full, ROWS)
        assert resumed.summary() == full.summary()

    def test_extinction_reducer_records_first_zero(self):
        sink = ExtinctionTimeReducer()
        emit_rows(sink, ROWS)
        assert sink.summary() == {
            "kind": "extinction",
            # state 2 starts at zero (step 0); state 0 empties at 20;
            # state 1 never does.
            "first_zero": [20, None, 0],
        }

    def test_degree_profile_matches_manual_grouping(self):
        class_of = [1, 1, 2, 2, 2]
        values = np.array([0.0, 0.5, 1.0, np.nan])
        sink = DegreeProfileReducer(class_of, values)
        states = np.array([0, 1, 2, 3, 1])
        sink.emit(0, [2, 2, 1, 1], states=states)
        classes, means = sink.profile()
        assert classes.tolist() == [1, 2]
        # class 1: states (0, 1) -> (0.0 + 0.5)/2; class 2: states
        # (2, 1) with the state-3 agent excluded as NaN.
        assert means == pytest.approx([0.25, 0.75])
        summary = sink.summary()
        assert summary["classes"] == [1, 2]
        assert summary["profile"] == pytest.approx([0.25, 0.75])

    def test_degree_profile_requires_states(self):
        sink = DegreeProfileReducer([1, 2], [0.0, 1.0])
        assert sink.wants_states
        with pytest.raises(InvalidParameterError, match="agent backend"):
            sink.emit(0, [1, 1])

    def test_degree_profile_position_round_trip(self):
        def build():
            return DegreeProfileReducer([1, 1, 2], [0.0, 1.0])

        full, resumed = build(), build()
        states = [np.array([0, 1, 1]), np.array([1, 1, 0])]
        full.emit(0, [1, 2], states=states[0])
        token = full.position()
        full.emit(1, [1, 2], states=states[1])
        resumed.seek(token)
        resumed.emit(1, [1, 2], states=states[1])
        assert resumed.summary() == full.summary()


class TestTeeSink:
    def test_fans_out_and_delegates_records(self, tmp_path):
        memory = MemorySink()
        jsonl = JsonlSink(tmp_path / "series.jsonl")
        tee = TeeSink(memory, jsonl)
        emit_rows(tee, ROWS)
        tee.close()
        assert len(memory.records) == 3
        assert tee.records is memory.records
        assert len((tmp_path / "series.jsonl").read_bytes()
                   .splitlines()) == 3

    def test_wants_states_is_any(self):
        assert not TeeSink(MemorySink()).wants_states
        profile = DegreeProfileReducer([1], [0.0])
        assert TeeSink(MemorySink(), profile).wants_states

    def test_position_and_seek_distribute(self):
        tee = TeeSink(MemorySink(), MeanReducer())
        emit_rows(tee, ROWS[:2])
        token = tee.position()
        emit_rows(tee, ROWS[2:])
        tee.seek(token)
        assert len(tee.sinks[0].records) == 2
        assert tee.sinks[1].summary()["observations"] == 2
        with pytest.raises(InvalidParameterError, match="entries"):
            tee.seek([None])

    def test_needs_at_least_one_sink(self):
        with pytest.raises(InvalidParameterError):
            TeeSink()


class TestSpecs:
    def test_spec_strings_resolve(self, tmp_path):
        assert isinstance(sink_from_spec("memory"), MemorySink)
        assert isinstance(sink_from_spec("mean"), MeanReducer)
        assert isinstance(sink_from_spec("extinction"),
                          ExtinctionTimeReducer)
        jsonl = sink_from_spec(f"jsonl:{tmp_path / 's.jsonl'}")
        assert isinstance(jsonl, JsonlSink)
        profile = sink_from_spec("degree-profile",
                                 profile_classes=[1, 2],
                                 profile_values=[0.0, 1.0])
        assert isinstance(profile, DegreeProfileReducer)

    def test_spec_errors(self):
        with pytest.raises(InvalidParameterError, match="needs a path"):
            sink_from_spec("jsonl:")
        with pytest.raises(InvalidParameterError, match="degree-profile"):
            sink_from_spec("degree-profile")
        with pytest.raises(InvalidParameterError, match="unknown"):
            sink_from_spec("csv")

    def test_as_sink_resolution(self):
        assert isinstance(as_sink(None), MemorySink)
        assert isinstance(as_sink("mean"), MeanReducer)
        sink = MemorySink()
        assert as_sink(sink) is sink
        with pytest.raises(InvalidParameterError):
            as_sink(42)

    def test_base_sink_contract(self):
        sink = ObserverSink()
        with pytest.raises(NotImplementedError):
            sink.emit(0, [1])
        assert sink.position() is None
        sink.seek(None)
        with pytest.raises(InvalidParameterError):
            sink.seek({"records": 1})
        assert sink.records == []


class TestSeriesScope:
    def test_no_scope_means_no_sink(self):
        assert series_sink("trajectory") is None

    def test_scoped_sink_streams_and_is_discoverable(self, tmp_path):
        with use_series_scope(tmp_path, "abc123"):
            sink = series_sink("trajectory")
            assert isinstance(sink, JsonlSink)
            emit_rows(sink, ROWS)
            sink.close()
        assert series_sink("trajectory") is None
        found = series_paths_for(tmp_path, "abc123")
        assert found == [str(tmp_path / "abc123--trajectory.jsonl")]
        assert series_paths_for(tmp_path, "missing") == []
        assert series_paths_for(tmp_path / "nowhere", "abc123") == []

    def test_series_path_sanitizes_names(self, tmp_path):
        path = series_path(tmp_path, "key", "a/b c")
        assert os.path.basename(path) == "key--a-b-c.jsonl"


def igt_counts(k=3, total=900):
    counts = [total // (k + 2)] * (k + 2)
    counts[0] += total - sum(counts)
    return counts


class TestBackendByteCompat:
    """A JSONL stream decodes to exactly the MemorySink series."""

    def assert_stream_matches_memory(self, build, tmp_path, **run_kwargs):
        memory = build().run(observe=None, **run_kwargs)
        path = tmp_path / "stream.jsonl"
        streamed = build().run(observe=f"jsonl:{path}", **run_kwargs)
        assert streamed.observations == []
        assert streamed.counts.tolist() == memory.counts.tolist()
        decoded = [decode_record(line)
                   for line in path.read_bytes().splitlines()]
        assert len(decoded) == len(memory.observations)
        for (step, counts), (want_step, want_counts) in zip(
                decoded, memory.observations):
            assert step == want_step
            assert counts.tolist() == want_counts.tolist()

    def test_agent_backend(self, tmp_path):
        def build():
            return AgentBackend(igt_model(3), [0] * 40 + [1] * 30
                                + [2] * 50, seed=5)

        self.assert_stream_matches_memory(build, tmp_path, max_steps=997,
                                          observe_every=100)

    def test_count_backend(self, tmp_path):
        def build():
            return CountBackend(igt_model(4), igt_counts(4, 5000),
                                seed=11)

        self.assert_stream_matches_memory(build, tmp_path,
                                          max_steps=20_000,
                                          observe_every=1500)

    def test_weighted_backend(self, tmp_path):
        def build():
            counts = np.array([[10, 8, 6, 10, 6],
                               [6, 6, 10, 8, 10]], dtype=np.int64)
            return WeightedCountBackend(igt_model(3), counts,
                                        [1.0, 3.0], seed=23)

        self.assert_stream_matches_memory(build, tmp_path, max_steps=900,
                                          observe_every=90)

    def test_reducer_over_engine_run(self):
        mean = MeanReducer()
        CountBackend(igt_model(3), igt_counts(3, 600),
                     seed=2).run(3000, observe_every=300, observe=mean)
        reference = CountBackend(igt_model(3), igt_counts(3, 600),
                                 seed=2).run(3000, observe_every=300)
        manual = np.mean([c for _, c in reference.observations], axis=0)
        assert np.allclose(mean.summary()["mean"], manual)

    def test_states_sink_refused_off_agent_backend(self):
        backend = CountBackend(igt_model(3), igt_counts(3, 600), seed=2)
        profile = DegreeProfileReducer([1] * 600, [0.0] * 5)
        with pytest.raises(InvalidParameterError, match="states"):
            backend.run(1000, observe_every=100, observe=profile)

    def test_observe_requires_cadence(self):
        backend = CountBackend(igt_model(3), igt_counts(3, 600), seed=2)
        with pytest.raises(InvalidParameterError, match="observe_every"):
            backend.run(1000, observe="mean")
