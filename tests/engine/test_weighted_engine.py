"""WeightedCountBackend: the exact ``(weight class × state)`` chain.

Property tests of the weighted count lift:

* on a 2-class toy the empirical T-step distribution of the
  ``(class, state)`` counts matches an exactly enumerated transition
  matrix of the weighted pair law;
* with equal weights the projected chain is distribution-identical to
  :class:`~repro.engine.count.CountBackend` (pinned against the exact
  Ehrenfest chain from :mod:`repro.markov`, the same reference the
  uniform backend is tested against);
* the product lift preserves model structure (tables, one-way, inert
  states) and the facades run it end to end.
"""

import itertools

import numpy as np
import pytest

from repro.core.general_games import PopulationGameSimulation, hawk_dove_game
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.engine import (
    CountBackend,
    ProductStateModel,
    TableModel,
    WeightedCountBackend,
    igt_model,
    weight_classes,
    weights_from_spec,
)
from repro.markov.ehrenfest import EhrenfestProcess
from repro.utils import InvalidParameterError


def epidemic_table(n_states: int = 2) -> np.ndarray:
    table = np.empty((n_states, n_states, 2), dtype=np.int64)
    for u in range(n_states):
        for v in range(n_states):
            table[u, v] = (max(u, v), v)
    return table


def exact_weighted_epidemic_chain(class_sizes, class_weights):
    """Exact transition matrix of the 2-state epidemic under weights.

    States are tuples ``(ones_in_class_0, ones_in_class_1, ...)``; the
    initiator cell is weight-proportional, the responder cell
    weight-proportional among the remaining agents, and the initiator
    moves to 1 iff either participant is 1.
    """
    spaces = [range(size + 1) for size in class_sizes]
    states = list(itertools.product(*spaces))
    index = {state: i for i, state in enumerate(states)}
    total_weight = sum(s * w for s, w in zip(class_sizes, class_weights))
    matrix = np.zeros((len(states), len(states)))
    for state in states:
        # cell (c, bit): count of class-c agents in state `bit`.
        def cell_count(c, bit, minus=None):
            count = state[c] if bit == 1 else class_sizes[c] - state[c]
            if minus == (c, bit):
                count -= 1
            return count

        for c_i in range(len(class_sizes)):
            for bit_i in (0, 1):
                p_init = (cell_count(c_i, bit_i) * class_weights[c_i]
                          / total_weight)
                if p_init == 0:
                    continue
                remaining = total_weight - class_weights[c_i]
                for c_j in range(len(class_sizes)):
                    for bit_j in (0, 1):
                        count_j = cell_count(c_j, bit_j,
                                             minus=(c_i, bit_i))
                        p_resp = count_j * class_weights[c_j] / remaining
                        if p_resp == 0:
                            continue
                        new = list(state)
                        if bit_i == 0 and bit_j == 1:
                            new[c_i] += 1  # initiator infected
                        matrix[index[state], index[tuple(new)]] += (
                            p_init * p_resp)
    return states, index, matrix


class TestWeightedCountExactChain:
    def test_two_class_toy_matches_exact_chain(self):
        class_sizes = (2, 2)
        class_weights = (1.0, 4.0)
        states, index, matrix = exact_weighted_epidemic_chain(
            class_sizes, class_weights)
        model = TableModel(epidemic_table())
        # One infected agent in the heavy class.
        initial = np.array([[2, 0], [1, 1]], dtype=np.int64)
        start = (0, 1)
        steps, runs = 5, 4000
        rng = np.random.default_rng(99)
        histogram = np.zeros(len(states))
        for _ in range(runs):
            backend = WeightedCountBackend(model, initial,
                                           np.array(class_weights),
                                           seed=rng)
            backend.run(steps)
            final = backend.class_state_counts
            histogram[index[(int(final[0, 1]), int(final[1, 1]))]] += 1
        histogram /= runs
        initial_distribution = np.zeros(len(states))
        initial_distribution[index[start]] = 1.0
        exact = initial_distribution @ np.linalg.matrix_power(matrix, steps)
        tv = 0.5 * np.abs(histogram - exact).sum()
        assert tv < 0.05, f"TV to exact weighted chain {tv:.4f}"

    def test_heavy_class_infects_faster(self):
        """Sanity: seeding the heavy class spreads faster than the light
        one — the law actually depends on the weights."""
        model = TableModel(epidemic_table())
        class_weights = np.array([1.0, 10.0])
        totals = []
        for seed_class in (0, 1):
            initial = np.array([[20, 0], [20, 0]], dtype=np.int64)
            initial[seed_class] = [19, 1]
            infected = 0.0
            rng = np.random.default_rng(7)
            for _ in range(200):
                backend = WeightedCountBackend(model, initial,
                                               class_weights, seed=rng)
                infected += backend.run(60).counts[1]
            totals.append(infected / 200)
        assert totals[1] > totals[0] + 1.0, totals


class TestEqualWeightsIdentity:
    def test_matches_exact_ehrenfest_chain(self):
        """Equal-weight classes: the projected weighted chain realizes
        the same exact law the uniform CountBackend is pinned against."""
        n, n_ac, n_ad, k = 8, 1, 2, 2
        m = n - n_ac - n_ad
        beta_hat = n_ad / (n - 1)
        process = EhrenfestProcess(k=k, a=(m / n) * (1 - beta_hat),
                                   b=(m / n) * beta_hat, m=m)
        space = process.space()
        matrix = process.exact_chain(space).dense()
        model = igt_model(k)
        # Two equal-weight classes splitting the population arbitrarily.
        initial = np.array([[m - 2, 0, n_ac, 0],
                            [2, 0, 0, n_ad]], dtype=np.int64)
        steps, runs = 12, 6000
        rng = np.random.default_rng(2024)
        histogram = np.zeros(len(space))
        for _ in range(runs):
            backend = WeightedCountBackend(model, initial,
                                           np.array([2.0, 2.0]), seed=rng)
            final = backend.run(steps).counts
            histogram[space.index(tuple(final[:k]))] += 1
        histogram /= runs
        start = np.zeros(len(space))
        start[space.index((m, 0))] = 1.0
        exact = start @ np.linalg.matrix_power(matrix, steps)
        tv = 0.5 * np.abs(histogram - exact).sum()
        assert tv < 0.05, f"TV to exact chain {tv:.4f}"

    def test_counts_live_fresh_inside_stop_predicates(self):
        """Predicates reading backend state (not their argument) must
        see current counts mid-run, like on every other engine."""
        model = TableModel(epidemic_table())
        initial = np.array([[30, 1], [30, 0]], dtype=np.int64)
        backend = WeightedCountBackend(model, initial,
                                       np.array([1.0, 2.0]), seed=0)
        result = backend.run(
            100_000,
            stop_when=lambda _: backend.counts_live[1] >= 30,
            check_stop_every=50)
        assert result.converged
        assert backend.counts[1] >= 30
        assert result.steps < 100_000

    def test_single_class_matches_count_backend_law(self):
        """C = 1 weighted backend vs the plain count backend: identical
        final-count distributions on a short chain."""
        model = TableModel(epidemic_table(3))
        counts = np.array([6, 3, 1])
        steps, runs = 15, 3000
        rng = np.random.default_rng(5)
        weighted_hist = np.zeros(11)
        uniform_hist = np.zeros(11)
        for _ in range(runs):
            weighted = WeightedCountBackend(
                model, counts[None, :], np.array([3.0]), seed=rng)
            weighted_hist[weighted.run(steps).counts[2]] += 1
            uniform = CountBackend(model, counts, seed=rng)
            uniform_hist[uniform.run(steps).counts[2]] += 1
        tv = 0.5 * np.abs(weighted_hist - uniform_hist).sum() / runs
        assert tv < 0.06, f"TV between backends {tv:.4f}"


class TestProductStateModel:
    def test_lifted_tables_and_structure(self):
        inner = igt_model(3)  # one-way, AC/AD inert
        product = ProductStateModel(inner, 2)
        assert product.n_states == 10
        assert product.one_way
        inert = product.inert_states
        assert inert is not None and inert.sum() == 2 * 2
        [lifted] = product.component_tables
        [table] = inner.component_tables
        s = inner.n_states
        for cu in range(2):
            for cv in range(2):
                block = lifted[cu * s:(cu + 1) * s, cv * s:(cv + 1) * s]
                assert np.array_equal(block[:, :, 0] - cu * s,
                                      table[:, :, 0])
                assert np.array_equal(block[:, :, 1] - cv * s,
                                      table[:, :, 1])

    def test_apply_preserves_class(self):
        inner = igt_model(3)
        product = ProductStateModel(inner, 3)
        rng = np.random.default_rng(0)
        initiators = rng.integers(0, product.n_states, size=200)
        responders = rng.integers(0, product.n_states, size=200)
        new_u, new_v = product.apply(initiators, responders, rng)
        s = inner.n_states
        assert np.array_equal(new_u // s, initiators // s)
        assert np.array_equal(new_v // s, responders // s)

    def test_four_slot_lift_projects_observed(self):
        """Observed product states reach the inner law as inner states."""
        from repro.engine import ImitationModel

        class Probe(ImitationModel):
            def apply(self, initiators, responders, rng, observed=None):
                assert observed is not None
                assert (observed[0] < self.n_states).all()
                assert (observed[1] < self.n_states).all()
                return super().apply(initiators, responders, rng, observed)

        inner = Probe(np.array([[1.0, 0.0], [2.0, 1.0]]))
        product = ProductStateModel(inner, 3)
        assert product.slots_per_step == 4
        rng = np.random.default_rng(0)
        s = inner.n_states
        initiators = rng.integers(0, product.n_states, size=300)
        responders = rng.integers(0, product.n_states, size=300)
        observed = (rng.integers(0, product.n_states, size=300),
                    rng.integers(0, product.n_states, size=300))
        new_u, new_v = product.apply(initiators, responders, rng, observed)
        assert np.array_equal(new_u // s, initiators // s)
        assert np.array_equal(new_v // s, responders // s)
        u, v = product.apply_scalar(2 * s + 1, s, rng,
                                    observed=(s + 1, 2 * s))
        assert u // s == 2 and v // s == 1


class TestWeightClassHelpers:
    def test_weight_classes_groups_and_caps(self):
        weights = np.array([1.0, 2.0, 1.0, 2.0, 4.0])
        class_weights, class_of = weight_classes(weights)
        assert np.array_equal(class_weights, [1.0, 2.0, 4.0])
        assert np.array_equal(class_weights[class_of], weights)
        with pytest.raises(InvalidParameterError, match="cap"):
            weight_classes(np.linspace(1.0, 2.0, 100))

    def test_weights_from_spec(self):
        assert weights_from_spec("uniform", 10) is None
        powerlaw = weights_from_spec("powerlaw:2", 16)
        assert powerlaw.shape == (16,)
        assert powerlaw.max() == 1.0
        assert powerlaw.min() == pytest.approx(8.0 ** -2)
        two = weights_from_spec("twoclass:3", 10)
        assert (two[:5] == 1.0).all() and (two[5:] == 3.0).all()
        with pytest.raises(InvalidParameterError, match="unknown weight"):
            weights_from_spec("zipf", 10)
        with pytest.raises(InvalidParameterError, match="powerlaw"):
            weights_from_spec("powerlaw:-1", 10)


class TestFacadeIntegration:
    def test_igt_weighted_backends_agree_on_moments(self):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=4, g_max=0.6)
        weights = weights_from_spec("twoclass:4", 120)
        runs, steps = 50, 3000
        rng = np.random.default_rng(5)
        agent_means = np.zeros(4)
        count_means = np.zeros(4)
        for _ in range(runs):
            agent_sim = IGTSimulation(n=120, shares=shares, grid=grid,
                                      seed=rng, initial_indices=0,
                                      weights=weights)
            agent_sim.run(steps)
            agent_means += agent_sim.counts
            count_sim = IGTSimulation(n=120, shares=shares, grid=grid,
                                      seed=rng, initial_indices=0,
                                      backend="count", weights=weights)
            count_sim.run(steps)
            count_means += count_sim.counts
        assert np.abs(agent_means - count_means).max() / runs < 4.0

    def test_igt_weighted_ehrenfest_embedding(self):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.6)
        n = 100
        n_ac, n_ad, _ = shares.agent_counts(n)
        weights = np.ones(n)
        weights[n_ac:n_ac + n_ad] = 5.0
        sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=0,
                            weights=weights)
        process = sim.equivalent_ehrenfest(exact=True)
        total = weights.sum()
        ad_weight = 5.0 * n_ad
        assert process.lam == pytest.approx(
            (total - 1.0 - ad_weight) / ad_weight)
        # Equal weights recover the uniform embedding exactly.
        uniform_sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=0,
                                    weights=np.full(n, 2.0))
        reference = IGTSimulation(n=n, shares=shares, grid=grid, seed=0)
        assert uniform_sim.equivalent_ehrenfest().lam == pytest.approx(
            reference.equivalent_ehrenfest().lam)
        assert uniform_sim.equivalent_ehrenfest().a == pytest.approx(
            reference.equivalent_ehrenfest().a)

    def test_igt_heterogeneous_gtft_weights_reject_embedding(self):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.6)
        sim = IGTSimulation(n=80, shares=shares, grid=grid, seed=0,
                            weights="powerlaw")
        with pytest.raises(InvalidParameterError, match="GTFT"):
            sim.equivalent_ehrenfest(exact=True)

    def test_igt_weighted_count_payoffs(self):
        from repro.core.equilibrium import RDSetting
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.6)
        setting = RDSetting(b=4.0, c=1.0, delta=0.9, s1=0.5)
        sim = IGTSimulation(n=90, shares=shares, grid=grid, seed=1,
                            backend="count", weights="twoclass:2",
                            setting=setting, track_payoffs=True)
        sim.run(5000)
        payoffs = sim.mean_payoff_by_type()
        assert set(payoffs) == {"GTFT", "AC", "AD"}
        assert sim.pair_counts().sum() == 5000

    def test_game_simulation_weighted_backends(self):
        game = hawk_dove_game(2.0, 4.0)
        weights = weights_from_spec("twoclass:3", 40)
        for rule, backend in (("logit", "count"),
                              ("best_response", "count"),
                              ("imitation", "agent"),
                              ("logit", "agent")):
            sim = PopulationGameSimulation(game, 40, rule=rule, seed=0,
                                           backend=backend,
                                           weights=weights)
            sim.run(2000)
            assert sim.counts.sum() == 40
            if backend == "agent":
                sim.step()
                assert sim.counts.sum() == 40

    def test_game_simulation_weighted_imitation_count_accepted(self):
        """The PR 5 refusal is closed: the 4-slot imitation rule runs on
        the weighted count lift."""
        game = hawk_dove_game(2.0, 4.0)
        sim = PopulationGameSimulation(game, 40, rule="imitation", seed=0,
                                       backend="count",
                                       weights="twoclass:3")
        sim.run(2000)
        assert sim.counts.sum() == 40

    def test_weighted_imitation_count_matches_agent_law(self):
        """Law equality, count lift vs agent backend, for the 4-slot
        imitation rule under heterogeneous weights (mean final counts)."""
        game = hawk_dove_game(2.0, 4.0)
        runs, steps, n = 60, 400, 30
        totals = {"agent": 0.0, "count": 0.0}
        for backend in ("agent", "count"):
            for r in range(runs):
                sim = PopulationGameSimulation(
                    game, n, rule="imitation", seed=1000 + r,
                    backend=backend, weights="twoclass:4")
                sim.run(steps)
                totals[backend] += sim.counts[0]
        difference = abs(totals["agent"] - totals["count"]) / runs
        assert difference < 2.5, difference

    def test_auto_dispatch_weighted_imitation_goes_count(self):
        """'auto' is free to resolve weighted imitation count-level now
        that the lift supports 4-slot models."""
        game = hawk_dove_game(2.0, 4.0)
        sim = PopulationGameSimulation(game, 100_000, rule="imitation",
                                       seed=0, backend="auto",
                                       weights="twoclass:3")
        assert sim.backend == "count"
        sim.run(500)
        assert sim.counts.sum() == 100_000
