"""Unit tests for the engine interaction models and adapters."""

import numpy as np
import pytest

from repro.engine import (
    ImitationModel,
    LogitResponseModel,
    MixtureTableModel,
    TableModel,
    igt_model,
    matrix_game_model,
    protocol_model,
)
from repro.population.protocol import TransitionFunctionProtocol
from repro.utils import InvalidParameterError


def max_table(n_states=3):
    protocol = TransitionFunctionProtocol(
        n_states=n_states, fn=lambda u, v: (max(u, v), v))
    return protocol.transition_table()


class TestTableModel:
    def test_apply_matches_table(self, rng):
        table = max_table()
        model = TableModel(table)
        u = np.array([0, 1, 2, 0])
        v = np.array([2, 0, 1, 0])
        new_u, new_v = model.apply(u, v, rng)
        assert new_u.tolist() == [2, 1, 2, 0]
        assert new_v.tolist() == v.tolist()

    def test_apply_scalar_matches_apply(self, rng):
        model = TableModel(max_table())
        for u in range(3):
            for v in range(3):
                vec = model.apply(np.array([u]), np.array([v]), rng)
                assert model.apply_scalar(u, v, rng) == (int(vec[0][0]),
                                                         int(vec[1][0]))

    def test_component_tables_roundtrip(self):
        table = max_table()
        model = TableModel(table)
        assert np.array_equal(model.component_tables[0], table)
        assert model.sample_components(np.random.default_rng(0), 5) is None

    def test_rejects_bad_shapes_and_entries(self):
        with pytest.raises(InvalidParameterError):
            TableModel(np.zeros((2, 3, 2), dtype=np.int64))
        with pytest.raises(InvalidParameterError):
            TableModel(np.zeros((2, 2, 3), dtype=np.int64))
        bad = np.zeros((2, 2, 2), dtype=np.int64)
        bad[0, 0, 0] = 5
        with pytest.raises(InvalidParameterError):
            TableModel(bad)


class TestMixtureTableModel:
    def test_component_frequencies(self, rng):
        identity = np.zeros((2, 2, 2), dtype=np.int64)
        identity[:, :, 0] = np.arange(2)[:, None]
        identity[:, :, 1] = np.arange(2)[None, :]
        flip = identity.copy()
        flip[:, :, 0] = 1 - identity[:, :, 0]
        model = MixtureTableModel([identity, flip], [0.7, 0.3])
        comps = model.sample_components(rng, 40_000)
        assert abs(comps.mean() - 0.3) < 0.02

    def test_degenerate_mixture_is_deterministic(self, rng):
        identity = np.zeros((2, 2, 2), dtype=np.int64)
        identity[:, :, 0] = np.arange(2)[:, None]
        identity[:, :, 1] = np.arange(2)[None, :]
        flip = identity.copy()
        flip[:, :, 0] = 1 - identity[:, :, 0]
        model = MixtureTableModel([identity, flip], [0.0, 1.0])
        u = np.zeros(100, dtype=np.int64)
        v = np.ones(100, dtype=np.int64)
        new_u, new_v = model.apply(u, v, rng)
        assert (new_u == 1).all() and (new_v == 1).all()

    def test_rejects_mismatched_probs(self):
        table = max_table()
        with pytest.raises(Exception):
            MixtureTableModel([table, table], [0.5, 0.3, 0.2])


class TestLogitResponseModel:
    def test_choice_frequencies_match_softmax(self, rng):
        payoffs = np.array([[1.0, 0.0], [0.5, 2.0]])
        eta = 1.3
        model = LogitResponseModel(payoffs, eta=eta)
        v = np.zeros(60_000, dtype=np.int64)
        new_u, new_v = model.apply(np.zeros_like(v), v, rng)
        weights = np.exp(eta * payoffs[:, 0])
        weights /= weights.sum()
        assert abs(new_u.mean() - weights[1]) < 0.01
        assert new_v is v

    def test_scalar_law_matches_vector(self):
        payoffs = np.array([[0.0, 1.0], [2.0, 0.5]])
        model = LogitResponseModel(payoffs, eta=0.8)
        rng = np.random.default_rng(3)
        draws = [model.apply_scalar(0, 1, rng)[0] for _ in range(20_000)]
        weights = np.exp(0.8 * payoffs[:, 1])
        weights /= weights.sum()
        assert abs(np.mean(draws) - weights[1]) < 0.012

    def test_rejects_bad_eta(self):
        with pytest.raises(InvalidParameterError):
            LogitResponseModel(np.eye(2), eta=0.0)


class TestImitationModel:
    def test_switch_probability_is_positive_part(self, rng):
        # payoff(v vs obs_j) - payoff(u vs obs_i) = 1.0 - 0.0, scale 2 ->
        # switch with probability 1/2.
        payoffs = np.array([[0.0, 0.0], [1.0, 1.0]])
        model = ImitationModel(payoffs, scale=2.0)
        size = 40_000
        u = np.zeros(size, dtype=np.int64)
        v = np.ones(size, dtype=np.int64)
        observed = (np.zeros(size, dtype=np.int64),
                    np.zeros(size, dtype=np.int64))
        new_u, _ = model.apply(u, v, rng, observed)
        assert abs(new_u.mean() - 0.5) < 0.01

    def test_never_switches_on_disadvantage(self, rng):
        payoffs = np.array([[1.0, 1.0], [0.0, 0.0]])
        model = ImitationModel(payoffs)
        size = 1000
        u = np.zeros(size, dtype=np.int64)
        v = np.ones(size, dtype=np.int64)
        observed = (np.zeros(size, dtype=np.int64),
                    np.zeros(size, dtype=np.int64))
        new_u, _ = model.apply(u, v, rng, observed)
        assert (new_u == 0).all()

    def test_requires_observed(self, rng):
        model = ImitationModel(np.eye(2))
        with pytest.raises(InvalidParameterError):
            model.apply(np.array([0]), np.array([1]), rng)
        assert model.slots_per_step == 4


class TestAdapters:
    def test_protocol_model_matches_transition_table(self):
        protocol = TransitionFunctionProtocol(
            n_states=3, fn=lambda u, v: (v, v))
        model = protocol_model(protocol)
        assert np.array_equal(model.table, protocol.transition_table())

    def test_igt_table_rule(self):
        k = 4
        model = igt_model(k)
        table = model.table
        ac, ad = k, k + 1
        # GTFT initiator: AD partner decrements, others increment.
        assert table[2, ad, 0] == 1
        assert table[0, ad, 0] == 0  # truncated at the bottom
        assert table[2, ac, 0] == 3
        assert table[1, 2, 0] == 2  # GTFT partner increments
        assert table[k - 1, ac, 0] == k - 1  # truncated at the top
        # AC / AD initiators and every responder never move.
        assert table[ac, 0, 0] == ac and table[ad, 2, 0] == ad
        assert (table[:, :, 1] == np.arange(k + 2)[None, :]).all()

    def test_igt_strict_variant(self):
        model = igt_model(3, mode="strict")
        table = model.table
        assert table[1, 3, 0] == 1  # AC partner: no increment
        assert table[1, 0, 0] == 2  # GTFT partner still increments
        assert table[1, 4, 0] == 0  # AD partner decrements

    def test_igt_noise_is_mixture(self):
        model = igt_model(3, observation_noise=0.25)
        assert isinstance(model, MixtureTableModel)
        assert np.allclose(model.probs, [0.75, 0.25])
        flipped = model.component_tables[1]
        assert flipped[1, 4, 0] == 2  # AD read as non-AD: increments

    def test_igt_validation(self):
        with pytest.raises(InvalidParameterError):
            igt_model(1)
        with pytest.raises(InvalidParameterError):
            igt_model(3, mode="action")
        with pytest.raises(InvalidParameterError):
            igt_model(3, mode="strict", observation_noise=0.1)

    def test_best_response_degenerate_p(self):
        payoffs = np.array([[0.0, 2.0], [1.0, 0.0]])
        model = matrix_game_model(payoffs, "best_response", p_update=1.0)
        assert isinstance(model, TableModel)
        # best response to strategy 1 is strategy 0 (payoff 2 > 0).
        assert model.apply_scalar(1, 1, np.random.default_rng(0))[0] == 0

    def test_unknown_rule_rejected(self):
        with pytest.raises(InvalidParameterError):
            matrix_game_model(np.eye(2), "psychic")
