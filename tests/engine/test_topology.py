"""Graph topologies: laws, degeneracies, shared bitstreams, refusals.

The graph family's counterpart of ``test_weighted_sampling.py``, pinning
the satellite guarantees of the topology promotion:

* on the **complete graph**, :class:`~repro.engine.GraphPairSampler` is
  law-identical to :class:`~repro.engine.UniformPairSampler` (chi-square
  on ordered-pair frequencies at the 99.9% quantile);
* on a sparse graph the pair law is uniform over the ``2E`` directed
  edges (initiator marginal proportional to degree);
* ``GraphScheduler`` and ``GraphPairSampler`` share one law *and* one
  bitstream under a shared seed (both route through
  :func:`repro.engine.topology.graph_pair_block`);
* degeneracies behave: ring with ``n = 2`` (a single edge) and ``n = 3``
  (the triangle ``K_3``), deterministic spec-keyed construction;
* every unsupported configuration refuses loudly: self-loops,
  disconnected graphs, irregular graphs on the count backend, and
  ``auto`` never silently routes a quenched run to the annealed chain.
"""

import numpy as np
import pytest

from repro.engine import (
    AgentBackend,
    CountBackend,
    GraphPairSampler,
    InteractionGraph,
    TableModel,
    UniformPairSampler,
    complete_graph,
    grid_graph,
    powerlaw_graph,
    resolve_topology,
    ring_graph,
    small_world_graph,
    topology_from_spec,
)
from repro.engine.dispatch import choose_backend
from repro.population.scheduler import GraphScheduler, RandomScheduler
from repro.utils import InvalidParameterError

#: chi-square 99.9% quantiles by degrees of freedom (no scipy at runtime).
_CHI2_999 = {3: 16.266, 7: 24.322, 9: 27.877, 11: 31.264, 19: 43.820}


def pair_chi_square(initiators, responders, law) -> float:
    """Chi-square of ordered-pair frequencies vs a pair law's support."""
    n = law.shape[0]
    observed = np.zeros((n, n))
    np.add.at(observed, (initiators, responders), 1)
    expected = law * len(initiators)
    mask = law > 0
    assert observed[~mask].sum() == 0, "draw outside the law's support"
    return float(((observed[mask] - expected[mask]) ** 2
                  / expected[mask]).sum())


def graph_pair_law(graph: InteractionGraph) -> np.ndarray:
    """P(i, j) = 1/(2E) on each directed edge of the graph."""
    law = np.zeros((graph.n, graph.n))
    law[graph.edge_u, graph.edge_v] = 1.0 / graph.edge_u.size
    return law


class TestInteractionGraph:
    def test_self_loop_refused(self):
        with pytest.raises(InvalidParameterError, match="self-loop"):
            InteractionGraph(4, [[0, 0], [0, 1], [1, 2], [2, 3]])

    def test_disconnected_refused(self):
        with pytest.raises(InvalidParameterError, match="disconnected"):
            InteractionGraph(4, [[0, 1], [2, 3]])

    def test_duplicate_and_reversed_edges_collapse(self):
        graph = InteractionGraph(3, [[0, 1], [1, 0], [0, 1], [1, 2],
                                     [2, 0]])
        assert graph.m == 3
        assert graph.edge_u.size == 6

    def test_vertex_transitive_requires_regular(self):
        with pytest.raises(InvalidParameterError, match="irregular"):
            InteractionGraph(3, [[0, 1], [1, 2]], vertex_transitive=True)

    def test_degree_weights_are_degrees(self):
        graph = powerlaw_graph(64)
        assert np.array_equal(graph.degree_weights(),
                              graph.degrees.astype(float))

    def test_csr_neighbors_match_edge_list(self):
        graph = small_world_graph(40, p=0.2)
        for vertex in (0, 7, 39):
            from_edges = np.sort(
                graph.edge_v[graph.edge_u == vertex])
            assert np.array_equal(np.sort(graph.neighbors(vertex)),
                                  from_edges)


class TestDegeneracies:
    def test_ring_n2_is_single_edge(self):
        graph = ring_graph(2)
        assert graph.m == 1
        sampler = GraphPairSampler(graph, np.random.default_rng(0))
        initiators, responders = sampler.pair_block(64)
        assert np.array_equal(np.sort(np.stack([initiators, responders]),
                                      axis=0)[0], np.zeros(64))
        assert (initiators != responders).all()

    def test_ring_n3_is_triangle(self):
        graph = ring_graph(3)
        reference = complete_graph(3)
        assert np.array_equal(graph.edge_u, reference.edge_u)
        assert np.array_equal(graph.edge_v, reference.edge_v)

    def test_ring_half_width_covers_everything(self):
        # half_width >= n/2 saturates into the complete graph.
        graph = ring_graph(6, half_width=3)
        assert graph.m == complete_graph(6).m

    def test_spec_construction_is_deterministic(self):
        first = topology_from_spec("smallworld:0.3", 60)
        second = topology_from_spec("smallworld:0.3", 60)
        assert np.array_equal(first.edge_u, second.edge_u)
        assert np.array_equal(first.edge_v, second.edge_v)
        # ...and independent of the global RNG state.
        np.random.seed(1234)
        third = topology_from_spec("smallworld:0.3", 60)
        assert np.array_equal(first.edge_u, third.edge_u)

    def test_complete_spec_is_none(self):
        assert topology_from_spec("complete", 1000) is None
        assert resolve_topology(None, 1000) is None

    def test_unknown_spec_lists_spellings(self):
        with pytest.raises(InvalidParameterError, match="ring"):
            topology_from_spec("torus", 100)


class TestGraphPairLaw:
    def test_complete_graph_matches_uniform_sampler_law(self):
        """The headline degeneracy: K_n sampling is the paper's law."""
        n, draws = 4, 60_000
        sampler = GraphPairSampler(complete_graph(n),
                                   np.random.default_rng(2024))
        initiators, responders = sampler.pair_block(draws)
        uniform_law = np.full((n, n), 1.0 / (n * (n - 1)))
        np.fill_diagonal(uniform_law, 0.0)
        statistic = pair_chi_square(initiators, responders, uniform_law)
        assert statistic < _CHI2_999[n * (n - 1) - 1], statistic

    def test_uniform_sampler_clears_same_bar(self):
        """The reference itself passes — the test has power, not bias."""
        n, draws = 4, 60_000
        sampler = UniformPairSampler(n, np.random.default_rng(2024))
        initiators, responders = sampler.pair_block(draws)
        uniform_law = np.full((n, n), 1.0 / (n * (n - 1)))
        np.fill_diagonal(uniform_law, 0.0)
        statistic = pair_chi_square(initiators, responders, uniform_law)
        assert statistic < _CHI2_999[n * (n - 1) - 1], statistic

    def test_ring_law_uniform_over_directed_edges(self):
        graph = ring_graph(5)
        sampler = GraphPairSampler(graph, np.random.default_rng(11))
        initiators, responders = sampler.pair_block(50_000)
        statistic = pair_chi_square(initiators, responders,
                                    graph_pair_law(graph))
        assert statistic < _CHI2_999[graph.edge_u.size - 1], statistic

    def test_irregular_initiator_marginal_proportional_to_degree(self):
        graph = InteractionGraph(4, [[0, 1], [0, 2], [0, 3], [1, 2]],
                                 name="star-plus")
        sampler = GraphPairSampler(graph, np.random.default_rng(3))
        initiators, _ = sampler.pair_block(80_000)
        observed = np.bincount(initiators, minlength=4)
        expected = graph.degrees / graph.degrees.sum() * 80_000
        statistic = float(((observed - expected) ** 2 / expected).sum())
        assert statistic < _CHI2_999[graph.n - 1], statistic

    def test_others_block_draws_neighbors(self):
        graph = grid_graph(36)
        sampler = GraphPairSampler(graph, np.random.default_rng(8))
        first = np.arange(36).repeat(50)
        others = sampler.others_block(first)
        assert (others != first).all()
        for vertex in range(36):
            drawn = np.unique(others[first == vertex])
            assert np.isin(drawn, graph.neighbors(vertex)).all()


class TestSharedBitstream:
    def test_scheduler_and_sampler_blocks_identical(self):
        graph = small_world_graph(50, p=0.1)
        scheduler = GraphScheduler(graph, seed=42)
        sampler = GraphPairSampler(graph, np.random.default_rng(42))
        si, sj = scheduler.pair_block(5000)
        pi, pj = sampler.pair_block(5000)
        assert np.array_equal(si, pi)
        assert np.array_equal(sj, pj)

    def test_others_blocks_identical(self):
        graph = ring_graph(20, half_width=2)
        scheduler = GraphScheduler(graph, seed=9)
        sampler = GraphPairSampler(graph, np.random.default_rng(9))
        first = np.arange(20).repeat(100)
        a = scheduler.others_block(first)
        b = sampler.others_block(first)
        assert np.array_equal(a, b)

    def test_scalar_next_pair_is_an_edge(self):
        graph = powerlaw_graph(64)
        scheduler = GraphScheduler(graph, seed=5)
        for _ in range(200):
            i, j = scheduler.next_pair()
            assert j in graph.neighbors(i)


class TestCapabilityContract:
    def test_scheduler_advertises_topology_not_weights(self):
        scheduler = GraphScheduler(ring_graph(10), seed=0)
        assert scheduler.weights is None
        assert scheduler.topology is not None
        assert RandomScheduler(10, seed=0).topology is None

    def test_graph_spec_strings_build_schedulers(self):
        scheduler = GraphScheduler("grid", n=36, seed=0)
        assert scheduler.topology.name.startswith("grid")

    def test_complete_spec_refused_by_graph_scheduler(self):
        with pytest.raises(InvalidParameterError, match="RandomScheduler"):
            GraphScheduler("complete", n=100, seed=0)

    def test_count_backend_accepts_vertex_transitive(self):
        model = TableModel(np.array([[[0, 0], [0, 0]],
                                     [[1, 1], [1, 1]]]))
        scheduler = GraphScheduler(ring_graph(30), seed=3)
        backend = CountBackend(model, np.array([15, 15]),
                               scheduler=scheduler)
        backend.run(100)
        assert backend.counts.sum() == 30

    def test_count_backend_refuses_irregular(self):
        model = TableModel(np.array([[[0, 0], [0, 0]],
                                     [[1, 1], [1, 1]]]))
        scheduler = GraphScheduler(powerlaw_graph(64), seed=3)
        with pytest.raises(InvalidParameterError,
                           match="vertex-transitive"):
            CountBackend(model, np.array([32, 32]), scheduler=scheduler)

    def test_agent_backend_runs_on_graph(self):
        # One-way flip rule: only sampled initiators change state, so
        # after T steps state parity counts the initiator selections.
        table = np.zeros((2, 2, 2), dtype=np.int64)
        table[0, :, 0] = 1      # initiator flips...
        table[1, :, 0] = 0
        table[:, 0, 1] = 0      # ...responder unchanged
        table[:, 1, 1] = 1
        model = TableModel(table)
        states = np.zeros(20, dtype=np.int64)
        backend = AgentBackend(model, states,
                               scheduler=GraphScheduler(ring_graph(20),
                                                        seed=1))
        backend.run(500)
        assert backend.counts.sum() == 20

    def test_auto_dispatch_forces_agent_under_topology(self):
        assert choose_backend(n=10_000_000,
                              graph_restricted=True) == "agent"
        assert choose_backend(n=10_000_000, graph_restricted=False) \
            == "count"
