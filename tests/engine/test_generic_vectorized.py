"""The batched stochastic path for generic models (``vectorized=True``).

The agent backend's generic models (:class:`LogitResponseModel`,
:class:`ImitationModel`) historically ran a per-interaction Python loop;
``vectorized=True`` opts them into the conflict-resolution kernel, which
batch-draws responses per round.  The trajectory *law* must be untouched
— each interaction still receives an independent model draw and
conflicting interactions execute in sampling order — even though
generator consumption differs from the scalar loop (so bit-parity is
explicitly not claimed).  These tests pin the law equivalence, the
observed-agent handling of the 4-slot kernel, and the loud rejection of
models the kernel cannot vectorize.
"""

import numpy as np
import pytest

from repro.engine import (
    AgentBackend,
    ImitationModel,
    LogitResponseModel,
    PairMixtureTableModel,
)
from repro.utils import InvalidParameterError

PAYOFFS = np.array([[1.0, 3.0], [0.0, 2.0]])


class TestLawEquivalence:
    @pytest.mark.parametrize("model_factory", [
        lambda: LogitResponseModel(PAYOFFS, eta=1.3),
        lambda: ImitationModel(PAYOFFS),
    ], ids=["logit", "imitation"])
    def test_final_count_distribution_matches_sequential(
            self, model_factory):
        """TV distance between sequential and kernel final-count laws."""
        n, steps, runs = 12, 40, 4000
        initial = np.array([0] * 6 + [1] * 6, dtype=np.int64)
        rng = np.random.default_rng(11)
        sequential_hist = np.zeros(n + 1)
        vectorized_hist = np.zeros(n + 1)
        for _ in range(runs):
            backend = AgentBackend(model_factory(), initial.copy(),
                                   seed=rng)
            sequential_hist[backend.run(steps).counts[0]] += 1
            backend = AgentBackend(model_factory(), initial.copy(),
                                   seed=rng, vectorized=True)
            vectorized_hist[backend.run(steps).counts[0]] += 1
        tv = 0.5 * np.abs(sequential_hist - vectorized_hist).sum() / runs
        assert tv < 0.06, f"TV between paths {tv:.4f}"

    def test_imitation_round_path_matches_sequential(self):
        """Larger chunks exercise the peeled rounds (not just the scalar
        head); means of the absorbing-ish imitation dynamics agree."""
        n, steps, runs = 60, 400, 1500
        initial = (np.arange(n) % 2).astype(np.int64)
        model = ImitationModel(PAYOFFS)
        rng = np.random.default_rng(5)
        sequential_mean = 0.0
        vectorized_mean = 0.0
        for _ in range(runs):
            backend = AgentBackend(model, initial.copy(), seed=rng)
            sequential_mean += backend.run(steps).counts[1]
            backend = AgentBackend(model, initial.copy(), seed=rng,
                                   vectorized=True)
            vectorized_mean += backend.run(steps).counts[1]
        sequential_mean /= runs
        vectorized_mean /= runs
        assert abs(sequential_mean - vectorized_mean) < 1.0, \
            (sequential_mean, vectorized_mean)

    def test_population_is_conserved_and_states_consistent(self):
        model = ImitationModel(PAYOFFS)
        initial = (np.arange(500) % 2).astype(np.int64)
        backend = AgentBackend(model, initial, seed=3, vectorized=True)
        result = backend.run(20_000)
        assert result.counts.sum() == 500
        assert np.array_equal(
            np.bincount(result.states, minlength=2), result.counts)

    def test_observations_and_stop_predicates_work(self):
        model = LogitResponseModel(PAYOFFS, eta=2.0)
        initial = np.zeros(300, dtype=np.int64)
        backend = AgentBackend(model, initial, seed=9, vectorized=True)
        result = backend.run(5000, observe_every=1000,
                             stop_when=lambda c: c[1] >= 250,
                             check_stop_every=100)
        for step, counts in result.observations:
            assert counts.sum() == 300
        if result.converged:
            assert result.counts[1] >= 250
            assert result.steps % 100 == 0


class TestRejections:
    def test_two_way_stochastic_model_rejected_loudly(self):
        # A PairMixtureTableModel whose tables move the responder is
        # stochastic and two-way: not vectorizable.
        swap = np.empty((2, 2, 2), dtype=np.int64)
        swap[:, :, 0] = np.arange(2)[None, :]
        swap[:, :, 1] = np.arange(2)[:, None]
        identity = np.empty((2, 2, 2), dtype=np.int64)
        identity[:, :, 0] = np.arange(2)[:, None]
        identity[:, :, 1] = np.arange(2)[None, :]
        model = PairMixtureTableModel(swap, identity,
                                      np.full((2, 2), 0.5))
        backend = AgentBackend(model, np.array([0, 1] * 50), seed=0,
                               vectorized=True)
        with pytest.raises(InvalidParameterError, match="one-way"):
            backend.run(100)

    def test_default_path_keeps_sequential_loop(self):
        """vectorized=None (the default) stays on the per-interaction
        loop for generic models: fixed-seed trajectories are unchanged
        from the pre-kernel behavior."""
        model = LogitResponseModel(PAYOFFS, eta=1.0)
        initial = (np.arange(40) % 2).astype(np.int64)
        one = AgentBackend(model, initial.copy(), seed=7).run(500)
        two = AgentBackend(model, initial.copy(), seed=7,
                           vectorized=False).run(500)
        assert np.array_equal(one.states, two.states)
