"""Tests for the count-level action-observed machinery.

Three layers: the exact always-defected probability (vs Monte-Carlo game
play), the :class:`PairMixtureTableModel` law, and the assembled
:func:`igt_action_model`.
"""

import numpy as np
import pytest

from repro.engine import PairMixtureTableModel, igt_action_model
from repro.core.igt import GenerosityGrid
from repro.games.repeated import (
    RepeatedGameEngine,
    always_defect_probability,
)
from repro.games.strategies import (
    always_cooperate,
    always_defect,
    generous_tit_for_tat,
    tit_for_tat,
    win_stay_lose_shift,
)
from repro.utils import InvalidParameterError


class TestAlwaysDefectProbability:
    def test_ad_partner_is_certain(self):
        gtft = generous_tit_for_tat(0.3, 0.5)
        assert always_defect_probability(
            gtft, always_defect(), 0.9) == pytest.approx(1.0, abs=1e-12)

    def test_ac_partner_is_impossible(self):
        gtft = generous_tit_for_tat(0.3, 0.5)
        assert always_defect_probability(gtft, always_cooperate(),
                                         0.9) == 0.0

    def test_delta_zero_is_round_one_defection(self):
        second = generous_tit_for_tat(0.2, 0.35)
        p = always_defect_probability(tit_for_tat(), second, 0.0)
        assert p == pytest.approx(1.0 - second.initial_coop_prob)

    def test_ad_first_vs_gtft_closed_form(self):
        # AD never cooperates, so GTFT(g) keeps defecting with prob 1-g:
        # P = (1 - s1) (1 - delta) / (1 - delta (1 - g)).
        g, s1, delta = 0.25, 0.4, 0.8
        p = always_defect_probability(always_defect(),
                                      generous_tit_for_tat(g, s1), delta)
        expected = (1 - s1) * (1 - delta) / (1 - delta * (1 - g))
        assert p == pytest.approx(expected)

    @pytest.mark.parametrize("first,second", [
        (generous_tit_for_tat(0.3, 0.5), generous_tit_for_tat(0.1, 0.5)),
        (generous_tit_for_tat(0.5, 0.2), win_stay_lose_shift()),
        (win_stay_lose_shift(), generous_tit_for_tat(0.3, 0.7)),
    ])
    def test_matches_monte_carlo(self, first, second, small_setting):
        delta = 0.85
        exact = always_defect_probability(first, second, delta)
        engine = RepeatedGameEngine(small_setting.game, delta)
        rng = np.random.default_rng(42)
        runs = 8000
        hits = sum(engine.play(first, second,
                               seed=rng).opponent_always_defected()
                   for _ in range(runs))
        rate = hits / runs
        sigma = max(np.sqrt(exact * (1 - exact) / runs), 1e-4)
        assert abs(rate - exact) < 5 * sigma, (rate, exact)

    def test_delta_validation(self):
        with pytest.raises(InvalidParameterError):
            always_defect_probability(always_defect(), always_defect(), 1.0)


class TestPairMixtureTableModel:
    def _tables(self):
        s = 3
        ids = np.arange(s)
        hit = np.empty((s, s, 2), dtype=np.int64)
        hit[:, :, 0] = np.maximum(ids - 1, 0)[:, None]
        hit[:, :, 1] = ids[None, :]
        miss = np.empty((s, s, 2), dtype=np.int64)
        miss[:, :, 0] = np.minimum(ids + 1, s - 1)[:, None]
        miss[:, :, 1] = ids[None, :]
        return hit, miss

    def test_structure_flags(self):
        hit, miss = self._tables()
        probs = np.full((3, 3), 0.5)
        model = PairMixtureTableModel(hit, miss, probs)
        assert model.one_way
        assert model.component_tables is None
        assert np.array_equal(model.pair_probs, probs)

    def test_apply_realizes_pair_probabilities(self):
        hit, miss = self._tables()
        probs = np.zeros((3, 3))
        probs[1, 2] = 0.7
        model = PairMixtureTableModel(hit, miss, probs)
        rng = np.random.default_rng(0)
        draws = 20_000
        new_u, new_v = model.apply(np.full(draws, 1), np.full(draws, 2),
                                   rng)
        assert np.array_equal(new_v, np.full(draws, 2))
        hit_rate = (new_u == 0).mean()
        assert abs(hit_rate - 0.7) < 0.02
        # probability-0 pair always takes the miss table
        new_u, _ = model.apply(np.full(100, 0), np.full(100, 1), rng)
        assert (new_u == 1).all()

    def test_apply_scalar_matches_law(self):
        hit, miss = self._tables()
        probs = np.full((3, 3), 0.3)
        model = PairMixtureTableModel(hit, miss, probs)
        rng = np.random.default_rng(7)
        outcomes = [model.apply_scalar(1, 0, rng) for _ in range(5000)]
        hits = sum(u == 0 for u, _ in outcomes)
        assert all(v == 0 for _, v in outcomes)
        assert abs(hits / 5000 - 0.3) < 0.03

    def test_validation(self):
        hit, miss = self._tables()
        with pytest.raises(InvalidParameterError):
            PairMixtureTableModel(hit, miss, np.full((3, 3), 1.5))
        with pytest.raises(InvalidParameterError):
            PairMixtureTableModel(hit, miss, np.zeros((2, 2)))


class TestIgtActionModel:
    def test_structure(self, small_setting):
        grid = GenerosityGrid(k=4, g_max=0.5)
        model = igt_action_model(grid, small_setting)
        assert model.n_states == 6
        assert model.one_way
        probs = model.pair_probs
        # GTFT initiators read AD partners as AD with certainty, AC
        # partners never.
        assert np.allclose(probs[:4, 5], 1.0)
        assert np.allclose(probs[:4, 4], 0.0)
        # GTFT-vs-GTFT misclassification decreases with generosity.
        assert probs[0, 0] > probs[0, 3]
        # AC/AD initiators never move.
        inert = model.inert_states
        assert inert is not None and inert[4] and inert[5]

    def test_classification_matches_rule(self, small_setting):
        grid = GenerosityGrid(k=3, g_max=0.5)
        model = igt_action_model(grid, small_setting)
        rng = np.random.default_rng(1)
        # AD partner (state k+1 = 4): initiator at index 2 decrements.
        assert model.apply_scalar(2, 4, rng) == (1, 4)
        # AC partner: increments (and saturates at k-1).
        assert model.apply_scalar(1, 3, rng) == (2, 3)
        assert model.apply_scalar(2, 3, rng) == (2, 3)
