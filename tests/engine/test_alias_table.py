"""AliasTable: construction exactness, law equality, stream contract.

The alias table replaced the cumulative-sum inversion sampler as the
production weighted draw (same one-uniform-per-draw stream consumption,
O(1) instead of O(log n) per draw).  Three guarantees are pinned here:

* **the build is exact** — for any weight vector, the law implied by the
  ``(prob, alias)`` pair reconstructs the normalized weights to float
  precision, including degenerate shapes (one dominant weight, near-zero
  weights, ``k = 2``, ``k = 1``, adversarial geometric chains that
  exercise the sequential fallback);
* **law equality with the inversion reference** — alias draws and
  :func:`~repro.engine.sampling.inversion_draw_block` draws from the same
  weights both clear a chi-square test against the exact law;
* **the stream contract** — a block of ``size`` draws consumes exactly
  ``size`` uniforms, and every weighted consumer (engine sampler and
  population scheduler) routes through one shared table code path, so a
  shared seed yields one bitstream everywhere.
"""

import numpy as np
import pytest

from repro.engine import AliasTable, WeightedPairSampler
from repro.engine.sampling import (
    inversion_draw_block,
    weight_cdf,
    weighted_draw_block,
)
from repro.population.scheduler import WeightedScheduler
from repro.utils import InvalidParameterError

# 99.9% chi-square critical values, keyed by degrees of freedom.
_CHI2_999 = {1: 10.828, 4: 18.467, 10: 29.588, 19: 43.820}


def implied_law(table: AliasTable) -> np.ndarray:
    """The outcome law the ``(prob, alias)`` pair actually encodes."""
    law = table.prob.copy()
    np.add.at(law, table.alias, 1.0 - table.prob)
    return law / table.k


def assert_exact(weights):
    table = AliasTable(weights)
    target = np.asarray(weights, dtype=float)
    target = target / target.sum()
    np.testing.assert_allclose(implied_law(table), target,
                               rtol=0, atol=1e-12)
    assert table.prob.min() >= 0.0 and table.prob.max() <= 1.0
    assert table.alias.min() >= 0 and table.alias.max() < table.k


class TestBuildExactness:
    def test_one_dominant_weight(self):
        weights = np.ones(1000)
        weights[337] = 1e6
        assert_exact(weights)

    def test_near_zero_weights(self):
        weights = np.full(64, 1e-14)
        weights[0] = 1.0
        assert_exact(weights)

    def test_k_equals_two(self):
        assert_exact([1.0, 1e9])
        assert_exact([3.0, 3.0])

    def test_k_equals_one(self):
        table = AliasTable([2.5])
        assert table.k == 1
        assert table.prob[0] == 1.0
        rng = np.random.default_rng(0)
        assert np.all(table.draw_block(rng, 100) == 0)

    def test_geometric_chain_exercises_fallback(self):
        """A geometric cascade keeps re-shrinking the donor set — the
        shape that forces many rounds (or the sequential finish)."""
        assert_exact(2.0 ** -np.arange(200, dtype=float))

    def test_random_weights(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            assert_exact(rng.random(10_000) + 1e-9)

    def test_powerlaw_weights(self):
        assert_exact((1.0 + np.arange(100_000)) ** -1.2)

    def test_equal_weights(self):
        table = AliasTable(np.ones(257))
        np.testing.assert_allclose(table.prob, 1.0)

    def test_rejects_bad_weights(self):
        for bad in ([], [1.0, -1.0], [1.0, np.inf], [[1.0, 2.0]]):
            with pytest.raises(InvalidParameterError):
                AliasTable(bad)


class TestLawEquality:
    def test_chi_square_vs_exact_law(self):
        weights = np.array([1.0, 5.0, 0.25, 2.0, 8.0, 1.5, 0.5, 3.0,
                            2.5, 0.75, 4.0])
        table = AliasTable(weights)
        rng = np.random.default_rng(11)
        draws = table.draw_block(rng, 200_000)
        expected = 200_000 * table.probabilities
        observed = np.bincount(draws, minlength=table.k)
        statistic = ((observed - expected) ** 2 / expected).sum()
        assert statistic < _CHI2_999[table.k - 1], statistic

    def test_chi_square_vs_inversion_reference(self):
        """Alias and inversion draws from the same weights realize the
        same law (the explicit law-equality bar from the migration)."""
        weights = (1.0 + np.arange(20)) ** -1.1
        table = AliasTable(weights)
        cdf = weight_cdf(weights)
        expected = 150_000 * table.probabilities
        for draws in (
            table.draw_block(np.random.default_rng(21), 150_000),
            inversion_draw_block(np.random.default_rng(22), cdf, 150_000),
        ):
            observed = np.bincount(draws, minlength=table.k)
            statistic = ((observed - expected) ** 2 / expected).sum()
            assert statistic < _CHI2_999[table.k - 1], statistic

    def test_bitstreams_differ_from_inversion(self):
        """Same uniforms, different values: the alias migration changed
        weighted trajectories (and the result cache was epoch-bumped)."""
        weights = (1.0 + np.arange(20)) ** -1.1
        table = AliasTable(weights)
        alias_draws = table.draw_block(np.random.default_rng(5), 1000)
        inversion_draws = inversion_draw_block(
            np.random.default_rng(5), weight_cdf(weights), 1000)
        assert np.any(alias_draws != inversion_draws)


class TestStreamContract:
    def test_one_uniform_per_draw(self):
        """A block of ``size`` draws advances the generator exactly as
        ``rng.random(size)`` does — the inversion sampler's consumption,
        preserved so surrounding draws stay aligned."""
        table = AliasTable([1.0, 3.0, 0.5, 2.0])
        rng_a = np.random.default_rng(123)
        rng_b = np.random.default_rng(123)
        table.draw_block(rng_a, 777)
        rng_b.random(777)
        np.testing.assert_array_equal(rng_a.integers(0, 1 << 62, size=8),
                                      rng_b.integers(0, 1 << 62, size=8))

    def test_sampler_and_scheduler_share_bitstream(self):
        """Regression: the engine sampler and the population scheduler
        must keep routing through one table code path — identical draws
        under a shared seed, not merely the same law."""
        weights = [1.0, 3.0, 0.5, 2.0, 4.0]
        sampler = WeightedPairSampler(weights, np.random.default_rng(9))
        scheduler = WeightedScheduler(weights, seed=9)
        np.testing.assert_array_equal(
            weighted_draw_block(sampler.rng, sampler.table, 4096),
            weighted_draw_block(scheduler.rng, scheduler._table, 4096))
        si, sj = sampler.pair_block(2048)
        ti, tj = scheduler.pair_block(2048)
        np.testing.assert_array_equal(si, ti)
        np.testing.assert_array_equal(sj, tj)
