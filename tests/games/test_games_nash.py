"""Tests for Nash/DE utilities on finite games."""

import numpy as np
import pytest

from repro.games.base import MatrixGame
from repro.games.donation import DonationGame
from repro.games.nash import (
    best_response_payoff,
    distributional_equilibrium_gap,
    is_epsilon_distributional_equilibrium,
    is_epsilon_nash,
    pure_nash_equilibria,
    symmetric_de_gap,
)
from repro.utils import InvalidParameterError


@pytest.fixture
def matching_pennies():
    A = np.array([[1.0, -1.0], [-1.0, 1.0]])
    return MatrixGame(A, -A)


@pytest.fixture
def coordination():
    A = np.array([[2.0, 0.0], [0.0, 1.0]])
    return MatrixGame(A, A.copy())


class TestBestResponse:
    def test_pure_opponent(self):
        A = np.array([[3.0, 0.0], [5.0, 1.0]])
        assert best_response_payoff(A, [1.0, 0.0]) == 5.0

    def test_mixed_opponent(self):
        A = np.array([[3.0, 0.0], [5.0, 1.0]])
        assert best_response_payoff(A, [0.5, 0.5]) == 3.0

    def test_dimension_mismatch(self):
        with pytest.raises(InvalidParameterError):
            best_response_payoff(np.eye(2), [0.5, 0.25, 0.25])


class TestPureNash:
    def test_prisoners_dilemma_dd(self):
        game = DonationGame(4.0, 1.0)
        assert pure_nash_equilibria(game) == [(1, 1)]

    def test_matching_pennies_none(self, matching_pennies):
        assert pure_nash_equilibria(matching_pennies) == []

    def test_coordination_two(self, coordination):
        assert pure_nash_equilibria(coordination) == [(0, 0), (1, 1)]


class TestEpsilonNash:
    def test_dd_is_exact_nash(self):
        game = DonationGame(4.0, 1.0)
        assert is_epsilon_nash(game, [0.0, 1.0], [0.0, 1.0], 0.0)

    def test_cc_not_nash(self):
        game = DonationGame(4.0, 1.0)
        assert not is_epsilon_nash(game, [1.0, 0.0], [1.0, 0.0], 0.5)

    def test_cc_is_epsilon_nash_for_large_epsilon(self):
        game = DonationGame(4.0, 1.0)
        # Deviation gain from C to D against C is exactly c = 1.
        assert is_epsilon_nash(game, [1.0, 0.0], [1.0, 0.0], 1.0)

    def test_matching_pennies_mixed(self, matching_pennies):
        half = [0.5, 0.5]
        assert is_epsilon_nash(matching_pennies, half, half, 0.0)


class TestDistributionalEquilibriumGap:
    def test_zero_at_symmetric_nash(self):
        game = DonationGame(4.0, 1.0)
        assert distributional_equilibrium_gap(game, [0.0, 1.0]) == \
            pytest.approx(0.0)

    def test_positive_off_equilibrium(self):
        game = DonationGame(4.0, 1.0)
        assert distributional_equilibrium_gap(game, [1.0, 0.0]) == \
            pytest.approx(1.0)  # the deviation gain c

    def test_uniform_pd_gap(self):
        game = DonationGame(4.0, 1.0)
        mu = [0.5, 0.5]
        # E[u1] = mu A mu = (3 - 1 + 4 + 0)/4 = 1.5; best response D: 2.0.
        assert distributional_equilibrium_gap(game, mu) == pytest.approx(0.5)

    def test_requires_square(self):
        game = MatrixGame(np.zeros((2, 3)), np.zeros((2, 3)))
        with pytest.raises(InvalidParameterError):
            distributional_equilibrium_gap(game, [0.5, 0.5])

    def test_size_mismatch(self):
        game = DonationGame(4.0, 1.0)
        with pytest.raises(InvalidParameterError):
            distributional_equilibrium_gap(game, [0.3, 0.3, 0.4])

    def test_symmetric_helper_agrees(self):
        game = DonationGame(4.0, 1.0)
        mu = [0.25, 0.75]
        assert symmetric_de_gap(game.row_payoffs, mu) == pytest.approx(
            distributional_equilibrium_gap(game, mu))

    def test_epsilon_de_check(self):
        game = DonationGame(4.0, 1.0)
        assert is_epsilon_distributional_equilibrium(game, [0.0, 1.0], 0.0)
        assert not is_epsilon_distributional_equilibrium(game, [1.0, 0.0], 0.5)

    def test_hawk_dove_mixed_equilibrium_gap_zero(self):
        from repro.core.general_games import (
            hawk_dove_equilibrium_mixture,
            hawk_dove_game,
        )
        game = hawk_dove_game(2.0, 4.0)
        mu = hawk_dove_equilibrium_mixture(2.0, 4.0)
        assert symmetric_de_gap(game.row_payoffs, mu) == pytest.approx(0.0)

    def test_definition_1_1_both_players(self, matching_pennies):
        """For asymmetric games the gap takes the max over both players."""
        gap = distributional_equilibrium_gap(matching_pennies, [0.5, 0.5])
        assert gap == pytest.approx(0.0)
        gap_biased = distributional_equilibrium_gap(matching_pennies,
                                                    [0.9, 0.1])
        assert gap_biased > 0.0
