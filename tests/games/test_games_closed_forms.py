"""Tests for the paper's closed-form payoffs and derivatives (Appendix B)."""

import numpy as np
import pytest

from repro.games.closed_forms import (
    expected_payoff_closed_form,
    payoff_derivative_in_g,
    payoff_gtft_vs_ac,
    payoff_gtft_vs_ad,
    payoff_gtft_vs_gtft,
    payoff_second_derivative_in_g,
    proposition_2_2_conditions,
    second_derivative_uniform_bound,
)
from repro.games.donation import DonationGame
from repro.games.expected_payoff import expected_payoff
from repro.games.strategies import (
    always_cooperate,
    always_defect,
    generous_tit_for_tat,
)
from repro.utils import InvalidParameterError

PARAMS = dict(b=4.0, c=1.0, delta=0.7, s1=0.5)
V = DonationGame(4.0, 1.0).reward_vector


class TestClosedFormsVsResolvent:
    """Eqs. 44-46 must equal q1(I - dM)^{-1}v for every argument."""

    @pytest.mark.parametrize("g", [0.0, 0.25, 0.5, 0.9, 1.0])
    def test_vs_ac(self, g):
        closed = payoff_gtft_vs_ac(g, **PARAMS)
        resolvent = expected_payoff(generous_tit_for_tat(g, 0.5),
                                    always_cooperate(), V, 0.7)
        assert closed == pytest.approx(resolvent, abs=1e-12)

    @pytest.mark.parametrize("g", [0.0, 0.25, 0.5, 0.9, 1.0])
    def test_vs_ad(self, g):
        closed = payoff_gtft_vs_ad(g, **PARAMS)
        resolvent = expected_payoff(generous_tit_for_tat(g, 0.5),
                                    always_defect(), V, 0.7)
        assert closed == pytest.approx(resolvent, abs=1e-12)

    @pytest.mark.parametrize("g,gp", [
        (0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (0.3, 0.7), (0.5, 0.5),
        (0.9, 0.1),
    ])
    def test_vs_gtft(self, g, gp):
        closed = payoff_gtft_vs_gtft(g, gp, **PARAMS)
        resolvent = expected_payoff(generous_tit_for_tat(g, 0.5),
                                    generous_tit_for_tat(gp, 0.5), V, 0.7)
        assert closed == pytest.approx(resolvent, abs=1e-10)

    @pytest.mark.parametrize("delta", [0.0, 0.3, 0.9])
    @pytest.mark.parametrize("s1", [0.0, 0.5, 1.0])
    def test_parameter_sweep(self, delta, s1):
        closed = payoff_gtft_vs_gtft(0.4, 0.6, 4.0, 1.0, delta, s1)
        resolvent = expected_payoff(generous_tit_for_tat(0.4, s1),
                                    generous_tit_for_tat(0.6, s1), V, delta)
        assert closed == pytest.approx(resolvent, abs=1e-10)


class TestClosedFormStructure:
    def test_ac_payoff_independent_of_g(self):
        values = {payoff_gtft_vs_ac(g, **PARAMS) for g in (0.0, 0.5, 1.0)}
        assert len(values) == 1

    def test_ad_payoff_linear_decreasing(self):
        f0 = payoff_gtft_vs_ad(0.0, **PARAMS)
        f1 = payoff_gtft_vs_ad(1.0, **PARAMS)
        fh = payoff_gtft_vs_ad(0.5, **PARAMS)
        assert f0 > fh > f1
        assert fh == pytest.approx((f0 + f1) / 2)

    def test_ad_slope(self):
        slope = (payoff_gtft_vs_ad(1.0, **PARAMS)
                 - payoff_gtft_vs_ad(0.0, **PARAMS))
        assert slope == pytest.approx(-PARAMS["c"] * PARAMS["delta"]
                                      / (1 - PARAMS["delta"]))

    def test_dispatch(self):
        assert expected_payoff_closed_form(0.3, "AC", **PARAMS) == \
            payoff_gtft_vs_ac(0.3, **PARAMS)
        assert expected_payoff_closed_form(0.3, "ad", **PARAMS) == \
            payoff_gtft_vs_ad(0.3, **PARAMS)
        assert expected_payoff_closed_form(0.3, 0.6, **PARAMS) == \
            payoff_gtft_vs_gtft(0.3, 0.6, **PARAMS)

    def test_dispatch_unknown_label(self):
        with pytest.raises(InvalidParameterError):
            expected_payoff_closed_form(0.3, "TFT", **PARAMS)

    def test_rejects_invalid_delta(self):
        with pytest.raises(InvalidParameterError):
            payoff_gtft_vs_ac(0.3, 4.0, 1.0, 1.0, 0.5)

    def test_rejects_b_below_c(self):
        with pytest.raises(InvalidParameterError):
            payoff_gtft_vs_ac(0.3, 1.0, 4.0, 0.5, 0.5)


class TestDerivatives:
    @pytest.mark.parametrize("g,gp", [(0.1, 0.2), (0.4, 0.6), (0.7, 0.3)])
    def test_first_derivative_vs_numeric(self, g, gp):
        h = 1e-6
        numeric = (payoff_gtft_vs_gtft(g + h, gp, **PARAMS)
                   - payoff_gtft_vs_gtft(g - h, gp, **PARAMS)) / (2 * h)
        analytic = payoff_derivative_in_g(g, gp, **PARAMS)
        assert analytic == pytest.approx(numeric, rel=1e-5)

    @pytest.mark.parametrize("g,gp", [(0.1, 0.2), (0.4, 0.6), (0.7, 0.3)])
    def test_second_derivative_vs_numeric(self, g, gp):
        h = 1e-4
        numeric = (payoff_gtft_vs_gtft(g + h, gp, **PARAMS)
                   - 2 * payoff_gtft_vs_gtft(g, gp, **PARAMS)
                   + payoff_gtft_vs_gtft(g - h, gp, **PARAMS)) / h**2
        analytic = payoff_second_derivative_in_g(g, gp, **PARAMS)
        assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-4)

    def test_derivative_positive_in_regime(self):
        """Proposition 2.2(i): strictly increasing within the regime."""
        for g in np.linspace(0, 0.6, 7):
            for gp in np.linspace(0, 0.6, 7):
                assert payoff_derivative_in_g(float(g), float(gp),
                                              **PARAMS) > 0

    def test_uniform_bound_dominates(self):
        bound = second_derivative_uniform_bound(g_max=0.6, **PARAMS)
        for g in np.linspace(0, 0.6, 7):
            for gp in np.linspace(0, 0.6, 7):
                assert abs(payoff_second_derivative_in_g(
                    float(g), float(gp), **PARAMS)) <= bound + 1e-12


class TestProposition22Conditions:
    def test_all_hold_in_regime(self):
        conditions = proposition_2_2_conditions(4.0, 1.0, 0.7, 0.5, 0.6)
        assert conditions.all_hold

    def test_delta_too_small(self):
        conditions = proposition_2_2_conditions(4.0, 1.0, 0.2, 0.5, 0.1)
        assert not conditions.delta_above_c_over_b
        assert not conditions.all_hold

    def test_g_max_too_large(self):
        # threshold = 1 - c/(delta b) = 1 - 1/2.8 ~ 0.643
        conditions = proposition_2_2_conditions(4.0, 1.0, 0.7, 0.5, 0.7)
        assert not conditions.g_max_below_threshold

    def test_s1_one_fails(self):
        conditions = proposition_2_2_conditions(4.0, 1.0, 0.7, 1.0, 0.3)
        assert not conditions.s1_below_one


class TestProposition22Statements:
    """The three statements, verified exactly via the closed forms."""

    def test_statement_i_strict_increase(self):
        for gpp in (0.0, 0.3, 0.6):
            assert payoff_gtft_vs_gtft(0.2, gpp, **PARAMS) \
                < payoff_gtft_vs_gtft(0.5, gpp, **PARAMS)

    def test_statement_ii_non_decrease_vs_ac(self):
        assert payoff_gtft_vs_ac(0.2, **PARAMS) \
            <= payoff_gtft_vs_ac(0.5, **PARAMS)

    def test_statement_iii_strict_decrease_vs_ad(self):
        assert payoff_gtft_vs_ad(0.2, **PARAMS) \
            > payoff_gtft_vs_ad(0.5, **PARAMS)
