"""Tests for memory-one and reactive strategies."""

import numpy as np
import pytest

from repro.games.base import Action
from repro.games.strategies import (
    MemoryOneStrategy,
    always_cooperate,
    always_defect,
    generous_tit_for_tat,
    grim_trigger,
    joint_initial_distribution,
    reactive,
    tit_for_tat,
    win_stay_lose_shift,
    with_execution_noise,
)
from repro.utils import InvalidParameterError

C, D = Action.COOPERATE, Action.DEFECT


class TestMemoryOneStrategy:
    def test_rejects_bad_probabilities(self):
        with pytest.raises(InvalidParameterError):
            MemoryOneStrategy(initial_coop_prob=1.5, coop_probs=(1, 1, 1, 1))
        with pytest.raises(InvalidParameterError):
            MemoryOneStrategy(initial_coop_prob=0.5,
                              coop_probs=(1, 1, -0.1, 1))

    def test_cooperation_probability_indexing(self):
        strategy = MemoryOneStrategy(initial_coop_prob=1.0,
                                     coop_probs=(0.1, 0.2, 0.3, 0.4))
        assert strategy.cooperation_probability(C, C) == 0.1
        assert strategy.cooperation_probability(C, D) == 0.2
        assert strategy.cooperation_probability(D, C) == 0.3
        assert strategy.cooperation_probability(D, D) == 0.4

    def test_is_reactive(self):
        assert reactive(0.8, 0.2, 0.5).is_reactive
        assert not win_stay_lose_shift().is_reactive

    def test_is_deterministic(self):
        assert always_cooperate().is_deterministic
        assert not generous_tit_for_tat(0.3, 0.5).is_deterministic

    def test_initial_action_deterministic(self, rng):
        assert always_defect().initial_action(rng) is D
        assert always_cooperate().initial_action(rng) is C

    def test_initial_action_frequency(self, rng):
        strategy = reactive(1.0, 0.0, 0.3)
        draws = [strategy.initial_action(rng) is C for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(0.3, abs=0.03)

    def test_next_action_frequency(self, rng):
        gtft = generous_tit_for_tat(0.25, 1.0)
        draws = [gtft.next_action(C, D, rng) is C for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(0.25, abs=0.03)


class TestNamedStrategies:
    def test_ac_always_cooperates(self, rng):
        ac = always_cooperate()
        for mine in (C, D):
            for theirs in (C, D):
                assert ac.next_action(mine, theirs, rng) is C

    def test_ad_always_defects(self, rng):
        ad = always_defect()
        for mine in (C, D):
            for theirs in (C, D):
                assert ad.next_action(mine, theirs, rng) is D

    def test_tft_repeats_opponent(self, rng):
        tft = tit_for_tat()
        assert tft.next_action(D, C, rng) is C
        assert tft.next_action(C, D, rng) is D

    def test_gtft_semantics(self):
        """GTFT(g): coop prob 1 after opponent C, g after opponent D."""
        gtft = generous_tit_for_tat(0.3, 0.5)
        assert gtft.cooperation_probability(C, C) == 1.0
        assert gtft.cooperation_probability(D, C) == 1.0
        assert gtft.cooperation_probability(C, D) == 0.3
        assert gtft.cooperation_probability(D, D) == 0.3

    def test_gtft_zero_is_tft(self):
        gtft = generous_tit_for_tat(0.0, 1.0)
        assert gtft.coop_probs == tit_for_tat().coop_probs

    def test_gtft_one_is_ac_after_first_round(self):
        gtft = generous_tit_for_tat(1.0, 1.0)
        assert gtft.coop_probs == (1.0, 1.0, 1.0, 1.0)

    def test_grim_only_cooperates_after_cc(self):
        grim = grim_trigger()
        assert grim.coop_probs == (1.0, 0.0, 0.0, 0.0)

    def test_wsls_pavlov(self):
        wsls = win_stay_lose_shift()
        assert wsls.cooperation_probability(C, C) == 1.0
        assert wsls.cooperation_probability(D, D) == 1.0
        assert wsls.cooperation_probability(C, D) == 0.0
        assert wsls.cooperation_probability(D, C) == 0.0

    def test_invalid_generosity_rejected(self):
        with pytest.raises(InvalidParameterError):
            generous_tit_for_tat(1.2, 0.5)


class TestExecutionNoise:
    def test_zero_noise_identity(self):
        tft = tit_for_tat()
        noisy = with_execution_noise(tft, 0.0)
        assert noisy.coop_probs == tft.coop_probs
        assert noisy.initial_coop_prob == tft.initial_coop_prob

    def test_flip_map(self):
        noisy = with_execution_noise(always_cooperate(), 0.1)
        assert all(p == pytest.approx(0.9) for p in noisy.coop_probs)
        assert noisy.initial_coop_prob == pytest.approx(0.9)

    def test_half_noise_randomizes(self):
        noisy = with_execution_noise(always_defect(), 0.5)
        assert all(p == pytest.approx(0.5) for p in noisy.coop_probs)

    def test_noise_composes(self):
        """Two layers of noise e compose to 2e(1-e) total flip mass."""
        once = with_execution_noise(always_cooperate(), 0.1)
        twice = with_execution_noise(once, 0.1)
        expected = (1 - 0.1) * 0.9 + 0.1 * (1 - 0.9)
        assert twice.coop_probs[0] == pytest.approx(expected)


class TestJointInitialDistribution:
    def test_matches_eq_34(self):
        """q1 for (GTFT, AC) is [s1, 0, 1-s1, 0]."""
        q1 = joint_initial_distribution(generous_tit_for_tat(0.3, 0.4),
                                        always_cooperate())
        assert np.allclose(q1, [0.4, 0.0, 0.6, 0.0])

    def test_matches_eq_37(self):
        """q1 for (GTFT, AD) is [0, s1, 0, 1-s1]."""
        q1 = joint_initial_distribution(generous_tit_for_tat(0.3, 0.4),
                                        always_defect())
        assert np.allclose(q1, [0.0, 0.4, 0.0, 0.6])

    def test_matches_eq_40(self):
        """q1 for (GTFT, GTFT) is the product distribution."""
        s1 = 0.3
        q1 = joint_initial_distribution(generous_tit_for_tat(0.1, s1),
                                        generous_tit_for_tat(0.9, s1))
        expected = [s1 * s1, s1 * (1 - s1), (1 - s1) * s1, (1 - s1) ** 2]
        assert np.allclose(q1, expected)

    def test_sums_to_one(self):
        q1 = joint_initial_distribution(reactive(1, 0, 0.7),
                                        reactive(0.5, 0.5, 0.2))
        assert q1.sum() == pytest.approx(1.0)
