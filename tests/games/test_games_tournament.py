"""Tests for the round-robin tournament engine."""

import numpy as np
import pytest

from repro.games.donation import DonationGame
from repro.games.strategies import (
    always_cooperate,
    always_defect,
    generous_tit_for_tat,
    grim_trigger,
    tit_for_tat,
    win_stay_lose_shift,
)
from repro.games.tournament import Tournament
from repro.utils import InvalidParameterError


@pytest.fixture
def game():
    return DonationGame(b=4.0, c=1.0)


@pytest.fixture
def axelrod_field(game):
    entrants = [always_cooperate(), always_defect(), tit_for_tat(),
                generous_tit_for_tat(0.3, 1.0), grim_trigger(),
                win_stay_lose_shift()]
    return Tournament(entrants, game, delta=0.9)


class TestConstruction:
    def test_needs_two_entrants(self, game):
        with pytest.raises(InvalidParameterError):
            Tournament([always_defect()], game, 0.9)

    def test_rejects_delta_one(self, game):
        with pytest.raises(InvalidParameterError):
            Tournament([always_defect(), always_cooperate()], game, 1.0)

    def test_name_mismatch(self, game):
        with pytest.raises(InvalidParameterError):
            Tournament([always_defect(), always_cooperate()], game, 0.9,
                       names=["only-one"])

    def test_default_names(self, axelrod_field):
        assert axelrod_field.names[0] == "AC"
        assert axelrod_field.names[1] == "AD"


class TestPayoffMatrix:
    def test_known_entries(self, axelrod_field, game):
        matrix = axelrod_field.payoff_matrix()
        delta = 0.9
        # AC vs AC: full cooperation.
        assert matrix[0, 0] == pytest.approx((game.b - game.c) / (1 - delta))
        # AD vs AD: zero.
        assert matrix[1, 1] == pytest.approx(0.0)
        # AD vs AC: temptation every round.
        assert matrix[1, 0] == pytest.approx(game.b / (1 - delta))

    def test_monte_carlo_close_to_exact(self, axelrod_field, rng):
        exact = axelrod_field.payoff_matrix()
        sampled = axelrod_field.payoff_matrix(method="monte_carlo",
                                              n_games=1500, seed=rng)
        assert np.abs(exact - sampled).max() < 2.5

    def test_unknown_method(self, axelrod_field):
        with pytest.raises(InvalidParameterError):
            axelrod_field.payoff_matrix(method="oracle")


class TestResults:
    def test_reciprocators_beat_ad(self, axelrod_field):
        """The classic Axelrod finding: reciprocity tops the table and
        unconditional defection finishes last."""
        result = axelrod_field.run()
        ranking = result.ranking()
        assert ranking[-1][0] == "AD"
        assert result.winner() in ("TFT", "GRIM", "GTFT(g=0.3)", "WSLS")

    def test_scores_are_row_means(self, axelrod_field):
        result = axelrod_field.run()
        assert np.allclose(result.scores, result.payoff_matrix.mean(axis=1))

    def test_exclude_self_play(self, game):
        tournament = Tournament([always_cooperate(), always_defect()], game,
                                0.5, include_self_play=False)
        result = tournament.run()
        matrix = result.payoff_matrix
        assert result.scores[0] == pytest.approx(matrix[0, 1])
        assert result.scores[1] == pytest.approx(matrix[1, 0])

    def test_ranking_sorted(self, axelrod_field):
        ranking = axelrod_field.run().ranking()
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)


class TestEquilibriumAnalysis:
    def test_ad_is_nash_and_ess_vs_ac(self, game):
        tournament = Tournament([always_cooperate(), always_defect()], game,
                                0.9)
        assert tournament.is_symmetric_nash(1)
        assert tournament.is_evolutionarily_stable(1)
        assert not tournament.is_symmetric_nash(0)

    def test_ac_invadable_by_ad(self, game):
        tournament = Tournament([always_cooperate(), always_defect()], game,
                                0.9)
        assert not tournament.is_evolutionarily_stable(0)

    def test_gtft_nash_against_ad_for_high_delta(self, game):
        """With delta = 0.9 > c/b, GTFT(small g) resists AD invasion:
        u(AD, GTFT) < u(GTFT, GTFT)."""
        gtft = generous_tit_for_tat(0.1, 1.0)
        tournament = Tournament([gtft, always_defect()], game, 0.9)
        matrix = tournament.payoff_matrix()
        assert matrix[1, 0] < matrix[0, 0]
        assert tournament.is_symmetric_nash(0)

    def test_best_responses_to(self, game):
        tournament = Tournament([always_cooperate(), always_defect()], game,
                                0.9)
        # Best response to AC is AD (temptation forever).
        assert tournament.best_responses_to(0) == [1]
