"""Tests for the resolvent expected-payoff machinery (Appendix B)."""

import numpy as np
import pytest

from repro.games.donation import DonationGame
from repro.games.expected_payoff import (
    discounted_state_occupancy,
    expected_game_length,
    expected_payoff,
    expected_payoff_pair,
    joint_action_chain,
)
from repro.games.strategies import (
    always_cooperate,
    always_defect,
    generous_tit_for_tat,
    tit_for_tat,
    win_stay_lose_shift,
)
from repro.utils import InvalidParameterError


@pytest.fixture
def game():
    return DonationGame(b=4.0, c=1.0)


class TestJointActionChain:
    def test_rows_stochastic(self):
        M = joint_action_chain(generous_tit_for_tat(0.3, 0.5),
                               win_stay_lose_shift())
        assert np.allclose(M.sum(axis=1), 1.0)

    def test_matches_paper_eq_35(self):
        """M for (GTFT(g), AC) — paper eq. 35."""
        g = 0.4
        M = joint_action_chain(generous_tit_for_tat(g, 0.5),
                               always_cooperate())
        expected = np.array([
            [1, 0, 0, 0],
            [g, 0, 1 - g, 0],
            [1, 0, 0, 0],
            [g, 0, 1 - g, 0],
        ])
        assert np.allclose(M, expected)

    def test_matches_paper_eq_38(self):
        """M for (GTFT(g), AD) — paper eq. 38."""
        g = 0.4
        M = joint_action_chain(generous_tit_for_tat(g, 0.5), always_defect())
        expected = np.array([
            [0, 1, 0, 0],
            [0, g, 0, 1 - g],
            [0, 1, 0, 0],
            [0, g, 0, 1 - g],
        ])
        assert np.allclose(M, expected)

    def test_matches_paper_eq_41(self):
        """M for (GTFT(g), GTFT(g')) — paper eq. 41."""
        g, gp = 0.3, 0.6
        M = joint_action_chain(generous_tit_for_tat(g, 0.5),
                               generous_tit_for_tat(gp, 0.5))
        expected = np.array([
            [1, 0, 0, 0],
            [g, 0, 1 - g, 0],
            [gp, 1 - gp, 0, 0],
            [g * gp, (1 - gp) * g, gp * (1 - g), (1 - g) * (1 - gp)],
        ])
        assert np.allclose(M, expected)


class TestExpectedPayoff:
    def test_ad_vs_ad_zero(self, game):
        assert expected_payoff(always_defect(), always_defect(),
                               game.reward_vector, 0.9) == pytest.approx(0.0)

    def test_ac_vs_ac_full_cooperation(self, game):
        delta = 0.8
        expected = (game.b - game.c) / (1 - delta)
        assert expected_payoff(always_cooperate(), always_cooperate(),
                               game.reward_vector, delta) == \
            pytest.approx(expected)

    def test_ac_vs_ad_sucker(self, game):
        delta = 0.8
        assert expected_payoff(always_cooperate(), always_defect(),
                               game.reward_vector, delta) == \
            pytest.approx(-game.c / (1 - delta))

    def test_delta_zero_single_round(self, game):
        value = expected_payoff(always_defect(), always_cooperate(),
                                game.reward_vector, 0.0)
        assert value == pytest.approx(game.b)

    def test_delta_one_rejected(self, game):
        with pytest.raises(InvalidParameterError):
            expected_payoff(always_defect(), always_cooperate(),
                            game.reward_vector, 1.0)

    def test_bad_reward_vector_shape(self, game):
        with pytest.raises(InvalidParameterError):
            expected_payoff(always_defect(), always_cooperate(),
                            [1.0, 2.0], 0.5)

    def test_tft_vs_tft_cooperates_forever(self, game):
        delta = 0.7
        value = expected_payoff(tit_for_tat(), tit_for_tat(),
                                game.reward_vector, delta)
        assert value == pytest.approx((game.b - game.c) / (1 - delta))

    def test_wsls_vs_wsls_cooperates_forever(self, game):
        delta = 0.7
        value = expected_payoff(win_stay_lose_shift(), win_stay_lose_shift(),
                                game.reward_vector, delta)
        assert value == pytest.approx((game.b - game.c) / (1 - delta))

    def test_pair_symmetry(self, game):
        """f(S2, S1) via the pair equals swapping the strategy order."""
        first = generous_tit_for_tat(0.2, 0.5)
        second = generous_tit_for_tat(0.7, 0.5)
        f12, f21 = expected_payoff_pair(first, second, game, 0.7)
        g21, g12 = expected_payoff_pair(second, first, game, 0.7)
        assert f12 == pytest.approx(g12)
        assert f21 == pytest.approx(g21)

    def test_symmetric_pair_equal_payoffs(self, game):
        strategy = generous_tit_for_tat(0.4, 0.5)
        f1, f2 = expected_payoff_pair(strategy, strategy, game, 0.6)
        assert f1 == pytest.approx(f2)


class TestOccupancyAndLength:
    def test_expected_game_length(self):
        assert expected_game_length(0.75) == pytest.approx(4.0)
        assert expected_game_length(0.0) == 1.0

    def test_length_rejects_bad_delta(self):
        with pytest.raises(InvalidParameterError):
            expected_game_length(1.0)

    def test_occupancy_sums_to_length(self):
        occupancy = discounted_state_occupancy(
            generous_tit_for_tat(0.3, 0.5), always_defect(), 0.8)
        assert occupancy.sum() == pytest.approx(expected_game_length(0.8))

    def test_occupancy_nonnegative(self):
        occupancy = discounted_state_occupancy(
            tit_for_tat(0.5), win_stay_lose_shift(), 0.9)
        assert (occupancy >= -1e-12).all()

    def test_payoff_is_occupancy_dot_rewards(self, game):
        first = generous_tit_for_tat(0.25, 0.5)
        second = always_defect()
        occupancy = discounted_state_occupancy(first, second, 0.8)
        direct = expected_payoff(first, second, game.reward_vector, 0.8)
        assert occupancy @ game.reward_vector == pytest.approx(direct)
