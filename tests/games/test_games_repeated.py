"""Tests for the Monte Carlo repeated-game engine."""

import numpy as np
import pytest

from repro.games.base import Action
from repro.games.donation import DonationGame
from repro.games.expected_payoff import expected_payoff
from repro.games.repeated import GameRecord, RepeatedGameEngine, monte_carlo_payoff
from repro.games.strategies import (
    always_cooperate,
    always_defect,
    generous_tit_for_tat,
    tit_for_tat,
)
from repro.utils import InvalidParameterError


@pytest.fixture
def game():
    return DonationGame(b=4.0, c=1.0)


class TestEngineBasics:
    def test_rejects_delta_one(self, game):
        with pytest.raises(InvalidParameterError):
            RepeatedGameEngine(game, 1.0)

    def test_delta_zero_single_round(self, game, rng):
        engine = RepeatedGameEngine(game, 0.0)
        record = engine.play(always_defect(), always_cooperate(), seed=rng)
        assert record.rounds == 1
        assert record.first_payoff == 4.0
        assert record.second_payoff == -1.0

    def test_max_rounds_cap(self, game, rng):
        engine = RepeatedGameEngine(game, 0.999999, max_rounds=10)
        record = engine.play(always_cooperate(), always_cooperate(), seed=rng)
        assert record.rounds == 10

    def test_reproducible(self, game):
        engine = RepeatedGameEngine(game, 0.8)
        r1 = engine.play(tit_for_tat(), always_defect(), seed=42)
        r2 = engine.play(tit_for_tat(), always_defect(), seed=42)
        assert r1.first_payoff == r2.first_payoff
        assert r1.first_actions == r2.first_actions

    def test_payoffs_are_symmetric_function_of_actions(self, game, rng):
        engine = RepeatedGameEngine(game, 0.7)
        record = engine.play(generous_tit_for_tat(0.3, 0.5),
                             always_defect(), seed=rng)
        recomputed_first = sum(
            game.round_payoff(a1, a2)
            for a1, a2 in zip(record.first_actions, record.second_actions))
        assert record.first_payoff == pytest.approx(recomputed_first)

    def test_mean_rounds_geometric(self, game, rng):
        engine = RepeatedGameEngine(game, 0.75)
        rounds = [engine.play(always_defect(), always_defect(),
                              seed=rng).rounds for _ in range(3000)]
        assert np.mean(rounds) == pytest.approx(4.0, rel=0.07)


class TestActionTranscripts:
    def test_ad_always_defects(self, game, rng):
        engine = RepeatedGameEngine(game, 0.9)
        record = engine.play(always_cooperate(), always_defect(), seed=rng)
        assert record.opponent_always_defected()

    def test_ac_never_classified_ad(self, game, rng):
        engine = RepeatedGameEngine(game, 0.9)
        record = engine.play(always_defect(), always_cooperate(), seed=rng)
        assert not record.opponent_always_defected()

    def test_tft_vs_tft_all_cooperate(self, game, rng):
        engine = RepeatedGameEngine(game, 0.9)
        record = engine.play(tit_for_tat(), tit_for_tat(), seed=rng)
        assert all(a is Action.COOPERATE for a in record.first_actions)
        assert all(a is Action.COOPERATE for a in record.second_actions)

    def test_record_actions_false_skips_storage(self, game, rng):
        engine = RepeatedGameEngine(game, 0.7)
        record = engine.play(tit_for_tat(), tit_for_tat(), seed=rng,
                             record_actions=False)
        assert record.rounds == 0  # actions not stored
        assert record.first_payoff != 0.0


class TestMonteCarloPayoff:
    def test_agrees_with_resolvent(self, game, rng):
        first = generous_tit_for_tat(0.4, 0.5)
        second = always_defect()
        mc, _ = monte_carlo_payoff(first, second, game, 0.7, 5000, seed=rng)
        exact = expected_payoff(first, second, game.reward_vector, 0.7)
        assert mc == pytest.approx(exact, abs=0.15)

    def test_both_players_estimated(self, game, rng):
        mc1, mc2 = monte_carlo_payoff(always_defect(), always_cooperate(),
                                      game, 0.5, 2000, seed=rng)
        assert mc1 == pytest.approx(game.b / 0.5, rel=0.1)
        assert mc2 == pytest.approx(-game.c / 0.5, rel=0.15)

    def test_noise_reduces_tft_payoff(self, game, rng):
        clean, _ = monte_carlo_payoff(tit_for_tat(), tit_for_tat(), game,
                                      0.9, 2000, seed=rng)
        noisy, _ = monte_carlo_payoff(tit_for_tat(), tit_for_tat(), game,
                                      0.9, 2000, seed=rng, noise=0.1)
        assert noisy < clean

    def test_play_many_shape(self, game, rng):
        engine = RepeatedGameEngine(game, 0.5)
        payoffs = engine.play_many(tit_for_tat(), always_defect(), 50,
                                   seed=rng)
        assert payoffs.shape == (50, 2)


class TestGameRecord:
    def test_rounds_property(self):
        record = GameRecord(first_payoff=1.0, second_payoff=2.0,
                            first_actions=[Action.COOPERATE] * 3,
                            second_actions=[Action.DEFECT] * 3)
        assert record.rounds == 3

    def test_opponent_always_defected_empty_is_true(self):
        record = GameRecord(first_payoff=0.0, second_payoff=0.0)
        assert record.opponent_always_defected()
