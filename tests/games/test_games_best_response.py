"""Tests for exact memory-one best responses."""

import numpy as np
import pytest

from repro.core.equilibrium import de_gap, mean_stationary_mu
from repro.core.igt import GenerosityGrid
from repro.core.regimes import default_theorem_2_9_setting
from repro.games.best_response import (
    best_memory_one_deviation,
    best_memory_one_response,
    deterministic_memory_one_strategies,
    memory_one_de_gap,
)
from repro.games.donation import DonationGame
from repro.games.expected_payoff import expected_payoff
from repro.games.strategies import (
    always_cooperate,
    always_defect,
    generous_tit_for_tat,
    grim_trigger,
    reactive,
    tit_for_tat,
)
from repro.utils import InvalidParameterError

GAME = DonationGame(4.0, 1.0)
V = GAME.reward_vector


class TestEnumeration:
    def test_thirty_two_strategies(self):
        strategies = deterministic_memory_one_strategies()
        assert len(strategies) == 32

    def test_all_deterministic_and_distinct(self):
        strategies = deterministic_memory_one_strategies()
        signatures = {(s.initial_coop_prob, s.coop_probs)
                      for s in strategies}
        assert len(signatures) == 32
        assert all(s.is_deterministic for s in strategies)


class TestBestResponse:
    def test_vs_ac_is_permanent_defection(self):
        br = best_memory_one_response(always_cooperate(), V, 0.8)
        assert br.value == pytest.approx(GAME.b / 0.2)
        assert br.strategy.initial_coop_prob == 0.0

    def test_vs_ad_is_zero(self):
        br = best_memory_one_response(always_defect(), V, 0.8)
        assert br.value == pytest.approx(0.0)

    def test_vs_grim_high_delta_cooperates(self):
        br = best_memory_one_response(grim_trigger(), V, 0.9)
        assert br.value == pytest.approx((GAME.b - GAME.c) / 0.1)
        assert br.strategy.initial_coop_prob == 1.0

    def test_vs_grim_low_delta_defects(self):
        """Below delta = c/b one-shot exploitation beats cooperation."""
        br = best_memory_one_response(grim_trigger(), V, 0.1)
        assert br.strategy.initial_coop_prob == 0.0
        assert br.value > (GAME.b - GAME.c) / 0.9

    def test_vs_tft_threshold(self):
        high = best_memory_one_response(tit_for_tat(), V, 0.9)
        assert high.value == pytest.approx(3.0 / 0.1)
        low = best_memory_one_response(tit_for_tat(), V, 0.05)
        assert low.strategy.initial_coop_prob == 0.0

    def test_dominates_random_strategies(self, rng):
        """MDP optimality: no stochastic memory-one strategy does better."""
        opponent = generous_tit_for_tat(0.3, 0.5)
        br = best_memory_one_response(opponent, V, 0.7)
        for _ in range(100):
            challenger = reactive(float(rng.random()), float(rng.random()),
                                  float(rng.random()))
            assert expected_payoff(challenger, opponent, V, 0.7) \
                <= br.value + 1e-9

    def test_rejects_bad_reward_vector(self):
        with pytest.raises(InvalidParameterError):
            best_memory_one_response(always_defect(), [1.0, 2.0], 0.5)


class TestPopulationDeviation:
    @pytest.fixture
    def instance(self):
        setting, shares, g_max = default_theorem_2_9_setting()
        grid = GenerosityGrid(k=4, g_max=g_max)
        mu = mean_stationary_mu(4, beta=shares.beta)
        return setting, shares, grid, mu

    def test_gap_dominates_grid_gap(self, instance):
        setting, shares, grid, mu = instance
        wide = memory_one_de_gap(mu, grid, setting, shares)
        narrow = de_gap(mu, grid, setting, shares)
        assert wide >= narrow - 1e-12

    def test_pure_cooperator_wins_in_canonical_setting(self, instance):
        """The s1 insight: the best memory-one deviation opens with C and
        cooperates unconditionally (harvesting the opening rounds the
        s1 = 0.5 incumbents waste)."""
        setting, shares, grid, mu = instance
        best = best_memory_one_deviation(mu, grid, setting, shares)
        assert best.strategy.initial_coop_prob == 1.0
        assert best.strategy.coop_probs == (1.0, 1.0, 1.0, 1.0)

    def test_deviation_value_breakdown(self, instance):
        """The winner's value is the µ̂-weighted combination of its exact
        per-opponent payoffs."""
        setting, shares, grid, mu = instance
        best = best_memory_one_deviation(mu, grid, setting, shares)
        opponents = [generous_tit_for_tat(float(g), setting.s1)
                     for g in grid.values]
        opponents += [always_cooperate(), always_defect()]
        weights = np.concatenate([shares.gamma * mu,
                                  [shares.alpha, shares.beta]])
        recomputed = sum(
            w * expected_payoff(best.strategy, opp,
                                setting.game.reward_vector, setting.delta)
            for w, opp in zip(weights, opponents))
        assert best.value == pytest.approx(recomputed)

    def test_mu_length_validated(self, instance):
        setting, shares, grid, _ = instance
        with pytest.raises(InvalidParameterError):
            best_memory_one_deviation([0.5, 0.5], grid, setting, shares)

    def test_s1_one_shrinks_the_family_gap(self):
        """With s1 = 1 incumbents open cooperatively, removing the
        opening-round arbitrage: the widened gap gets (much) closer to the
        grid gap."""
        from repro.core.equilibrium import RDSetting
        from repro.core.population_igt import PopulationShares

        shares = PopulationShares(alpha=0.2, beta=0.05, gamma=0.75)
        grid = GenerosityGrid(k=4, g_max=0.4)
        mu = mean_stationary_mu(4, beta=shares.beta)
        lazy = RDSetting(b=20.0, c=1.0, delta=0.8, s1=0.5)
        eager = RDSetting(b=20.0, c=1.0, delta=0.8, s1=1.0)
        gap_lazy = memory_one_de_gap(mu, grid, lazy, shares)
        gap_eager = memory_one_de_gap(mu, grid, eager, shares)
        assert gap_eager < gap_lazy / 2
