"""Tests for cooperation-rate analysis."""

import pytest

from repro.games.cooperation import (
    discounted_cooperation_rates,
    limit_cooperation_rates,
    mutual_cooperation_index,
)
from repro.games.strategies import (
    always_cooperate,
    always_defect,
    generous_tit_for_tat,
    reactive,
    tit_for_tat,
)
from repro.utils import InvalidParameterError


class TestDiscountedRates:
    def test_ac_vs_ad(self):
        r1, r2 = discounted_cooperation_rates(always_cooperate(),
                                              always_defect(), 0.8)
        assert r1 == pytest.approx(1.0)
        assert r2 == pytest.approx(0.0)

    def test_gtft_vs_ad_rate_approaches_g(self):
        """Against AD, GTFT cooperates w.p. s1 in round 1 and g after."""
        g, s1, delta = 0.3, 0.5, 0.9
        r1, _ = discounted_cooperation_rates(
            generous_tit_for_tat(g, s1), always_defect(), delta)
        # Exact: (s1 + g * delta/(1-delta)) / (1/(1-delta)).
        expected = (s1 + g * delta / (1 - delta)) * (1 - delta)
        assert r1 == pytest.approx(expected)

    def test_symmetric_pair_equal_rates(self):
        strategy = generous_tit_for_tat(0.4, 0.5)
        r1, r2 = discounted_cooperation_rates(strategy, strategy, 0.7)
        assert r1 == pytest.approx(r2)

    def test_rates_in_unit_interval(self):
        for delta in (0.0, 0.5, 0.9):
            r1, r2 = discounted_cooperation_rates(
                reactive(0.7, 0.2, 0.4), reactive(0.3, 0.8, 0.6), delta)
            assert 0.0 <= r1 <= 1.0
            assert 0.0 <= r2 <= 1.0


class TestLimitRates:
    def test_gtft_pair_fully_cooperative(self):
        gtft = generous_tit_for_tat(0.2, 0.5)
        r1, r2 = limit_cooperation_rates(gtft, gtft)
        assert r1 == pytest.approx(1.0)
        assert r2 == pytest.approx(1.0)

    def test_gtft_vs_ad_limit_is_g(self):
        g = 0.35
        r1, r2 = limit_cooperation_rates(generous_tit_for_tat(g, 0.5),
                                         always_defect())
        assert r1 == pytest.approx(g)
        assert r2 == pytest.approx(0.0)

    def test_degenerate_pair_raises(self):
        with pytest.raises(InvalidParameterError):
            limit_cooperation_rates(tit_for_tat(), tit_for_tat())

    def test_discounted_approaches_limit(self):
        """As delta -> 1, discounted rates converge to the limit rates."""
        first = reactive(0.8, 0.3, 0.5)
        second = reactive(0.4, 0.6, 0.5)
        limit_r1, _ = limit_cooperation_rates(first, second)
        d_r1, _ = discounted_cooperation_rates(first, second, 0.999)
        assert d_r1 == pytest.approx(limit_r1, abs=0.01)


class TestMutualCooperation:
    def test_ac_pair_always_cc(self):
        assert mutual_cooperation_index(always_cooperate(),
                                        always_cooperate(), 0.7) == \
            pytest.approx(1.0)

    def test_ad_pair_never_cc(self):
        assert mutual_cooperation_index(always_defect(), always_defect(),
                                        0.7) == pytest.approx(0.0)

    def test_noise_lowers_mutual_cooperation(self):
        from repro.games.strategies import with_execution_noise

        clean = mutual_cooperation_index(tit_for_tat(), tit_for_tat(), 0.9)
        noisy_strategy = with_execution_noise(tit_for_tat(), 0.1)
        noisy = mutual_cooperation_index(noisy_strategy, noisy_strategy, 0.9)
        assert noisy < clean

    def test_generosity_restores_mutual_cooperation(self):
        """Under noise, GTFT holds more CC mass than TFT — the quantified
        version of the paper's Section 1.1.2 robustness discussion."""
        from repro.games.strategies import with_execution_noise

        noise, delta = 0.05, 0.9
        tft = with_execution_noise(tit_for_tat(), noise)
        gtft = with_execution_noise(generous_tit_for_tat(0.3, 1.0), noise)
        assert mutual_cooperation_index(gtft, gtft, delta) > \
            mutual_cooperation_index(tft, tft, delta)
