"""Tests for the frequency-dependent Moran process."""

import numpy as np
import pytest

from repro.games.base import MatrixGame
from repro.games.donation import DonationGame
from repro.games.moran import (
    MoranProcess,
    interior_equilibrium,
    one_third_rule_prediction,
)
from repro.utils import InvalidParameterError


def constant_fitness_game(r: float) -> MatrixGame:
    """A game where A always earns r and B always earns 1."""
    return MatrixGame(np.array([[r, r], [1.0, 1.0]]))


def coordination_game(a=6.0, b=2.0, c=3.0, d=3.0) -> MatrixGame:
    return MatrixGame(np.array([[a, b], [c, d]]))


class TestConstruction:
    def test_rejects_asymmetric(self):
        game = MatrixGame(np.eye(2), np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(InvalidParameterError):
            MoranProcess(game, n=10)

    def test_rejects_3x3(self):
        game = MatrixGame(np.eye(3))
        with pytest.raises(InvalidParameterError):
            MoranProcess(game, n=10)

    def test_rejects_overstrong_selection(self):
        game = MatrixGame(np.array([[-10.0, -10.0], [0.0, 0.0]]))
        with pytest.raises(InvalidParameterError):
            MoranProcess(game, n=10, selection_intensity=0.5)


class TestPayoffs:
    def test_self_exclusion(self):
        game = coordination_game()
        process = MoranProcess(game, n=4)
        f, g = process.average_payoffs(2)
        # A meets 1 A and 2 B: (6*1 + 2*2)/3; B meets 2 A and 1 B.
        assert f == pytest.approx((6 + 4) / 3)
        assert g == pytest.approx((6 + 3) / 3)

    def test_boundary_states_rejected(self):
        process = MoranProcess(coordination_game(), n=5)
        with pytest.raises(InvalidParameterError):
            process.average_payoffs(0)
        with pytest.raises(InvalidParameterError):
            process.average_payoffs(5)

    def test_transitions_absorbing_at_ends(self):
        process = MoranProcess(coordination_game(), n=5)
        assert process.transition_probabilities(0) == (0.0, 0.0)
        assert process.transition_probabilities(5) == (0.0, 0.0)

    def test_transition_probabilities_valid(self):
        process = MoranProcess(coordination_game(), n=8)
        for i in range(1, 8):
            t_plus, t_minus = process.transition_probabilities(i)
            assert t_plus > 0 and t_minus > 0
            assert t_plus + t_minus <= 1.0 + 1e-12


class TestFixationProbability:
    def test_neutral_drift(self):
        process = MoranProcess(coordination_game(), n=20,
                               selection_intensity=0.0)
        for start in (1, 5, 13):
            assert process.fixation_probability(start) == \
                pytest.approx(start / 20)

    def test_boundaries(self):
        process = MoranProcess(coordination_game(), n=10)
        assert process.fixation_probability(0) == 0.0
        assert process.fixation_probability(10) == 1.0

    def test_constant_fitness_classic_formula(self):
        """rho = (1 - 1/r) / (1 - 1/r^n) for constant fitness ratio r."""
        r_payoff, w, n = 2.0, 0.5, 12
        process = MoranProcess(constant_fitness_game(r_payoff), n=n,
                               selection_intensity=w)
        r = (1 - w + w * r_payoff) / (1 - w + w * 1.0)
        expected = (1 - 1 / r) / (1 - 1 / r**n)
        assert process.fixation_probability(1) == pytest.approx(expected)

    def test_advantageous_beats_neutral(self):
        process = MoranProcess(constant_fitness_game(2.0), n=15,
                               selection_intensity=0.3)
        assert process.is_favored_by_selection(1)

    def test_disadvantageous_below_neutral(self):
        process = MoranProcess(constant_fitness_game(0.5), n=15,
                               selection_intensity=0.3)
        assert not process.is_favored_by_selection(1)

    def test_monotone_in_start(self):
        process = MoranProcess(coordination_game(), n=12,
                               selection_intensity=0.2)
        probs = [process.fixation_probability(s) for s in range(13)]
        assert all(probs[i] < probs[i + 1] for i in range(12))

    def test_matches_chain_absorption(self):
        """Fixation formula equals the absorbing chain's hit probability."""
        process = MoranProcess(coordination_game(), n=8,
                               selection_intensity=0.3)
        chain = process.chain()
        # Absorption probabilities at state n solve h = P h with h(n)=1,
        # h(0)=0.
        P = chain.dense()
        interior = list(range(1, 8))
        A = np.eye(7) - P[np.ix_(interior, interior)]
        rhs = P[np.ix_(interior, [8])].ravel()
        h = np.linalg.solve(A, rhs)
        for idx, i in enumerate(interior):
            assert process.fixation_probability(i) == pytest.approx(h[idx])

    def test_simulation_agrees(self, rng):
        process = MoranProcess(constant_fitness_game(1.5), n=10,
                               selection_intensity=0.5)
        wins = sum(process.simulate_fixation(3, seed=rng)[0]
                   for _ in range(800))
        assert wins / 800 == pytest.approx(process.fixation_probability(3),
                                           abs=0.06)

    def test_donation_game_defection_favored(self):
        """One-shot donation game: AD invades AC, AC cannot invade AD."""
        game = DonationGame(4.0, 1.0)
        # Strategy 0 = C, 1 = D. Invading D among C's:
        flipped = MatrixGame(game.row_payoffs[::-1, ::-1].copy())
        d_invades = MoranProcess(flipped, n=20, selection_intensity=0.2)
        assert d_invades.is_favored_by_selection(1)
        c_invades = MoranProcess(game, n=20, selection_intensity=0.2)
        assert not c_invades.is_favored_by_selection(1)


class TestOneThirdRule:
    def test_interior_equilibrium(self):
        assert interior_equilibrium(coordination_game()) == \
            pytest.approx(0.25)

    def test_no_interior_for_dominance(self):
        with pytest.raises(InvalidParameterError):
            interior_equilibrium(DonationGame(4.0, 1.0))

    def test_prediction_flag(self):
        assert one_third_rule_prediction(coordination_game())  # x* = 1/4
        balanced = coordination_game(a=4.0, b=1.0, c=2.0, d=3.0)  # x* = 1/2
        assert not one_third_rule_prediction(balanced)

    def test_one_third_rule_weak_selection(self):
        """x* < 1/3 -> invader favored; x* > 2/3 -> disfavored (weak w)."""
        n, w = 60, 0.01
        favored = MoranProcess(coordination_game(), n=n,
                               selection_intensity=w)  # x* = 1/4
        assert favored.fixation_probability(1) > 1 / n
        # Mirror game: x* = 3/4 > 2/3.
        mirrored = coordination_game(a=3.0, b=3.0, c=2.0, d=6.0)
        disfavored = MoranProcess(mirrored, n=n, selection_intensity=w)
        assert interior_equilibrium(mirrored) == pytest.approx(0.75)
        assert disfavored.fixation_probability(1) < 1 / n
