"""Tests for zero-determinant strategies and limit-of-means payoffs."""

import pytest

from repro.games.donation import DonationGame
from repro.games.strategies import (
    always_cooperate,
    always_defect,
    generous_tit_for_tat,
    reactive,
    tit_for_tat,
    win_stay_lose_shift,
)
from repro.games.zd import (
    average_payoff_pair,
    extortionate_zd,
    generous_zd,
    max_feasible_phi,
    zd_relation_residual,
    zd_strategy,
    zd_tilde_vector,
)
from repro.utils import InvalidParameterError


@pytest.fixture
def game():
    return DonationGame(b=4.0, c=1.0)


class TestConstruction:
    def test_extortionate_probabilities_valid(self, game):
        for chi in (1.0, 2.0, 5.0):
            strategy = extortionate_zd(game, chi)
            assert all(0.0 <= p <= 1.0 for p in strategy.coop_probs)

    def test_extortionate_never_cooperates_after_dd(self, game):
        assert extortionate_zd(game, 3.0).coop_probs[3] == 0.0

    def test_generous_always_cooperates_after_cc(self, game):
        assert generous_zd(game, 2.0).coop_probs[0] == 1.0

    def test_rejects_chi_below_one(self, game):
        with pytest.raises(InvalidParameterError):
            extortionate_zd(game, 0.5)
        with pytest.raises(InvalidParameterError):
            generous_zd(game, 0.5)

    def test_rejects_bad_phi_fraction(self, game):
        with pytest.raises(InvalidParameterError):
            zd_strategy(game, baseline=0.0, slope=2.0, phi_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            zd_strategy(game, baseline=0.0, slope=2.0, phi_fraction=1.5)

    def test_max_feasible_phi_positive_in_valid_region(self, game):
        assert max_feasible_phi(game, baseline=0.0, slope=2.0) > 0
        assert max_feasible_phi(game, baseline=3.0, slope=2.0) > 0

    def test_infeasible_region_detected(self, game):
        # Baseline far above R makes p2 constraints unsatisfiable.
        assert max_feasible_phi(game, baseline=10.0, slope=0.1) == 0.0

    def test_infeasible_raises_on_construction(self, game):
        with pytest.raises(InvalidParameterError):
            zd_strategy(game, baseline=10.0, slope=0.1)

    def test_tilde_vector_zero_at_baseline_states(self, game):
        # At l = P = 0, state DD contributes (0-0) - chi(0-0) = 0.
        tilde = zd_tilde_vector(game, baseline=0.0, slope=2.0)
        assert tilde[3] == 0.0


class TestAveragePayoffs:
    def test_ac_vs_ad(self, game):
        u1, u2 = average_payoff_pair(always_cooperate(), always_defect(),
                                     game)
        assert u1 == pytest.approx(-1.0)
        assert u2 == pytest.approx(4.0)

    def test_gtft_pair_full_cooperation(self, game):
        gtft = generous_tit_for_tat(0.3, 0.5)
        u1, u2 = average_payoff_pair(gtft, gtft, game)
        assert u1 == pytest.approx(3.0)
        assert u2 == pytest.approx(3.0)

    def test_wsls_pair_full_cooperation(self, game):
        u1, u2 = average_payoff_pair(win_stay_lose_shift(),
                                     win_stay_lose_shift(), game)
        assert u1 == pytest.approx(3.0)

    def test_tft_vs_tft_not_unique(self, game):
        """Deterministic TFT vs TFT has multiple recurrent classes."""
        with pytest.raises(InvalidParameterError):
            average_payoff_pair(tit_for_tat(), tit_for_tat(), game)

    def test_symmetry(self, game):
        first = reactive(0.8, 0.3, 0.5)
        second = reactive(0.4, 0.6, 0.5)
        u1, u2 = average_payoff_pair(first, second, game)
        v2, v1 = average_payoff_pair(second, first, game)
        assert u1 == pytest.approx(v1)
        assert u2 == pytest.approx(v2)


class TestZdRelations:
    @pytest.mark.parametrize("chi", [1.5, 2.0, 4.0])
    def test_extortion_enforces_relation_vs_random_opponents(self, game, chi,
                                                             rng):
        strategy = extortionate_zd(game, chi)
        for _ in range(8):
            opponent = reactive(float(rng.uniform(0.05, 0.95)),
                                float(rng.uniform(0.05, 0.95)), 0.5)
            residual = zd_relation_residual(strategy, opponent, game,
                                            baseline=0.0, slope=chi)
            assert residual < 1e-9

    @pytest.mark.parametrize("chi", [1.5, 3.0])
    def test_generosity_enforces_relation(self, game, chi, rng):
        strategy = generous_zd(game, chi)
        for _ in range(8):
            opponent = reactive(float(rng.uniform(0.05, 0.95)),
                                float(rng.uniform(0.05, 0.95)), 0.5)
            residual = zd_relation_residual(strategy, opponent, game,
                                            baseline=3.0, slope=chi)
            assert residual < 1e-9

    def test_extortioner_out_earns_opponent(self, game, rng):
        """u1 = chi*u2 with chi > 1 and u2 >= 0 implies u1 >= u2."""
        strategy = extortionate_zd(game, 3.0)
        for _ in range(6):
            opponent = reactive(float(rng.uniform(0.1, 0.9)),
                                float(rng.uniform(0.1, 0.9)), 0.5)
            u1, u2 = average_payoff_pair(strategy, opponent, game)
            assert u1 >= u2 - 1e-9

    def test_generous_under_earns_opponent(self, game, rng):
        """u1 - R = chi(u2 - R), chi > 1, payoffs <= R: focal earns less."""
        strategy = generous_zd(game, 2.0)
        for _ in range(6):
            opponent = reactive(float(rng.uniform(0.1, 0.9)),
                                float(rng.uniform(0.1, 0.9)), 0.5)
            u1, u2 = average_payoff_pair(strategy, opponent, game)
            assert u1 <= u2 + 1e-9

    def test_extortion_vs_ad_yields_punishment(self, game):
        """Against AD both land on mutual defection: u1 = u2 = P = 0."""
        strategy = extortionate_zd(game, 2.0)
        u1, u2 = average_payoff_pair(strategy, always_defect(), game)
        assert u1 == pytest.approx(0.0)
        assert u2 == pytest.approx(0.0)

    def test_generous_vs_ac_yields_reward(self, game):
        strategy = generous_zd(game, 2.0)
        u1, u2 = average_payoff_pair(strategy, always_cooperate(), game)
        assert u1 == pytest.approx(3.0)
        assert u2 == pytest.approx(3.0)

    def test_phi_fraction_does_not_change_relation(self, game, rng):
        opponent = reactive(0.7, 0.2, 0.5)
        for fraction in (0.25, 0.5, 0.9):
            strategy = zd_strategy(game, baseline=0.0, slope=2.0,
                                   phi_fraction=fraction)
            assert zd_relation_residual(strategy, opponent, game,
                                        baseline=0.0, slope=2.0) < 1e-9
