"""Tests for actions, matrix games, donation games, and general PD."""

import numpy as np
import pytest

from repro.games.base import Action, GAME_STATES, MatrixGame, state_index
from repro.games.donation import DonationGame, PrisonersDilemma
from repro.utils import InvalidParameterError


class TestAction:
    def test_values(self):
        assert int(Action.COOPERATE) == 0
        assert int(Action.DEFECT) == 1

    def test_symbols(self):
        assert Action.COOPERATE.symbol == "C"
        assert Action.DEFECT.symbol == "D"


class TestGameStates:
    def test_order_matches_paper(self):
        C, D = Action.COOPERATE, Action.DEFECT
        assert GAME_STATES == ((C, C), (C, D), (D, C), (D, D))

    def test_state_index(self):
        for i, (first, second) in enumerate(GAME_STATES):
            assert state_index(first, second) == i


class TestMatrixGame:
    def test_symmetric_construction(self):
        game = MatrixGame([[1.0, 0.0], [3.0, 2.0]])
        assert game.is_symmetric()
        assert np.allclose(game.col_payoffs, game.row_payoffs.T)

    def test_explicit_colpayoffs(self):
        game = MatrixGame([[1.0, 0.0]], [[0.0, 1.0]])
        assert not game.is_symmetric()

    def test_shape_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            MatrixGame([[1.0, 0.0]], [[1.0], [0.0]])

    def test_payoff_pair(self):
        game = MatrixGame([[1.0, 0.0], [3.0, 2.0]])
        assert game.payoff(1, 0) == (3.0, 0.0)

    def test_expected_payoffs_pure(self):
        game = MatrixGame([[1.0, 0.0], [3.0, 2.0]])
        u1, u2 = game.expected_payoffs([0, 1], [1, 0])
        assert (u1, u2) == (3.0, 0.0)

    def test_expected_payoffs_mixed(self):
        game = MatrixGame([[1.0, 0.0], [3.0, 2.0]])
        u1, _ = game.expected_payoffs([0.5, 0.5], [0.5, 0.5])
        assert u1 == pytest.approx(1.5)

    def test_strategy_counts(self):
        game = MatrixGame(np.zeros((2, 3)), np.zeros((2, 3)))
        assert game.n_row_strategies == 2
        assert game.n_col_strategies == 3


class TestDonationGame:
    def test_payoff_matrix(self):
        game = DonationGame(b=4.0, c=1.0)
        assert np.allclose(game.row_payoffs, [[3.0, -1.0], [4.0, 0.0]])

    def test_reward_vector_matches_paper(self):
        game = DonationGame(b=4.0, c=1.0)
        assert np.allclose(game.reward_vector, [3.0, -1.0, 4.0, 0.0])

    def test_second_player_vector_swaps_cd_dc(self):
        game = DonationGame(b=4.0, c=1.0)
        assert np.allclose(game.second_player_reward_vector,
                           [3.0, 4.0, -1.0, 0.0])

    def test_symmetric(self):
        assert DonationGame(b=2.0, c=0.5).is_symmetric()

    def test_rejects_b_below_c(self):
        with pytest.raises(InvalidParameterError):
            DonationGame(b=1.0, c=2.0)

    def test_rejects_negative_cost(self):
        with pytest.raises(InvalidParameterError):
            DonationGame(b=1.0, c=-0.5)

    def test_zero_cost_allowed(self):
        game = DonationGame(b=1.0, c=0.0)
        assert game.benefit_cost_ratio == float("inf")

    def test_round_payoff(self):
        game = DonationGame(b=4.0, c=1.0)
        assert game.round_payoff(Action.COOPERATE, Action.DEFECT) == -1.0
        assert game.round_payoff(Action.DEFECT, Action.COOPERATE) == 4.0

    def test_defect_dominates(self):
        """The eponymous dilemma: D is the dominant one-shot action."""
        game = DonationGame(b=3.0, c=1.0)
        for opp in (Action.COOPERATE, Action.DEFECT):
            assert game.round_payoff(Action.DEFECT, opp) \
                > game.round_payoff(Action.COOPERATE, opp)

    def test_mutual_cooperation_beats_mutual_defection(self):
        game = DonationGame(b=3.0, c=1.0)
        assert game.round_payoff(Action.COOPERATE, Action.COOPERATE) \
            > game.round_payoff(Action.DEFECT, Action.DEFECT)


class TestPrisonersDilemma:
    def test_ordering_enforced(self):
        with pytest.raises(InvalidParameterError):
            PrisonersDilemma(reward=3, sucker=0, temptation=2, punishment=1)

    def test_2r_condition_enforced(self):
        with pytest.raises(InvalidParameterError):
            PrisonersDilemma(reward=3, sucker=-2, temptation=9, punishment=0)

    def test_from_donation(self):
        pd = PrisonersDilemma.from_donation(4.0, 1.0)
        assert np.allclose(pd.reward_vector, DonationGame(4, 1).reward_vector)

    def test_from_donation_requires_positive_cost(self):
        with pytest.raises(InvalidParameterError):
            PrisonersDilemma.from_donation(4.0, 0.0)

    def test_reward_vectors(self):
        pd = PrisonersDilemma(reward=3, sucker=0, temptation=5, punishment=1)
        assert np.allclose(pd.reward_vector, [3, 0, 5, 1])
        assert np.allclose(pd.second_player_reward_vector, [3, 5, 0, 1])
