"""End-to-end integration tests: the paper's pipeline on small instances.

These run the full chain — agent-level simulation -> empirical stationary
distribution -> theorem-level predictions (Theorems 2.4/2.7, Propositions
2.2/2.8, Theorem 2.9) — with statistical tolerances sized to the sampling
noise of the configured run lengths.
"""

import numpy as np
import pytest

from repro.analysis.stats import chi_square_goodness_of_fit
from repro.core.equilibrium import de_gap, mean_stationary_mu
from repro.core.generosity import average_stationary_generosity
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.core.theory import igt_mixing_upper_bound
from repro.markov.distributions import total_variation
from repro.utils import spawn_generators


@pytest.fixture(scope="module")
def stationary_run():
    """One well-mixed agent-level run shared by several assertions."""
    shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
    grid = GenerosityGrid(k=3, g_max=0.6)
    n = 200
    sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=424242)
    burn_in = int(2 * igt_mixing_upper_bound(3, shares, n))
    sim.run(burn_in)
    # Collect thinned stationary snapshots.
    snapshots = []
    for _ in range(300):
        sim.run(n // 2)
        snapshots.append(sim.counts)
    return shares, grid, sim, np.array(snapshots)


class TestStationaryPipeline:
    def test_time_averaged_mu_matches_theory(self, stationary_run):
        shares, grid, sim, snapshots = stationary_run
        process = sim.equivalent_ehrenfest(exact=True)
        pooled = snapshots.sum(axis=0) / snapshots.sum()
        assert total_variation(pooled, process.stationary_weights()) < 0.03

    def test_mean_counts_match_mp(self, stationary_run):
        shares, grid, sim, snapshots = stationary_run
        process = sim.equivalent_ehrenfest(exact=True)
        observed = snapshots.mean(axis=0)
        expected = process.mean_stationary_counts()
        assert np.allclose(observed, expected,
                           atol=0.06 * process.m)

    def test_top_coordinate_chi_square(self, stationary_run):
        """The top-generosity count across snapshots fits Binomial(m, p_k).

        Snapshots are thinned but still correlated, so we only require the
        fit not to be catastrophically rejected.
        """
        from repro.markov.distributions import binomial_pmf

        shares, grid, sim, snapshots = stationary_run
        process = sim.equivalent_ehrenfest(exact=True)
        m = process.m
        p_top = process.stationary_weights()[-1]
        counts = np.bincount(snapshots[:, -1], minlength=m + 1)
        probs = np.array([binomial_pmf(i, m, p_top) for i in range(m + 1)])
        _, p_value = chi_square_goodness_of_fit(counts, probs,
                                                min_expected=5.0)
        assert p_value > 1e-6

    def test_average_generosity_matches_prop_2_8(self, stationary_run):
        shares, grid, sim, snapshots = stationary_run
        process = sim.equivalent_ehrenfest(exact=True)
        simulated = float((snapshots @ grid.values).mean() / process.m)
        # Use the exact finite-n lambda for the theory value.
        theory = float(grid.values @ process.stationary_weights())
        assert simulated == pytest.approx(theory, abs=0.02)
        # And the paper-level (idealized) formula is itself close.
        paper = average_stationary_generosity(3, shares.beta, grid.g_max)
        assert simulated == pytest.approx(paper, abs=0.05)


class TestEquilibriumPipeline:
    def test_empirical_de_gap_near_exact(self, canonical):
        setting, shares, g_max = canonical
        k, n = 4, 200
        grid = GenerosityGrid(k=k, g_max=g_max)
        sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=7)
        sim.run(int(2 * igt_mixing_upper_bound(k, shares, n)))
        mu_acc = np.zeros(k)
        rounds = 150
        for _ in range(rounds):
            sim.run(n // 2)
            mu_acc += sim.empirical_mu()
        mu_avg = mu_acc / rounds
        empirical_gap = de_gap(mu_avg, grid, setting, shares)
        exact_gap = de_gap(mean_stationary_mu(k, beta=shares.beta), grid,
                           setting, shares)
        assert empirical_gap == pytest.approx(exact_gap, abs=0.06)

    def test_replica_consistency(self, canonical):
        """Independent replicas agree on the stationary average generosity."""
        setting, shares, g_max = canonical
        grid = GenerosityGrid(k=3, g_max=g_max)
        n = 150
        budget = int(2 * igt_mixing_upper_bound(3, shares, n))
        values = []
        for child in spawn_generators(99, 6):
            sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=child)
            sim.run(budget)
            total = 0.0
            for _ in range(60):
                sim.run(n // 2)
                total += sim.average_generosity()
            values.append(total / 60)
        assert np.std(values) < 0.03


class TestCountChainEquivalence:
    def test_agent_level_matches_ehrenfest_sampler(self):
        """Distribution of counts after T steps: agent sim vs Ehrenfest.

        This is the Section 2.2.1 reduction checked end-to-end: same T, same
        initial condition, two independent implementations.
        """
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.6)
        n = 100
        T = 4000
        replicas = 120
        agent_counts = np.empty((replicas, 3), dtype=np.int64)
        for r, child in enumerate(spawn_generators(5, replicas)):
            sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=child,
                                initial_indices=0)
            sim.run(T)
            agent_counts[r] = sim.counts
        probe = IGTSimulation(n=n, shares=shares, grid=grid, seed=0,
                              initial_indices=0)
        process = probe.equivalent_ehrenfest(exact=True)
        m = process.m
        start = (m, 0, 0)
        ehrenfest_counts = process.sample_state_at(start, T, seed=11,
                                                   size=replicas)
        # Compare the mean count vectors of the two implementations.
        assert np.allclose(agent_counts.mean(axis=0),
                           ehrenfest_counts.mean(axis=0),
                           atol=0.08 * m)
