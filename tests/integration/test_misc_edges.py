"""Miscellaneous edge-path coverage across the library."""

import numpy as np
import pytest

from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.games.donation import PrisonersDilemma
from repro.games.expected_payoff import expected_payoff
from repro.games.strategies import tit_for_tat, win_stay_lose_shift
from repro.markov.cutoff import cutoff_profile
from repro.markov.ehrenfest import EhrenfestProcess
from repro.utils import ConvergenceError, InvalidParameterError


class TestGeneralPdPayoffs:
    def test_tft_pair_in_general_pd(self):
        """The resolvent machinery works for any PD reward structure."""
        pd = PrisonersDilemma(reward=3, sucker=0, temptation=5, punishment=1)
        delta = 0.8
        value = expected_payoff(tit_for_tat(), tit_for_tat(),
                                pd.reward_vector, delta)
        assert value == pytest.approx(3 / 0.2)

    def test_wsls_recovers_in_general_pd(self):
        pd = PrisonersDilemma(reward=3, sucker=0, temptation=5, punishment=1)
        value = expected_payoff(win_stay_lose_shift(), win_stay_lose_shift(),
                                pd.reward_vector, 0.8)
        assert value == pytest.approx(3 / 0.2)


class TestCutoffEdges:
    def test_custom_thresholds(self):
        from repro.markov.ehrenfest import classic_two_urn_process

        profile = cutoff_profile(classic_two_urn_process(16),
                                 thresholds=(0.5, 0.25))
        assert set(profile.crossing_times) == {0.5, 0.25}

    def test_budget_too_small_raises(self):
        from repro.markov.ehrenfest import classic_two_urn_process

        with pytest.raises(ConvergenceError):
            cutoff_profile(classic_two_urn_process(30), t_max=3)

    def test_explicit_from_states(self):
        process = EhrenfestProcess(k=2, a=0.4, b=0.3, m=6)
        space = process.space()
        low, _ = space.extreme_states()
        profile = cutoff_profile(process, from_states=[space.index(low)])
        assert profile.mixing_time >= 0


class TestIgtSlowPathRecording:
    def test_action_mode_records_trajectory(self, small_setting, rng):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.5)
        sim = IGTSimulation(n=20, shares=shares, grid=grid, seed=rng,
                            mode="action", setting=small_setting)
        trajectory = sim.run(200, observe_every=50)
        assert trajectory.shape == (5, 3)
        assert (trajectory.sum(axis=1) == sim.n_gtft).all()

    def test_noise_path_records_trajectory(self, rng):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.5)
        sim = IGTSimulation(n=30, shares=shares, grid=grid, seed=rng,
                            observation_noise=0.1)
        trajectory = sim.run(300, observe_every=100)
        assert trajectory.shape == (4, 3)

    def test_zero_steps_noop(self, rng):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.5)
        sim = IGTSimulation(n=30, shares=shares, grid=grid, seed=rng)
        before = sim.counts
        assert sim.run(0) is None
        assert np.array_equal(before, sim.counts)

    def test_payoff_tracking_in_action_mode(self, small_setting, rng):
        """Action mode accumulates *realized* payoffs from actual games."""
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.5)
        sim = IGTSimulation(n=20, shares=shares, grid=grid, seed=rng,
                            mode="action", setting=small_setting,
                            track_payoffs=True)
        sim.run(300)
        assert np.abs(sim.total_payoffs).sum() > 0


class TestEhrenfestMiscellany:
    def test_repr_strings(self):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=5)
        assert "EhrenfestProcess" in repr(process)

    def test_sample_state_at_time_zero(self, rng):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=5)
        samples = process.sample_state_at((5, 0, 0), 0, seed=rng, size=3)
        assert (samples == np.array([5, 0, 0])).all()

    def test_transition_matrix_space_mismatch(self):
        from repro.markov.state_space import CompositionSpace

        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=5)
        with pytest.raises(InvalidParameterError):
            process.transition_matrix(CompositionSpace(4, 3))

    def test_stationary_sampling_shapes(self, rng):
        process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=5)
        single = process.sample_stationary(seed=rng)
        batch = process.sample_stationary(seed=rng, size=7)
        assert single.shape == (3,)
        assert batch.shape == (7, 3)
        assert (batch.sum(axis=1) == 5).all()


class TestTheoryConsistency:
    def test_igt_bound_monotone_in_n(self):
        from repro.core.theory import igt_mixing_upper_bound

        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        bounds = [igt_mixing_upper_bound(4, shares, n)
                  for n in (100, 200, 400)]
        assert bounds[0] < bounds[1] < bounds[2]

    def test_phi_continuity_at_equal_rates(self):
        """Phi is continuous as a -> b (k/|a-b| branch exceeds k^2)."""
        from repro.core.theory import ehrenfest_phi

        near = ehrenfest_phi(4, 0.3 + 1e-12, 0.3, 10)
        at = ehrenfest_phi(4, 0.3, 0.3, 10)
        assert near == pytest.approx(at)

    def test_mixing_bounds_sandwich_order_all_regimes(self):
        from repro.core.theory import (
            igt_mixing_lower_bound,
            igt_mixing_upper_bound,
        )

        for beta in (0.05, 0.3, 0.5, 0.7):
            shares = PopulationShares(alpha=(1 - beta) / 2, beta=beta,
                                      gamma=(1 - beta) / 2)
            for k in (2, 6, 12):
                assert igt_mixing_lower_bound(k, shares, 500) \
                    < igt_mixing_upper_bound(k, shares, 500)
