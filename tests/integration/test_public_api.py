"""Public-API integrity: every exported name resolves and is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.markov",
    "repro.games",
    "repro.population",
    "repro.population.protocols",
    "repro.analysis",
    "repro.experiments",
    "repro.utils",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestPublicApi:
    def test_all_names_resolve(self, package_name):
        module = importlib.import_module(package_name)
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), (
                f"{package_name}.__all__ lists {name!r} but the attribute "
                "is missing")

    def test_all_names_documented(self, package_name):
        module = importlib.import_module(package_name)
        for name in getattr(module, "__all__", []):
            if name == "__version__":
                continue
            obj = getattr(module, name)
            if inspect.ismodule(obj):
                continue
            assert inspect.getdoc(obj), (
                f"{package_name}.{name} has no docstring")

    def test_package_docstring(self, package_name):
        module = importlib.import_module(package_name)
        assert inspect.getdoc(module)


class TestVersion:
    def test_version_string(self):
        import repro

        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2


class TestTopLevelConvenience:
    def test_quickstart_snippet_from_readme(self):
        """The README quickstart must keep working verbatim."""
        from repro import (
            GenerosityGrid,
            IGTSimulation,
            de_gap,
            default_theorem_2_9_setting,
            mean_stationary_mu,
        )

        setting, shares, g_max = default_theorem_2_9_setting()
        grid = GenerosityGrid(k=6, g_max=g_max)
        sim = IGTSimulation(n=100, shares=shares, grid=grid, seed=0)
        sim.run(1000)
        assert sim.empirical_mu().shape == (6,)
        assert 0.0 <= sim.average_generosity() <= g_max
        mu = mean_stationary_mu(6, beta=shares.beta)
        assert de_gap(mu, grid, setting, shares) >= 0

    def test_docstring_quickstart_names_exist(self):
        import repro

        for name in ("GenerosityGrid", "IGTSimulation", "PopulationShares",
                     "default_theorem_2_9_setting", "EhrenfestProcess",
                     "total_variation", "Simulator"):
            assert hasattr(repro, name)
