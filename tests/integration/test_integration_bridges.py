"""Cross-substrate integration tests: bridges between the library's parts.

These exercise combinations the paper's narrative implies but no single
module owns: repeated-game payoffs feeding evolutionary dynamics, Ehrenfest
machinery validating agent simulations, and reports rendering end to end.
"""

import numpy as np

from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.experiments import run_experiment
from repro.games.base import MatrixGame
from repro.games.donation import DonationGame
from repro.games.expected_payoff import expected_payoff_pair
from repro.games.moran import MoranProcess
from repro.games.strategies import always_defect, generous_tit_for_tat
from repro.markov.hitting import corner_hitting_time


class TestRepeatedGameMoranBridge:
    """Moran competition between GTFT and AD with *repeated-game* payoffs.

    The evolution-of-cooperation story: one-shot donation games favor
    defection, but with enough continuation probability the repeated-game
    payoff matrix flips the selection gradient toward reciprocity.
    """

    @staticmethod
    def _repeated_matrix(delta: float) -> MatrixGame:
        game = DonationGame(4.0, 1.0)
        gtft = generous_tit_for_tat(0.1, 1.0)
        ad = always_defect()
        u_gg, _ = expected_payoff_pair(gtft, gtft, game, delta)
        u_ga, u_ag = expected_payoff_pair(gtft, ad, game, delta)
        u_aa, _ = expected_payoff_pair(ad, ad, game, delta)
        # Strategy 0 = GTFT, strategy 1 = AD.
        return MatrixGame(np.array([[u_gg, u_ga], [u_ag, u_aa]]))

    def test_one_shot_defection_wins(self):
        matrix = self._repeated_matrix(delta=0.0)
        process = MoranProcess(matrix, n=30, selection_intensity=0.05)
        # A single GTFT invader among ADs is disfavored.
        assert not process.is_favored_by_selection(1)

    def test_high_delta_flips_selection_for_resident_gtft(self):
        """With delta = 0.9, AD cannot invade a GTFT resident population."""
        matrix = self._repeated_matrix(delta=0.9)
        # Mirror: strategy 0 = AD invading GTFT residents.
        mirrored = MatrixGame(matrix.row_payoffs[::-1, ::-1].copy())
        ad_invades = MoranProcess(mirrored, n=30, selection_intensity=0.05)
        assert not ad_invades.is_favored_by_selection(1)

    def test_delta_threshold_is_monotone(self):
        """AD's invasion fixation probability decreases with delta."""
        probs = []
        for delta in (0.0, 0.5, 0.9):
            matrix = self._repeated_matrix(delta)
            mirrored = MatrixGame(matrix.row_payoffs[::-1, ::-1].copy())
            process = MoranProcess(mirrored, n=24, selection_intensity=0.05)
            probs.append(process.fixation_probability(1))
        assert probs[0] > probs[1] > probs[2]


class TestEhrenfestAgentBridge:
    def test_corner_hitting_dominates_observed_first_arrival(self, rng):
        """The exact corner-to-corner hitting time from the embedded chain
        is consistent with agent-level first arrivals (same order)."""
        shares = PopulationShares(alpha=0.4, beta=0.1, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.6)
        n = 40
        sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=rng,
                            initial_indices=0)
        process = sim.equivalent_ehrenfest(exact=True)
        theory = corner_hitting_time(process, "up")
        m = sim.n_gtft
        arrivals = []
        for _ in range(12):
            sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=rng,
                                initial_indices=0)
            steps = 0
            budget = int(60 * theory)
            chunk = max(int(theory / 50), 1)
            while sim.counts[-1] < m and steps < budget:
                sim.run(chunk)
                steps += chunk
            arrivals.append(steps)
        observed = np.mean(arrivals)
        # Same order of magnitude (chunked observation only adds bias up).
        assert 0.3 * theory < observed < 5 * theory


class TestReportRendering:
    def test_markdown_rendering(self):
        report = run_experiment("E1")
        md = report.to_markdown()
        assert md.startswith("## E1")
        assert "| state |" in md or "| state" in md
        assert "- [x]" in md

    def test_markdown_escapes_pipes(self):
        from repro.experiments.base import ExperimentReport

        report = ExperimentReport("EX", "t", "c", ["col"],
                                  rows=[["a|b"]], checks={"ok": True})
        assert "a\\|b" in report.to_markdown()
