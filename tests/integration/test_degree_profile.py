"""DegreeProfileReducer vs the exact per-vertex quenched theory (E6).

On a graph-restricted run, GTFT agent ``i``'s stationary generosity is
the Proposition 2.8 value at ``β_i = #AD-neighbors/deg(i)`` — exact,
not mean-field.  The reducer aggregates live engine states by degree
class; its profile must therefore match the same aggregation of
:func:`~repro.experiments.e06_average_generosity
.per_vertex_quenched_values` class by class, which checks the whole
degree-resolved curve rather than just the population mean.
"""

import numpy as np
import pytest

from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.core.theory import igt_mixing_upper_bound
from repro.engine import DegreeProfileReducer, topology_from_spec
from repro.experiments.e06_average_generosity import (
    per_vertex_quenched_values,
)

N = 240
K = 3
G_MAX = 0.6
MIN_CLASS = 8  # compare only degree classes with this many GTFT members


@pytest.fixture(scope="module")
def profiled_run():
    shares = PopulationShares(alpha=0.2, beta=0.3, gamma=0.5)
    grid = GenerosityGrid(k=K, g_max=G_MAX)
    graph = topology_from_spec("powerlaw", N)
    sim = IGTSimulation(n=N, shares=shares, grid=grid, seed=31337,
                        backend="agent", topology=graph)
    sim.run(int(2 * igt_mixing_upper_bound(K, shares, N)))
    # AC/AD engine states map to NaN: the profile is GTFT-only.
    reducer = DegreeProfileReducer(
        graph.degrees, np.concatenate([grid.values, [np.nan, np.nan]]))
    thin = N // 2
    sim.run(thin * 400, observe_every=thin, observe=reducer)
    return shares, grid, graph, reducer


def theory_by_class(graph, shares, classes):
    values = per_vertex_quenched_values(graph, shares, N, K, G_MAX)
    n_ac, n_ad, _ = shares.agent_counts(N)
    gtft_degrees = graph.degrees[n_ac + n_ad:]
    sizes = np.array([np.count_nonzero(gtft_degrees == c)
                      for c in classes])
    means = np.array([values[gtft_degrees == c].mean() if size else np.nan
                      for c, size in zip(classes, sizes)])
    return sizes, means


class TestDegreeProfile:
    def test_profile_matches_quenched_theory_per_class(self, profiled_run):
        shares, grid, graph, reducer = profiled_run
        classes, observed = reducer.profile()
        sizes, predicted = theory_by_class(graph, shares, classes)
        rich = sizes >= MIN_CLASS
        assert np.count_nonzero(rich) >= 2  # a real profile, not a point
        np.testing.assert_allclose(observed[rich], predicted[rich],
                                   atol=0.06)

    def test_population_mean_is_tighter(self, profiled_run):
        shares, grid, graph, reducer = profiled_run
        classes, observed = reducer.profile()
        sizes, predicted = theory_by_class(graph, shares, classes)
        valid = sizes > 0
        observed_mean = float(np.sum(observed[valid] * sizes[valid])
                              / sizes[valid].sum())
        theory_mean = float(per_vertex_quenched_values(
            graph, shares, N, K, G_MAX).mean())
        assert observed_mean == pytest.approx(theory_mean, abs=0.03)

    def test_profile_is_monotone_in_ad_exposure(self, profiled_run):
        # Sanity on the physics: the quenched theory itself decreases
        # with the AD-neighbor share, so classes whose mean bias is
        # higher must not sit above clearly lower-bias classes.
        shares, grid, graph, reducer = profiled_run
        classes, observed = reducer.profile()
        sizes, predicted = theory_by_class(graph, shares, classes)
        rich = sizes >= MIN_CLASS
        order = np.argsort(predicted[rich])
        spread = predicted[rich][order[-1]] - predicted[rich][order[0]]
        if spread > 0.05:  # only meaningful when theory itself varies
            assert (observed[rich][order[-1]]
                    > observed[rich][order[0]] - 0.04)

    def test_summary_is_json_safe(self, profiled_run):
        import json

        _, _, _, reducer = profiled_run
        encoded = json.dumps(reducer.summary(), allow_nan=False)
        assert "degree-profile" in encoded
