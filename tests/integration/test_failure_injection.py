"""Failure injection: hostile inputs and extreme parameters.

Every library entry point should fail loudly (with a ``ReproError``
subclass) on invalid input and behave sensibly at the extremes of its
domain — minimum populations, boundary probabilities, degenerate games.
"""

import numpy as np
import pytest

from repro.core.equilibrium import RDSetting, de_gap, mean_stationary_mu
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.games.donation import DonationGame
from repro.games.repeated import RepeatedGameEngine
from repro.games.strategies import MemoryOneStrategy, always_defect
from repro.markov.ehrenfest import EhrenfestProcess
from repro.population.protocols.leader import LeaderElectionProtocol
from repro.population.simulator import Simulator
from repro.utils import ReproError


class TestHostileInputs:
    def test_nan_probabilities_rejected_everywhere(self):
        nan = float("nan")
        with pytest.raises(ReproError):
            MemoryOneStrategy(initial_coop_prob=nan, coop_probs=(1, 1, 1, 1))
        with pytest.raises(ReproError):
            RDSetting(b=4.0, c=1.0, delta=0.5, s1=nan)
        with pytest.raises(ReproError):
            PopulationShares(alpha=nan, beta=0.5, gamma=0.5)

    def test_negative_sizes_rejected(self):
        with pytest.raises(ReproError):
            EhrenfestProcess(k=3, a=0.3, b=0.2, m=-1)
        with pytest.raises(ReproError):
            GenerosityGrid(k=-2, g_max=0.5)

    def test_mu_not_a_distribution_rejected(self):
        setting = RDSetting(b=4.0, c=1.0, delta=0.5, s1=0.5)
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.5)
        with pytest.raises(ReproError):
            de_gap([0.5, 0.5, 0.5], grid, setting, shares)
        with pytest.raises(ReproError):
            de_gap([1.2, -0.2, 0.0], grid, setting, shares)

    def test_all_errors_are_catchable_as_repro_error(self):
        attempts = [
            lambda: EhrenfestProcess(k=1, a=0.3, b=0.2, m=5),
            lambda: DonationGame(b=1.0, c=2.0),
            lambda: RepeatedGameEngine(DonationGame(4, 1), delta=1.0),
            lambda: mean_stationary_mu(4),
        ]
        for attempt in attempts:
            with pytest.raises(ReproError):
                attempt()


class TestMinimalPopulations:
    def test_two_agent_simulation(self):
        """The absolute minimum population still runs correctly."""
        protocol = LeaderElectionProtocol()
        sim = Simulator(protocol, protocol.initial_states(2), seed=0)
        result = sim.run(1000, stop_when=protocol.has_unique_leader)
        assert result.converged
        assert result.counts[0] == 1

    def test_igt_minimum_viable_population(self):
        """Two agents, one GTFT, one AD: generosity is driven to zero."""
        shares = PopulationShares(alpha=0.0, beta=0.5, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.6)
        sim = IGTSimulation(n=2, shares=shares, grid=grid, seed=0,
                            initial_indices=2)
        sim.run(200)
        assert sim.average_generosity() == 0.0

    def test_single_gtft_among_cooperators(self):
        """One GTFT with only AC partners climbs to the top and stays."""
        shares = PopulationShares(alpha=0.9, beta=0.0, gamma=0.1)
        grid = GenerosityGrid(k=4, g_max=0.8)
        sim = IGTSimulation(n=10, shares=shares, grid=grid, seed=0,
                            initial_indices=0)
        sim.run(500)
        assert sim.average_generosity() == pytest.approx(0.8)


class TestExtremeParameters:
    def test_beta_near_one(self):
        """Almost-all defectors: stationary collapses to g_1."""
        mu = mean_stationary_mu(5, beta=0.999)
        assert mu[0] > 0.99

    def test_beta_near_zero(self):
        mu = mean_stationary_mu(5, beta=0.001)
        assert mu[-1] > 0.99

    def test_huge_k_numerically_stable(self):
        mu = mean_stationary_mu(500, beta=0.1)
        assert np.isfinite(mu).all()
        assert mu.sum() == pytest.approx(1.0)

    def test_delta_zero_games_single_round(self):
        engine = RepeatedGameEngine(DonationGame(4, 1), delta=0.0)
        record = engine.play(always_defect(), always_defect(), seed=0)
        assert record.rounds == 1

    def test_extreme_bias_ehrenfest(self):
        process = EhrenfestProcess(k=10, a=0.94, b=0.01, m=5)
        pi = process.stationary_weights()
        assert np.isfinite(pi).all()
        assert pi[-1] > 0.98

    def test_large_population_counts_consistent(self):
        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        grid = GenerosityGrid(k=3, g_max=0.6)
        sim = IGTSimulation(n=50_000, shares=shares, grid=grid, seed=0)
        assert sim.counts.sum() == sim.n_gtft == 25_000

    def test_gamma_one_population(self):
        """All-GTFT population: pure upward drift, no embedding (beta=0)."""
        shares = PopulationShares(alpha=0.0, beta=0.0, gamma=1.0)
        grid = GenerosityGrid(k=3, g_max=0.6)
        sim = IGTSimulation(n=20, shares=shares, grid=grid, seed=0,
                            initial_indices=0)
        sim.run(2000)
        assert sim.average_generosity() == pytest.approx(0.6)


class TestDeterminismUnderConcurrencyPatterns:
    def test_spawned_replicas_are_deterministic(self):
        """The replica-spawning pattern used across experiments reproduces
        bit-for-bit under a fixed parent seed."""
        from repro.utils import spawn_generators

        def run_once():
            shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
            grid = GenerosityGrid(k=3, g_max=0.6)
            out = []
            for child in spawn_generators(1234, 4):
                sim = IGTSimulation(n=50, shares=shares, grid=grid,
                                    seed=child)
                sim.run(500)
                out.append(tuple(sim.counts))
            return out

        assert run_once() == run_once()
