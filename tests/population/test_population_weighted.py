"""Tests for the weighted scheduler extension."""

import numpy as np
import pytest

from repro.population.scheduler import WeightedScheduler
from repro.utils import InvalidParameterError


class TestWeightedScheduler:
    def test_rejects_bad_weights(self):
        with pytest.raises(InvalidParameterError):
            WeightedScheduler([1.0])
        with pytest.raises(InvalidParameterError):
            WeightedScheduler([1.0, 0.0])
        with pytest.raises(InvalidParameterError):
            WeightedScheduler([1.0, float("inf")])
        with pytest.raises(InvalidParameterError):
            WeightedScheduler([[1.0, 2.0]])

    def test_pairs_distinct(self):
        scheduler = WeightedScheduler([1.0, 5.0, 2.0], seed=0)
        for _ in range(100):
            i, j = scheduler.next_pair()
            assert i != j

    def test_block_pairs_distinct(self):
        scheduler = WeightedScheduler([1.0, 5.0, 2.0, 0.5], seed=1)
        initiators, responders = scheduler.pair_block(5000)
        assert (initiators != responders).all()

    def test_heavy_agent_initiates_more(self):
        scheduler = WeightedScheduler([10.0, 1.0, 1.0], seed=2)
        initiators, _ = scheduler.pair_block(20_000)
        share = np.mean(initiators == 0)
        assert share == pytest.approx(10 / 12, abs=0.03)

    def test_uniform_weights_match_random_scheduler_law(self):
        """Equal weights: initiator marginal uniform, pairs distinct —
        the RandomScheduler law."""
        n = 4
        weighted = WeightedScheduler(np.ones(n), seed=3)
        initiators, responders = weighted.pair_block(60_000)
        counts = np.zeros((n, n))
        for i, j in zip(initiators, responders):
            counts[i, j] += 1
        off = counts[~np.eye(n, dtype=bool)]
        expected = 60_000 / (n * (n - 1))
        assert np.abs(off - expected).max() < 0.08 * expected

    def test_reproducible(self):
        a = WeightedScheduler([1, 2, 3], seed=9).pair_block(100)
        b = WeightedScheduler([1, 2, 3], seed=9).pair_block(100)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_responder_conditional_law(self):
        """Conditioned on the initiator, the responder is weight-tilted
        among the *other* agents: P(r=2 | i=0) = 0.8/0.9 (rejection
        renormalizes); unconditionally the heavy agent crowds itself out
        of the responder slot (P(r=2) = 0.2 * 8/9 ~ 0.178)."""
        scheduler = WeightedScheduler([1.0, 1.0, 8.0], seed=4)
        initiators, responders = scheduler.pair_block(40_000)
        mask = initiators == 0
        conditional = np.mean(responders[mask] == 2)
        assert conditional == pytest.approx(0.8 / 0.9, abs=0.03)
        assert np.mean(responders == 2) == pytest.approx(0.2 * 8 / 9,
                                                         abs=0.02)
