"""Tests for protocol abstraction, scheduler, simulator, and metrics."""

import numpy as np
import pytest

from repro.population.metrics import (
    CountTracker,
    StateCountObserver,
    convergence_step,
)
from repro.population.protocol import (
    TransitionFunctionProtocol,
)
from repro.population.scheduler import RandomScheduler
from repro.population.simulator import Simulator
from repro.utils import InvalidParameterError


@pytest.fixture
def max_protocol():
    """Both agents adopt the max of their states (epidemic of the maximum)."""
    return TransitionFunctionProtocol(
        n_states=4, fn=lambda u, v: (max(u, v), max(u, v)))


@pytest.fixture
def one_way_protocol():
    """Initiator copies the responder; responder unchanged."""
    return TransitionFunctionProtocol(n_states=3, fn=lambda u, v: (v, v))


class TestTransitionFunctionProtocol:
    def test_basic(self, max_protocol):
        assert max_protocol.transition(1, 3) == (3, 3)
        assert max_protocol.n_states == 4

    def test_default_output_is_state(self, max_protocol):
        assert max_protocol.output(2) == 2

    def test_custom_output(self):
        protocol = TransitionFunctionProtocol(
            n_states=2, fn=lambda u, v: (u, v), output_fn=lambda s: s > 0)
        assert protocol.output(1) is True

    def test_labels(self):
        protocol = TransitionFunctionProtocol(
            n_states=2, fn=lambda u, v: (u, v), labels=["off", "on"])
        assert protocol.state_label(1) == "on"

    def test_label_count_mismatch(self):
        with pytest.raises(InvalidParameterError):
            TransitionFunctionProtocol(n_states=2, fn=lambda u, v: (u, v),
                                       labels=["only-one"])

    def test_is_one_way_detection(self, one_way_protocol, max_protocol):
        # Initiator copies responder: only the initiator changes -> one-way.
        assert one_way_protocol.is_one_way
        truly = TransitionFunctionProtocol(
            n_states=3, fn=lambda u, v: (max(u, v), v))
        assert truly.is_one_way
        # Both agents adopt the max -> the responder can change -> two-way.
        assert not max_protocol.is_one_way

    def test_transition_table_shape(self, max_protocol):
        table = max_protocol.transition_table()
        assert table.shape == (4, 4, 2)
        assert table[1, 3, 0] == 3

    def test_transition_table_rejects_escapes(self):
        bad = TransitionFunctionProtocol(n_states=2,
                                         fn=lambda u, v: (u + 5, v))
        with pytest.raises(InvalidParameterError):
            bad.transition_table()


class TestRandomScheduler:
    def test_pairs_distinct(self):
        scheduler = RandomScheduler(5, seed=0)
        for _ in range(200):
            i, j = scheduler.next_pair()
            assert i != j
            assert 0 <= i < 5 and 0 <= j < 5

    def test_block_pairs_distinct(self):
        scheduler = RandomScheduler(6, seed=1)
        initiators, responders = scheduler.pair_block(5000)
        assert (initiators != responders).all()

    def test_block_uniform_over_ordered_pairs(self):
        scheduler = RandomScheduler(4, seed=2)
        initiators, responders = scheduler.pair_block(120_000)
        counts = np.zeros((4, 4))
        for i, j in zip(initiators, responders):
            counts[i, j] += 1
        off_diagonal = counts[~np.eye(4, dtype=bool)]
        expected = 120_000 / 12
        assert np.abs(off_diagonal - expected).max() < 0.06 * expected

    def test_rejects_single_agent(self):
        with pytest.raises(InvalidParameterError):
            RandomScheduler(1)

    def test_seeded_reproducible(self):
        a = RandomScheduler(5, seed=9).pair_block(50)
        b = RandomScheduler(5, seed=9).pair_block(50)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


class TestSimulator:
    def test_max_spreads(self, max_protocol, rng):
        states = np.zeros(30, dtype=np.int64)
        states[0] = 3
        sim = Simulator(max_protocol, states, seed=rng)
        result = sim.run(20_000,
                         stop_when=lambda counts: counts[3] == 30)
        assert result.converged
        assert (result.states == 3).all()

    def test_counts_match_states(self, max_protocol, rng):
        states = np.array([0, 1, 2, 3, 3], dtype=np.int64)
        sim = Simulator(max_protocol, states, seed=rng)
        assert np.array_equal(sim.counts, [1, 1, 1, 2])
        sim.run(100)
        assert np.array_equal(sim.counts,
                              np.bincount(sim.states, minlength=4))

    def test_population_size_conserved(self, one_way_protocol, rng):
        states = np.array([0, 1, 2] * 10, dtype=np.int64)
        sim = Simulator(one_way_protocol, states, seed=rng)
        result = sim.run(5000)
        assert result.counts.sum() == 30

    def test_observations_cadence(self, max_protocol, rng):
        states = np.zeros(10, dtype=np.int64)
        states[0] = 1
        sim = Simulator(max_protocol, states, seed=rng)
        result = sim.run(100, observe_every=25)
        steps = [s for s, _ in result.observations]
        assert steps == [0, 25, 50, 75, 100]

    def test_stop_checked_at_cadence(self, max_protocol, rng):
        states = np.zeros(10, dtype=np.int64)
        sim = Simulator(max_protocol, states, seed=rng)
        result = sim.run(100, stop_when=lambda c: True, check_stop_every=10)
        assert result.converged
        assert result.steps == 0  # predicate already true before any step

    def test_invalid_initial_state_rejected(self, max_protocol):
        with pytest.raises(InvalidParameterError):
            Simulator(max_protocol, np.array([0, 9]), seed=0)

    def test_single_agent_rejected(self, max_protocol):
        with pytest.raises(InvalidParameterError):
            Simulator(max_protocol, np.array([0]), seed=0)

    def test_reproducible(self, max_protocol):
        states = np.arange(4) % 4
        r1 = Simulator(max_protocol, states, seed=5).run(200)
        r2 = Simulator(max_protocol, states, seed=5).run(200)
        assert np.array_equal(r1.states, r2.states)

    def test_outputs(self, one_way_protocol, rng):
        sim = Simulator(one_way_protocol, np.array([0, 1, 2]), seed=rng)
        assert sim.outputs() == [0, 1, 2]


class TestMetrics:
    def test_observer_from_observations(self):
        observations = [(0, np.array([3, 0])), (10, np.array([1, 2]))]
        observer = StateCountObserver.from_observations(observations)
        assert observer.steps.tolist() == [0, 10]
        assert observer.counts.shape == (2, 2)

    def test_observer_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            StateCountObserver.from_observations([])

    def test_fractions(self):
        observer = StateCountObserver(steps=np.array([0]),
                                      counts=np.array([[1, 3]]))
        assert np.allclose(observer.fractions(), [[0.25, 0.75]])

    def test_trajectory_of(self):
        observer = StateCountObserver(steps=np.array([0, 1]),
                                      counts=np.array([[1, 3], [2, 2]]))
        assert observer.trajectory_of(0).tolist() == [1, 2]

    def test_convergence_step(self):
        observer = StateCountObserver(
            steps=np.array([0, 5, 10]),
            counts=np.array([[4, 0], [2, 2], [0, 4]]))
        step = convergence_step(observer, lambda c: c[0] == 0)
        assert step == 10

    def test_convergence_step_never(self):
        observer = StateCountObserver(steps=np.array([0]),
                                      counts=np.array([[4, 0]]))
        assert convergence_step(observer, lambda c: c[0] == 99) is None

    def test_count_tracker_mean_variance(self):
        tracker = CountTracker()
        for value in [1.0, 2.0, 3.0, 4.0]:
            tracker.update(value)
        assert tracker.mean == pytest.approx(2.5)
        assert tracker.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert tracker.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_count_tracker_single_value(self):
        tracker = CountTracker()
        tracker.update(5.0)
        assert tracker.variance == 0.0
