"""Tests for the protocol convergence-scaling harness."""

import math

import numpy as np
import pytest

from repro.population.protocols.leader import LeaderElectionProtocol
from repro.population.protocols.rumor import RumorSpreadingProtocol
from repro.population.scaling import measure_convergence_scaling
from repro.utils import ConvergenceError, InvalidParameterError


def _leader_study(ns, replicas, seed):
    return measure_convergence_scaling(
        protocol_factory=lambda n: LeaderElectionProtocol(),
        initializer=LeaderElectionProtocol.initial_states,
        stop_predicate=lambda protocol: protocol.has_unique_leader,
        ns=ns, replicas=replicas, seed=seed)


class TestScalingStudy:
    def test_structure(self, rng):
        study = _leader_study([8, 16], replicas=6, seed=rng)
        assert study.ns == [8, 16]
        assert len(study.times) == 2
        assert study.times[0].shape == (6,)

    def test_means_positive_increasing(self, rng):
        study = _leader_study([8, 24], replicas=8, seed=rng)
        means = study.means()
        assert means[0] < means[1]

    def test_confidence_intervals(self, rng):
        study = _leader_study([10], replicas=8, seed=rng)
        mean, low, high = study.confidence_intervals()[0]
        assert low <= mean <= high

    def test_leader_election_quadratic(self, rng):
        """Fratricide leader election scales ~n^2."""
        study = _leader_study([8, 16, 32], replicas=12, seed=rng)
        assert study.growth_exponent() == pytest.approx(2.0, abs=0.5)

    def test_leader_election_matches_exact_formula(self, rng):
        """Mean time ~ (n-1)^2 — the normalized curve is flat near 1."""
        study = _leader_study([10, 20], replicas=25, seed=rng)
        normalized = study.normalized_by(lambda n: (n - 1) ** 2)
        assert np.all(np.abs(normalized - 1.0) < 0.35)

    def test_rumor_scales_n_log_n(self, rng):
        protocol = RumorSpreadingProtocol()
        study = measure_convergence_scaling(
            protocol_factory=lambda n: protocol,
            initializer=protocol.initial_states,
            stop_predicate=lambda p: p.all_informed,
            ns=[16, 32, 64], replicas=12, seed=rng,
            check_stop_every=4)
        normalized = study.normalized_by(lambda n: 2 * n * math.log(n))
        # Flat within a generous band (the constant is exactly 2n H-ish).
        assert normalized.max() / normalized.min() < 1.6

    def test_budget_exhaustion_raises(self, rng):
        protocol = LeaderElectionProtocol()
        with pytest.raises(ConvergenceError):
            measure_convergence_scaling(
                protocol_factory=lambda n: protocol,
                initializer=protocol.initial_states,
                stop_predicate=lambda p: p.has_unique_leader,
                ns=[30], replicas=2, seed=rng, budget_factor=0.01)

    def test_empty_ns_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            measure_convergence_scaling(
                protocol_factory=lambda n: LeaderElectionProtocol(),
                initializer=LeaderElectionProtocol.initial_states,
                stop_predicate=lambda p: p.has_unique_leader,
                ns=[], replicas=2, seed=rng)

    def test_growth_exponent_requires_two_sizes(self, rng):
        study = _leader_study([10], replicas=3, seed=rng)
        with pytest.raises(InvalidParameterError):
            study.growth_exponent()
