"""Tests for the classic population protocols (substrate demos)."""

import numpy as np
import pytest

from repro.population.protocols.averaging import AveragingProtocol
from repro.population.protocols.exact_majority import (
    STRONG_A,
    STRONG_B,
    WEAK_A,
    WEAK_B,
    FourStateExactMajority,
)
from repro.population.protocols.leader import (
    FOLLOWER,
    LEADER,
    LeaderElectionProtocol,
)
from repro.population.protocols.majority import (
    BLANK,
    X,
    Y,
    ThreeStateApproximateMajority,
)
from repro.population.protocols.rumor import (
    INFORMED,
    SUSCEPTIBLE,
    RumorSpreadingProtocol,
)
from repro.population.simulator import Simulator
from repro.utils import InvalidParameterError


class TestApproximateMajority:
    def test_transition_rules(self):
        protocol = ThreeStateApproximateMajority()
        assert protocol.transition(X, Y) == (X, BLANK)
        assert protocol.transition(Y, X) == (Y, BLANK)
        assert protocol.transition(X, BLANK) == (X, X)
        assert protocol.transition(Y, BLANK) == (Y, Y)
        assert protocol.transition(BLANK, X) == (BLANK, X)

    def test_initial_states(self):
        states = ThreeStateApproximateMajority.initial_states(10, 7)
        assert (states == X).sum() == 7
        assert (states == Y).sum() == 3

    def test_initial_states_bad_count(self):
        with pytest.raises(InvalidParameterError):
            ThreeStateApproximateMajority.initial_states(5, 6)

    def test_output_map(self):
        protocol = ThreeStateApproximateMajority()
        assert protocol.output(X) == 0
        assert protocol.output(Y) == 1
        assert protocol.output(BLANK) is None

    def test_converges_to_clear_majority(self, rng):
        protocol = ThreeStateApproximateMajority()
        n = 120
        states = protocol.initial_states(n, 90)
        sim = Simulator(protocol, states, seed=rng)
        result = sim.run(80 * n, stop_when=protocol.has_consensus,
                         check_stop_every=50)
        assert result.converged
        assert protocol.winner(result.counts) == 0

    def test_winner_undetermined_when_mixed(self):
        counts = np.array([3, 3, 0])
        assert ThreeStateApproximateMajority.winner(counts) is None


class TestExactMajority:
    def test_annihilation_rule(self):
        protocol = FourStateExactMajority()
        assert protocol.transition(STRONG_A, STRONG_B) == (WEAK_A, WEAK_B)
        assert protocol.transition(STRONG_B, STRONG_A) == (WEAK_B, WEAK_A)

    def test_conversion_rules(self):
        protocol = FourStateExactMajority()
        assert protocol.transition(STRONG_A, WEAK_B) == (STRONG_A, WEAK_A)
        assert protocol.transition(WEAK_B, STRONG_A) == (WEAK_A, STRONG_A)

    def test_weak_weak_inert(self):
        protocol = FourStateExactMajority()
        assert protocol.transition(WEAK_A, WEAK_B) == (WEAK_A, WEAK_B)

    def test_strong_difference_invariant(self, rng):
        protocol = FourStateExactMajority()
        n = 60
        states = protocol.initial_states(n, 35)
        sim = Simulator(protocol, states, seed=rng)
        initial_diff = protocol.strong_difference(sim.counts)
        sim.run(5000)
        assert protocol.strong_difference(sim.counts) == initial_diff

    @pytest.mark.parametrize("a_count,expected", [(40, 0), (20, 1)])
    def test_exact_majority_correct(self, rng, a_count, expected):
        protocol = FourStateExactMajority()
        n = 60
        states = protocol.initial_states(n, a_count)
        sim = Simulator(protocol, states, seed=rng)
        result = sim.run(400 * n, stop_when=protocol.has_converged,
                         check_stop_every=100)
        assert result.converged
        outputs = set(sim.outputs())
        assert outputs == {expected}


class TestLeaderElection:
    def test_rule(self):
        protocol = LeaderElectionProtocol()
        assert protocol.transition(LEADER, LEADER) == (LEADER, FOLLOWER)
        assert protocol.transition(LEADER, FOLLOWER) == (LEADER, FOLLOWER)

    def test_exactly_one_leader_survives(self, rng):
        protocol = LeaderElectionProtocol()
        n = 40
        sim = Simulator(protocol, protocol.initial_states(n), seed=rng)
        result = sim.run(100 * n * n, stop_when=protocol.has_unique_leader,
                         check_stop_every=100)
        assert result.converged
        assert result.counts[LEADER] == 1

    def test_leader_count_never_increases(self, rng):
        protocol = LeaderElectionProtocol()
        sim = Simulator(protocol, protocol.initial_states(20), seed=rng)
        previous = sim.counts[LEADER]
        for _ in range(30):
            result = sim.run(50)
            current = result.counts[LEADER]
            assert current <= previous
            previous = current

    def test_expected_interactions_formula(self, rng):
        """Mean convergence time matches (n-1)^2 exactly (within CI)."""
        protocol = LeaderElectionProtocol()
        n = 12
        times = []
        for _ in range(120):
            sim = Simulator(protocol, protocol.initial_states(n), seed=rng)
            result = sim.run(80 * n * n,
                             stop_when=protocol.has_unique_leader)
            assert result.converged
            times.append(result.steps)
        expected = protocol.expected_interactions(n)
        assert np.mean(times) == pytest.approx(expected, rel=0.2)


class TestRumorSpreading:
    def test_rule_one_way(self):
        protocol = RumorSpreadingProtocol()
        # Pull: the susceptible initiator learns from an informed responder.
        assert protocol.transition(SUSCEPTIBLE, INFORMED) == (INFORMED, INFORMED)
        # The responder never changes (paper footnote 3 one-way convention).
        assert protocol.transition(INFORMED, SUSCEPTIBLE) == (INFORMED, SUSCEPTIBLE)
        assert protocol.is_one_way

    def test_everyone_informed(self, rng):
        protocol = RumorSpreadingProtocol()
        n = 80
        sim = Simulator(protocol, protocol.initial_states(n), seed=rng)
        result = sim.run(200 * n, stop_when=protocol.all_informed,
                         check_stop_every=20)
        assert result.converged

    def test_informed_count_monotone(self, rng):
        protocol = RumorSpreadingProtocol()
        sim = Simulator(protocol, protocol.initial_states(30), seed=rng)
        previous = sim.counts[INFORMED]
        for _ in range(20):
            current = sim.run(30).counts[INFORMED]
            assert current >= previous
            previous = current

    def test_expected_interactions_scales_n_log_n(self, rng):
        protocol = RumorSpreadingProtocol()
        n = 50
        times = []
        for _ in range(60):
            sim = Simulator(protocol, protocol.initial_states(n), seed=rng)
            result = sim.run(400 * n, stop_when=protocol.all_informed,
                             check_stop_every=5)
            assert result.converged
            times.append(result.steps)
        expected = protocol.expected_interactions(n)
        assert np.mean(times) == pytest.approx(expected, rel=0.25)


class TestAveraging:
    def test_split_rule(self):
        protocol = AveragingProtocol(max_value=10)
        assert protocol.transition(5, 2) == (4, 3)
        assert protocol.transition(2, 5) == (4, 3)
        assert protocol.transition(3, 3) == (3, 3)

    def test_sum_conserved(self, rng):
        protocol = AveragingProtocol(max_value=16)
        values = np.array([16, 0, 0, 0, 8, 8, 4, 12], dtype=np.int64)
        sim = Simulator(protocol, values, seed=rng)
        total_before = protocol.total_load(sim.counts)
        sim.run(5000)
        assert protocol.total_load(sim.counts) == total_before

    def test_balances(self, rng):
        protocol = AveragingProtocol(max_value=16)
        values = np.array([16, 0] * 10, dtype=np.int64)
        sim = Simulator(protocol, values, seed=rng)
        result = sim.run(40_000, stop_when=protocol.is_balanced,
                         check_stop_every=100)
        assert result.converged
        present = np.nonzero(result.counts)[0]
        assert present[-1] - present[0] <= 1

    def test_is_balanced_predicate(self):
        assert AveragingProtocol.is_balanced(np.array([0, 3, 5, 0]))
        assert not AveragingProtocol.is_balanced(np.array([1, 0, 5]))

    def test_initial_states_validation(self):
        with pytest.raises(InvalidParameterError):
            AveragingProtocol.initial_states([5])
        with pytest.raises(InvalidParameterError):
            AveragingProtocol.initial_states([-1, 2])
