"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.equilibrium import RDSetting
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import PopulationShares
from repro.core.regimes import default_theorem_2_9_setting


@pytest.fixture
def rng():
    """A fixed-seed generator for deterministic stochastic tests."""
    return np.random.default_rng(20240519)


@pytest.fixture
def canonical():
    """The canonical Theorem 2.9 instance ``(setting, shares, g_max)``."""
    return default_theorem_2_9_setting()


@pytest.fixture
def small_setting():
    """A small, fast RD setting used widely in unit tests."""
    return RDSetting(b=4.0, c=1.0, delta=0.7, s1=0.5)


@pytest.fixture
def small_shares():
    """A population with all three types well represented."""
    return PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)


@pytest.fixture
def small_grid():
    """A k = 4 generosity grid over [0, 0.6]."""
    return GenerosityGrid(k=4, g_max=0.6)
