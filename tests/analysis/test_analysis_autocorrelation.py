"""Tests for autocorrelation diagnostics."""

import numpy as np
import pytest

from repro.analysis.autocorrelation import (
    autocorrelation,
    effective_sample_size,
    integrated_autocorrelation_time,
    thinned_indices,
)
from repro.utils import InvalidParameterError


def ar1(rho: float, size: int, rng) -> np.ndarray:
    """An AR(1) series with autocorrelation rho."""
    noise = rng.normal(size=size)
    out = np.empty(size)
    out[0] = noise[0]
    for t in range(1, size):
        out[t] = rho * out[t - 1] + np.sqrt(1 - rho**2) * noise[t]
    return out


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        rho = autocorrelation(rng.normal(size=500))
        assert rho[0] == 1.0

    def test_iid_decorrelated(self, rng):
        rho = autocorrelation(rng.normal(size=5000), max_lag=5)
        assert np.abs(rho[1:]).max() < 0.05

    def test_ar1_matches_theory(self, rng):
        series = ar1(0.7, 30_000, rng)
        rho = autocorrelation(series, max_lag=4)
        for lag in range(1, 5):
            assert rho[lag] == pytest.approx(0.7**lag, abs=0.04)

    def test_constant_series_raises(self):
        with pytest.raises(InvalidParameterError):
            autocorrelation(np.ones(100))

    def test_max_lag_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            autocorrelation(rng.normal(size=10), max_lag=10)


class TestIntegratedTime:
    def test_iid_near_one(self, rng):
        tau = integrated_autocorrelation_time(rng.normal(size=10_000))
        assert tau == pytest.approx(1.0, abs=0.25)

    def test_ar1_matches_theory(self, rng):
        """tau_int for AR(1) is (1+rho)/(1-rho)."""
        rho = 0.6
        series = ar1(rho, 60_000, rng)
        tau = integrated_autocorrelation_time(series)
        assert tau == pytest.approx((1 + rho) / (1 - rho), rel=0.25)

    def test_at_least_one(self, rng):
        # Anti-correlated series: tau clipped to 1.
        series = np.tile([1.0, -1.0], 500) + rng.normal(0, 0.1, 1000)
        assert integrated_autocorrelation_time(series) >= 1.0


class TestEffectiveSampleSize:
    def test_iid_full_size(self, rng):
        ess = effective_sample_size(rng.normal(size=5000))
        assert ess == pytest.approx(5000, rel=0.25)

    def test_correlated_shrinks(self, rng):
        series = ar1(0.9, 20_000, rng)
        assert effective_sample_size(series) < 5000


class TestThinning:
    def test_stride(self):
        idx = thinned_indices(100, tau=5.0)
        assert idx[1] - idx[0] == 10

    def test_tau_zero_keeps_all(self):
        assert thinned_indices(10, 0.0).size == 10

    def test_negative_tau_rejected(self):
        with pytest.raises(InvalidParameterError):
            thinned_indices(10, -1.0)

    def test_igt_generosity_series_has_finite_tau(self, rng):
        """Sanity: the k-IGT average-generosity series is mixing, so its
        autocorrelation time is finite and thinning produces usable ESS."""
        from repro.core.igt import GenerosityGrid
        from repro.core.population_igt import IGTSimulation, PopulationShares

        shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
        sim = IGTSimulation(n=100, shares=shares,
                            grid=GenerosityGrid(k=3, g_max=0.6), seed=rng)
        sim.run(20_000)
        series = np.empty(400)
        for i in range(400):
            sim.run(50)
            series[i] = sim.average_generosity()
        tau = integrated_autocorrelation_time(series)
        assert 1.0 <= tau < 200
        assert effective_sample_size(series) > 2
