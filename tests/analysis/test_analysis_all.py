"""Tests for the analysis utilities (stats, sweep, tables, timeseries)."""

import numpy as np
import pytest

from repro.analysis.stats import (
    bootstrap_confidence_interval,
    chi_square_goodness_of_fit,
    fit_power_law,
    mean_confidence_interval,
)
from repro.analysis.sweep import parameter_sweep
from repro.analysis.tables import format_records, format_table, sparkline
from repro.analysis.timeseries import (
    first_time_below,
    relative_change,
    running_mean,
)
from repro.utils import InvalidParameterError


class TestMeanConfidenceInterval:
    def test_contains_mean(self, rng):
        samples = rng.normal(5.0, 1.0, size=200)
        mean, low, high = mean_confidence_interval(samples)
        assert low < mean < high
        assert mean == pytest.approx(samples.mean())

    def test_single_sample_degenerate(self):
        mean, low, high = mean_confidence_interval([3.0])
        assert mean == low == high == 3.0

    def test_constant_samples_degenerate(self):
        mean, low, high = mean_confidence_interval([2.0, 2.0, 2.0])
        assert mean == low == high == 2.0

    def test_coverage(self, rng):
        """~95% of intervals cover the true mean."""
        covered = 0
        for _ in range(200):
            samples = rng.normal(0.0, 1.0, size=30)
            _, low, high = mean_confidence_interval(samples)
            covered += low <= 0.0 <= high
        assert covered >= 170

    def test_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            mean_confidence_interval([])


class TestBootstrap:
    def test_contains_point(self, rng):
        samples = rng.exponential(2.0, size=100)
        point, low, high = bootstrap_confidence_interval(
            samples, statistic=np.median, seed=rng, n_resamples=500)
        assert low <= point <= high

    def test_reproducible(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        a = bootstrap_confidence_interval(samples, seed=7, n_resamples=200)
        b = bootstrap_confidence_interval(samples, seed=7, n_resamples=200)
        assert a == b


class TestChiSquare:
    def test_good_fit_high_p(self, rng):
        probs = np.array([0.25, 0.25, 0.5])
        counts = rng.multinomial(2000, probs)
        _, p = chi_square_goodness_of_fit(counts, probs)
        assert p > 0.001

    def test_bad_fit_low_p(self):
        probs = np.array([0.5, 0.5])
        counts = np.array([900, 100])
        _, p = chi_square_goodness_of_fit(counts, probs)
        assert p < 1e-6

    def test_small_bins_pooled(self):
        probs = np.array([0.98, 0.01, 0.01])
        counts = np.array([98, 1, 1])
        statistic, p = chi_square_goodness_of_fit(counts, probs)
        assert p >= 0.0  # pooling keeps the test valid

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            chi_square_goodness_of_fit([1, 2], [0.5, 0.25, 0.25])

    def test_zero_counts_raise(self):
        with pytest.raises(InvalidParameterError):
            chi_square_goodness_of_fit([0, 0], [0.5, 0.5])


class TestPowerLawFit:
    def test_exact_power_law(self):
        x = np.array([1, 2, 4, 8, 16])
        y = 3.0 * x**1.5
        alpha, constant = fit_power_law(x, y)
        assert alpha == pytest.approx(1.5)
        assert constant == pytest.approx(3.0)

    def test_inverse_law(self):
        x = np.array([2, 4, 8, 16])
        alpha, _ = fit_power_law(x, 5.0 / x)
        assert alpha == pytest.approx(-1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidParameterError):
            fit_power_law([1, 2], [0.0, 1.0])

    def test_rejects_single_point(self):
        with pytest.raises(InvalidParameterError):
            fit_power_law([1], [1])


class TestParameterSweep:
    def test_cartesian_product(self):
        result = parameter_sweep(lambda a, b: {"sum": a + b},
                                 a=[1, 2], b=[10, 20])
        assert len(result.records) == 4
        assert result.column("sum") == [11, 21, 12, 22]

    def test_where_filter(self):
        result = parameter_sweep(lambda a, b: {"sum": a + b},
                                 a=[1, 2], b=[10, 20])
        assert len(result.where(a=1)) == 2
        assert result.where(a=2, b=20)[0]["sum"] == 22

    def test_missing_column_raises(self):
        result = parameter_sweep(lambda a: {"out": a}, a=[1])
        with pytest.raises(InvalidParameterError):
            result.column("nope")

    def test_non_dict_return_rejected(self):
        with pytest.raises(InvalidParameterError):
            parameter_sweep(lambda a: a, a=[1])

    def test_key_collision_rejected(self):
        with pytest.raises(InvalidParameterError):
            parameter_sweep(lambda a: {"a": a}, a=[1])

    def test_empty_sweep_rejected(self):
        with pytest.raises(InvalidParameterError):
            parameter_sweep(lambda: {})


class TestTables:
    def test_format_table_basic(self):
        text = format_table(["x", "y"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert "x" in lines[0] and "y" in lines[0]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["a"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            format_table(["a", "b"], [[1]])

    def test_cell_formats(self):
        text = format_table(["v"], [[True], [None], [1e-9], [float("nan")]])
        assert "yes" in text
        assert "-" in text
        assert "e-09" in text
        assert "nan" in text

    def test_format_records(self):
        records = [{"a": 1, "b": 2}, {"a": 3}]
        text = format_records(records, ["a", "b"])
        assert "3" in text

    def test_sparkline_range(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""


class TestTimeseries:
    def test_running_mean(self):
        out = running_mean([1, 2, 3, 4], 2)
        assert np.allclose(out, [1.5, 2.5, 3.5])

    def test_running_mean_window_too_large(self):
        with pytest.raises(InvalidParameterError):
            running_mean([1, 2], 3)

    def test_first_time_below(self):
        assert first_time_below([0.9, 0.5, 0.2, 0.1], 0.25) == 2

    def test_first_time_below_never(self):
        assert first_time_below([0.9, 0.8], 0.1) is None

    def test_first_time_below_with_axis(self):
        axis = np.array([0, 10, 20, 30])
        assert first_time_below([0.9, 0.5, 0.2, 0.1], 0.25, axis=axis) == 20

    def test_axis_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            first_time_below([0.9, 0.5], 0.25, axis=[0])

    def test_relative_change_settled(self):
        series = [5.0] * 20
        assert relative_change(series, 5) == pytest.approx(0.0)

    def test_relative_change_trending(self):
        series = list(range(20))
        assert relative_change(series, 5) > 0.1

    def test_relative_change_needs_two_windows(self):
        with pytest.raises(InvalidParameterError):
            relative_change([1.0, 2.0], 2)
