"""grid_sweep: typed experiment grids through the run orchestrator."""

import json

import pytest

from repro.analysis.sweep import grid_sweep
from repro.utils import InvalidParameterError


def canonical(records) -> str:
    return json.dumps(records, sort_keys=True)


class TestGridSweep:
    def test_records_carry_point_and_report(self):
        sweep = grid_sweep("E1", {"k": [3, 4]})
        assert sweep.parameter_names == ("k",)
        assert [record["k"] for record in sweep.records] == [3, 4]
        for record in sweep.records:
            assert record["all_checks_pass"]
            assert record["report"]["experiment_id"] == "E1"
        assert [len(record["report"]["rows"])
                for record in sweep.records] == [3, 4]

    def test_cartesian_product_last_axis_fastest(self):
        sweep = grid_sweep("E2", {"a": [0.25, 0.3], "m": [3, 4]})
        points = [(record["a"], record["m"]) for record in sweep.records]
        assert points == [(0.25, 3), (0.25, 4), (0.3, 3), (0.3, 4)]

    def test_values_coerced_against_schema(self):
        sweep = grid_sweep("E1", {"k": ["3", 4.0]})
        assert [record["k"] for record in sweep.records] == [3, 4]

    def test_records_identical_across_jobs(self):
        results = {}
        for jobs in (1, 4):
            sweep = grid_sweep("E2", {"a": [0.25, 0.3], "m": [3, 4]},
                               jobs=jobs)
            assert len(sweep.records) == 4
            results[jobs] = sweep.records
        assert canonical(results[1]) == canonical(results[4])

    def test_cache_shared_with_single_runs(self, tmp_path):
        from repro.experiments import run_experiment

        direct = run_experiment("E1", params={"k": 3},
                                cache=str(tmp_path))
        sweep = grid_sweep("E1", {"k": [3]}, cache_dir=str(tmp_path))
        assert sweep.records[0]["report"] == direct.to_dict()

    def test_base_params_apply_beneath_every_point(self):
        sweep = grid_sweep("E2", {"a": [0.25, 0.3]}, params={"m": 4})
        for record in sweep.records:
            # m=4, k=3 -> C(6, 2) = 15 state rows.
            assert len(record["report"]["rows"]) == 15

    def test_unknown_axis_rejected(self):
        with pytest.raises(InvalidParameterError, match="valid parameters"):
            grid_sweep("E1", {"zz": [1, 2]})

    def test_empty_axis_rejected(self):
        with pytest.raises(InvalidParameterError, match="no values"):
            grid_sweep("E1", {"k": []})

    def test_unknown_experiment_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown experiment"):
            grid_sweep("E404", {"k": [2]})
