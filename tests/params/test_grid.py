"""The textual --set / --grid spellings and their error messages."""

import pytest

from repro.params import Param, ParamSpace, parse_grid, parse_set, parse_sets
from repro.utils import InvalidParameterError


@pytest.fixture
def space() -> ParamSpace:
    return ParamSpace(
        Param("n", "int", 100, minimum=1),
        Param("eps", "float", 0.05, minimum=0.0, maximum=1.0),
        Param("mode", "str", "a", choices=("a", "b")),
    )


class TestParseSet:
    def test_coerces_value(self, space):
        assert parse_set("n=1e4", space) == ("n", 10_000)

    def test_parse_sets_folds_pairs(self, space):
        overrides = parse_sets(["n=5", "eps=0.25", "n=7"], space)
        assert overrides == {"n": 7, "eps": 0.25}

    def test_parse_sets_none_is_empty(self, space):
        assert parse_sets(None, space) == {}

    @pytest.mark.parametrize("bad", ["n", "=5", "n=", "  =  "])
    def test_malformed_pair_lists_valid_params(self, space, bad):
        with pytest.raises(
            InvalidParameterError, match=r"valid parameters: n, eps, mode"
        ):
            parse_set(bad, space)

    def test_unknown_name_rejected(self, space):
        with pytest.raises(InvalidParameterError, match="unknown parameter"):
            parse_set("zz=1", space)


class TestParseGrid:
    def test_comma_list_axis(self, space):
        grid = parse_grid(["n=1e4,5e4"], space)
        assert grid == {"n": [10_000, 50_000]}

    def test_range_axis_is_inclusive_linspace(self, space):
        grid = parse_grid(["eps=0.01:0.05:5"], space)
        assert grid["eps"] == pytest.approx([0.01, 0.02, 0.03, 0.04, 0.05])
        assert grid["eps"][-1] == 0.05  # exact endpoint

    def test_multiple_axes_keep_order(self, space):
        grid = parse_grid(["eps=0.1,0.2", "n=1,2"], space)
        assert list(grid) == ["eps", "n"]

    def test_string_axis_values(self, space):
        assert parse_grid(["mode=a,b"], space) == {"mode": ["a", "b"]}

    def test_duplicate_axis_rejected(self, space):
        with pytest.raises(InvalidParameterError, match="twice"):
            parse_grid(["n=1,2", "n=3"], space)

    def test_empty_grid_rejected(self, space):
        with pytest.raises(InvalidParameterError, match="at least one"):
            parse_grid([], space)

    @pytest.mark.parametrize(
        "bad", ["n=1:2", "n=1:2:3:4", "n=a:b:3", "n=1:9:1", "n=", "n"]
    )
    def test_malformed_axes_rejected(self, space, bad):
        with pytest.raises(InvalidParameterError):
            parse_grid([bad], space)

    def test_values_validated_against_schema(self, space):
        with pytest.raises(InvalidParameterError, match=">= 1"):
            parse_grid(["n=0,5"], space)
        with pytest.raises(InvalidParameterError, match="unknown parameter"):
            parse_grid(["zz=1,2"], space)


class TestDegenerateRanges:
    """``count=1`` and ``start == stop`` collapse to one exact endpoint
    instead of hitting zero-step linspace arithmetic."""

    def test_equal_endpoints_single_count(self, space):
        assert parse_grid(["eps=0.25:0.25:1"], space) == {"eps": [0.25]}

    def test_equal_endpoints_larger_count(self, space):
        # Zero-step arithmetic used to emit `count` duplicated points.
        assert parse_grid(["eps=0.25:0.25:3"], space) == {"eps": [0.25]}

    def test_equal_endpoints_exact_int(self, space):
        assert parse_grid(["n=5:5:1"], space) == {"n": [5]}

    def test_count_one_over_real_range_rejected(self, space):
        with pytest.raises(InvalidParameterError, match="ambiguous"):
            parse_grid(["eps=0.1:0.2:1"], space)

    def test_count_zero_rejected(self, space):
        with pytest.raises(InvalidParameterError, match="count >= 1"):
            parse_grid(["eps=0.1:0.2:0"], space)


class TestSeedAxis:
    """``seed`` is a first-class grid axis even though no experiment
    declares it as a parameter: the parser coerces it to exact ints and
    grid_plan lifts it into each task's seed coordinate."""

    def test_seed_list_coerces_to_ints(self, space):
        grid = parse_grid(["seed=1,2,1e2"], space)
        assert grid == {"seed": [1, 2, 100]}
        assert all(type(v) is int for v in grid["seed"])

    def test_seed_range_spelling(self, space):
        assert parse_grid(["seed=0:7:8"], space) == {
            "seed": [0, 1, 2, 3, 4, 5, 6, 7]}

    def test_seed_crossed_with_parameter_axes(self, space):
        grid = parse_grid(["n=10,20", "seed=3,4"], space)
        assert list(grid) == ["n", "seed"]

    def test_fractional_seed_rejected(self, space):
        with pytest.raises(InvalidParameterError, match="integers"):
            parse_grid(["seed=0.5,1"], space)
        with pytest.raises(InvalidParameterError, match="integers"):
            parse_grid(["seed=0:1:3"], space)

    def test_declared_seed_param_wins_over_special_case(self):
        # If an experiment ever declares its own `seed` knob, schema
        # coercion applies untouched.
        space = ParamSpace(Param("seed", "float", 0.5, minimum=0.0))
        assert parse_grid(["seed=0.25,0.75"], space) == {
            "seed": [0.25, 0.75]}
