"""The typed parameter schema: coercion, profiles, resolution, JSON."""

import json

import pytest

from repro.params import Param, ParamSpace
from repro.utils import InvalidParameterError


@pytest.fixture
def space() -> ParamSpace:
    return ParamSpace(
        Param("n", "int", 200_000, minimum=2, help="population size"),
        Param("eps", "float", 0.05, minimum=0.0, maximum=1.0),
        Param("cases", "str", "small", choices=("small", "large")),
        Param("observed", "bool", True),
        profiles={"full": {"n": 1_000_000, "cases": "large"}},
    )


class TestParamCoercion:
    def test_int_accepts_scientific_spelling(self):
        param = Param("n", "int", 10, minimum=1)
        assert param.coerce("1e4") == 10_000
        assert param.coerce(5e4) == 50_000
        assert isinstance(param.coerce("1e4"), int)

    def test_int_exact_beyond_float_precision(self):
        # Plain-decimal spellings never round through float.
        big = "10000000000000001"  # 2**53 rounds this off as a float
        assert Param("n", "int", 10).coerce(big) == 10_000_000_000_000_001

    def test_int_rejects_fractional(self):
        with pytest.raises(InvalidParameterError, match="expects int"):
            Param("n", "int", 10).coerce("10.5")

    def test_int_rejects_bool(self):
        with pytest.raises(InvalidParameterError, match="expects int"):
            Param("n", "int", 10).coerce(True)

    def test_float_accepts_strings(self):
        assert Param("x", "float", 0.0).coerce("0.25") == 0.25

    def test_float_rejects_nan(self):
        with pytest.raises(InvalidParameterError, match="expects float"):
            Param("x", "float", 0.0).coerce("nan")

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("true", True),
            ("1", True),
            ("yes", True),
            ("false", False),
            ("0", False),
            ("off", False),
        ],
    )
    def test_bool_spellings(self, text, expected):
        assert Param("flag", "bool", False).coerce(text) is expected

    def test_bounds_enforced(self):
        param = Param("k", "int", 4, minimum=2, maximum=8)
        with pytest.raises(InvalidParameterError, match=">= 2"):
            param.coerce(1)
        with pytest.raises(InvalidParameterError, match="<= 8"):
            param.coerce(9)

    def test_choices_enforced(self):
        param = Param("mode", "str", "a", choices=("a", "b"))
        with pytest.raises(InvalidParameterError, match="one of"):
            param.coerce("c")

    def test_default_is_validated(self):
        with pytest.raises(InvalidParameterError, match=">= 5"):
            Param("n", "int", 1, minimum=5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError, match="kind"):
            Param("n", "list", [])

    def test_bad_name_rejected(self):
        with pytest.raises(InvalidParameterError, match="identifier"):
            Param("not a name", "int", 1)


class TestParamSpace:
    def test_declaration_order_preserved(self, space):
        assert space.names == ("n", "eps", "cases", "observed")

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(InvalidParameterError, match="twice"):
            ParamSpace(Param("n", "int", 1), Param("n", "int", 2))

    def test_profile_overrides_validated_at_construction(self):
        with pytest.raises(InvalidParameterError, match="unknown parameter"):
            ParamSpace(Param("n", "int", 1), profiles={"full": {"zz": 2}})
        with pytest.raises(InvalidParameterError, match=">="):
            ParamSpace(Param("n", "int", 5, minimum=2), profiles={"full": {"n": 0}})

    def test_builtin_profiles_always_exist(self):
        empty = ParamSpace()
        assert empty.profiles == ("fast", "full")
        assert empty.profile_overrides("full") == {}

    def test_resolve_layers_defaults_profile_overrides(self, space):
        fast = space.resolve()
        assert fast["n"] == 200_000 and fast["cases"] == "small"
        full = space.resolve("full")
        assert full["n"] == 1_000_000 and full["cases"] == "large"
        mixed = space.resolve("full", {"n": "5e5"})
        assert mixed["n"] == 500_000 and mixed["cases"] == "large"

    def test_resolve_rejects_unknown_parameter(self, space):
        with pytest.raises(InvalidParameterError, match="valid parameters: n, eps"):
            space.resolve("fast", {"zz": 1})

    def test_resolve_rejects_unknown_profile(self, space):
        with pytest.raises(InvalidParameterError, match="known profiles"):
            space.resolve("turbo")

    def test_custom_profiles_resolve(self):
        space = ParamSpace(Param("n", "int", 10), profiles={"huge": {"n": 10_000}})
        assert space.resolve("huge")["n"] == 10_000
        assert "huge" in space.profiles

    def test_empty_custom_profile_survives_json_round_trip(self):
        space = ParamSpace(Param("n", "int", 10), profiles={"smoke": {}})
        rebuilt = ParamSpace.from_dict(space.to_dict())
        assert rebuilt.resolve("smoke")["n"] == 10

    def test_json_round_trip(self, space):
        payload = space.to_dict()
        json.dumps(payload, allow_nan=False)  # strictly serializable
        rebuilt = ParamSpace.from_dict(payload)
        assert rebuilt.to_dict() == payload
        assert rebuilt.resolve("full").canonical() == space.resolve("full").canonical()

    def test_describe_table_shape(self, space):
        headers, rows = space.describe_table()
        assert "param" in headers
        assert [row[0] for row in rows] == list(space.names)


class TestResolvedParams:
    def test_canonical_is_spelling_independent(self, space):
        left = space.resolve("fast", {"n": "1e4"})
        right = space.resolve("fast", {"n": 10_000})
        assert left.canonical() == right.canonical()

    def test_canonical_collapses_default_equal_overrides(self, space):
        base = space.resolve("fast").canonical()
        assert base == space.resolve("fast", {"n": 200_000}).canonical()

    def test_canonical_differs_across_profiles(self, space):
        assert space.resolve("fast").canonical() != space.resolve("full").canonical()

    def test_mapping_interface(self, space):
        resolved = space.resolve()
        assert "n" in resolved
        assert resolved.get("missing", 3) == 3
        assert set(resolved) == set(space.names)
        assert len(resolved) == len(space)
        with pytest.raises(InvalidParameterError, match="unknown parameter"):
            resolved["missing"]

    def test_summary_renders_pairs(self, space):
        assert "n=200000" in space.resolve().summary()
