"""Benchmark E5 — Theorem 2.7 (k-IGT stationary distribution).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E5.txt) and asserts its shape checks.
"""


def test_e5_igt_stationary(experiment_runner):
    experiment_runner("E5")
