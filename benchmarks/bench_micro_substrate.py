"""Micro-benchmarks of the substrate primitives.

Unlike the experiment benchmarks (single-shot reproduction runs), these are
classic repeated-timing benchmarks of the hot paths a user's own experiments
will lean on: the Ehrenfest count simulator, the agent-level IGT step loop,
the exact stationary solver, the payoff-table builder, and the repeated-game
Monte Carlo engine.
"""

import numpy as np
from bench_workloads import EPIDEMIC, GRID, epidemic_states, igt_counts

from repro.core.equilibrium import RDSetting, payoff_table
from repro.core.igt import GenerosityGrid
from repro.core.population_igt import IGTSimulation, PopulationShares
from repro.engine import AgentBackend, CountBackend, igt_model, protocol_model
from repro.games.donation import DonationGame
from repro.games.repeated import RepeatedGameEngine
from repro.games.strategies import generous_tit_for_tat
from repro.markov.ehrenfest import EhrenfestProcess

SHARES = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
SETTING = RDSetting(b=4.0, c=1.0, delta=0.7, s1=0.5)


def test_ehrenfest_count_simulation_100k_steps(benchmark):
    process = EhrenfestProcess(k=8, a=0.4, b=0.1, m=500)
    start = (500,) + (0,) * 7

    def run():
        return process.simulate_counts(start, 100_000, seed=1)

    final = benchmark(run)
    assert final.sum() == 500


def test_ehrenfest_vectorized_state_sampler(benchmark):
    process = EhrenfestProcess(k=4, a=0.4, b=0.1, m=300)
    start = (300, 0, 0, 0)

    def run():
        return process.sample_state_at(start, 50_000, seed=2, size=8)

    samples = benchmark(run)
    assert samples.shape == (8, 4)


def test_igt_agent_simulation_100k_steps(benchmark):
    def run():
        sim = IGTSimulation(n=1000, shares=SHARES, grid=GRID, seed=3)
        sim.run(100_000)
        return sim.counts

    counts = benchmark(run)
    assert counts.sum() == 500


def test_exact_stationary_solve_k3_m12(benchmark):
    process = EhrenfestProcess(k=3, a=0.3, b=0.2, m=12)
    chain = process.exact_chain()

    def run():
        return chain.stationary_distribution(method="solve")

    pi = benchmark(run)
    assert pi.sum() == 1.0 or abs(pi.sum() - 1.0) < 1e-9


def test_payoff_table_k16(benchmark):
    grid = GenerosityGrid(k=16, g_max=0.6)

    def run():
        return payoff_table(grid, SETTING)

    table = benchmark(run)
    assert table.shape == (18, 18)


def test_repeated_game_engine_1k_games(benchmark):
    engine = RepeatedGameEngine(DonationGame(4.0, 1.0), delta=0.8)
    first = generous_tit_for_tat(0.3, 0.5)
    second = generous_tit_for_tat(0.6, 0.5)

    def run():
        return engine.play_many(first, second, 1000, seed=4)

    payoffs = benchmark(run)
    assert payoffs.shape == (1000, 2)


def test_engine_agent_backend_epidemic_n1e5(benchmark):
    """Agent engine, generic 3-state protocol, 200k interactions at n=1e5."""
    states = epidemic_states(100_000)

    def run():
        backend = AgentBackend(protocol_model(EPIDEMIC), states, seed=1)
        return backend.run(200_000).counts

    counts = benchmark(run)
    assert counts.sum() == 100_000


def test_engine_count_backend_epidemic_n1e5(benchmark):
    """Count engine, same protocol/size as the agent case above."""
    start = np.bincount(epidemic_states(100_000), minlength=3)

    def run():
        backend = CountBackend(protocol_model(EPIDEMIC), start, seed=1)
        return backend.run(200_000).counts

    counts = benchmark(run)
    assert counts.sum() == 100_000


def test_engine_count_backend_igt_n1e5(benchmark):
    """Count engine on the paper's k-IGT dynamics at n=1e5."""
    start = igt_counts(100_000)

    def run():
        backend = CountBackend(igt_model(GRID.k), start, seed=2)
        return backend.run(200_000).counts

    counts = benchmark(run)
    assert counts.sum() == 100_000


def test_engine_count_backend_igt_n1e3(benchmark):
    """Count engine at small n (where the agent engine is competitive)."""
    start = igt_counts(1000)

    def run():
        backend = CountBackend(igt_model(GRID.k), start, seed=3)
        return backend.run(200_000).counts

    counts = benchmark(run)
    assert counts.sum() == 1000


def test_de_gap_k64(benchmark):
    from repro.core.equilibrium import de_gap, mean_stationary_mu

    grid = GenerosityGrid(k=64, g_max=0.6)
    mu = mean_stationary_mu(64, beta=0.2)

    def run():
        return de_gap(mu, grid, SETTING, SHARES)

    gap = benchmark(run)
    assert np.isfinite(gap) and gap >= 0
