"""Benchmark E4 — Theorem 2.5 (mixing-time scaling).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E4.txt) and asserts its shape checks.
"""


def test_e4_mixing_time_scaling(experiment_runner):
    experiment_runner("E4")
