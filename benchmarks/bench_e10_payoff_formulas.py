"""Benchmark E10 — Eqs. 44-46 (expected payoff formulas).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E10.txt) and asserts its shape checks.
"""


def test_e10_payoff_formulas(experiment_runner):
    experiment_runner("E10")
