"""Benchmark E6 — Proposition 2.8 (average stationary generosity).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E6.txt) and asserts its shape checks.
"""


def test_e6_average_generosity(experiment_runner):
    experiment_runner("E6")
