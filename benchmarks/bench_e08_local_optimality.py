"""Benchmark E8 — Proposition 2.2 (local optimality).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E8.txt) and asserts its shape checks.
"""


def test_e8_local_optimality(experiment_runner):
    experiment_runner("E8")
