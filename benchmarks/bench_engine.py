"""Engine throughput benchmark — emits machine-readable BENCH_engine.json.

Measures interactions/second of the simulation engines across population
sizes ``n ∈ {10^3, 10^4, 10^5, 10^7}`` on four workloads, and compares
them against faithful reimplementations of the *seed* (pre-engine)
per-interaction loops:

* ``igt`` — the paper's k-IGT dynamics (k = 8, the headline workload).
  Cases: the frozen seed loop, ``agent-seq`` (the engine's sequential
  list loop, ``vectorized=False``), ``agent`` (the chunked vectorized
  kernel, bit-for-bit identical trajectories), ``count``, and ``auto``
  (the dispatcher's pick, annotated with what it resolved to).
* ``igt-observed`` — the E4/E13 mixing shape: the k-IGT count chain with
  an observation snapshot and a stop-predicate check every 2 500
  interactions; baseline: the PR 1 per-step-batch path.
* ``igt-action`` — the action-observed rule: the agent backend plays a
  Monte-Carlo repeated game per GTFT interaction, the count backend
  applies the exact per-pair classification law vectorized.
* ``epidemic`` — a generic 3-state one-way protocol; seed baseline: the
  seed ``Simulator`` table loop.
* ``igt-weighted`` — the heterogeneous-activity extension: the same
  k-IGT dynamics under a power-law ``WeightedScheduler``.  Cases: the
  agent backend's kernel fed weighted pair blocks (alias-table draws),
  and the ``WeightedCountBackend`` product-space count chain (the
  array-proxy kernel up to ``WEIGHTED_PROXY_MAX_N``, heterogeneous
  birthday batching beyond); their crossover feeds
  ``auto_thresholds["weighted_crossover_n"]``.  This workload runs on
  its own size grid — the shared sizes plus ``n = 10^6`` in every mode
  — so CI gates the weighted path at the proxy ceiling and full runs
  record the ``n = 10^7`` birthday-territory claim.
* ``igt-topology`` — the graph-restricted extension: the same k-IGT
  dynamics on a circulant ring (half-width 2), pairs drawn uniformly
  from the directed edges.  Cases: the agent backend's kernel fed
  ``GraphScheduler`` blocks (CSR edge-table draws — the quenched graph
  process), and ``CountBackend`` under the same vertex-transitive graph
  (the degree-annealed chain).  Measured up to ``n = 10^5`` in smoke
  and ``10^6`` in full mode — graph construction (O(n) CSR build) is
  hoisted outside the timed lambdas like the weighted alias tables.
* ``igt-stream`` — the constant-memory streaming claim: the k-IGT count
  chain at ``n = 10^9`` streaming ``>= 10^4`` observation checkpoints
  through a :class:`~repro.engine.observe.JsonlSink`, run in a child
  process whose peak RSS is asserted under a fixed ceiling
  (:data:`STREAM_RSS_CEILING_MB`) — the observation pipeline is O(k)
  per checkpoint no matter how large the population or how long the
  trajectory.
* ``logit`` / ``imitation`` — the *generic* (stochastic) models.
  ``agent-seq`` is the per-interaction ``apply_scalar`` loop;
  ``agent`` is the batched kernel path (``vectorized=True``,
  distribution-identical), whose ``speedup_vs_agent_seq`` is the
  generic-model vectorization claim.

The file also records host metadata (python/numpy versions, CPU count)
and the ``auto_thresholds`` section the ``backend="auto"`` dispatcher
reads (log-interpolated agent/count crossovers), and every run appends
its full payload to the append-only ``BENCH_history.jsonl`` so the perf
trajectory across PRs stays machine-readable.

Run with::

    PYTHONPATH=src python benchmarks/bench_engine.py

and commit the regenerated ``BENCH_engine.json`` (repo root).
``--smoke`` runs a reduced matrix (no seed loops, no ``n = 10^7``, fewer
interactions) for CI, where ``scripts/check_bench_regression.py`` gates
agent- and count-backend throughput against the committed file;
``--output`` redirects the JSON (and skips the history append).  Not
collected by pytest — this is a standalone timing script.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import platform
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from bench_workloads import (  # noqa: E402
    EPIDEMIC,
    GRID,
    epidemic_states,
    igt_states,
)

from repro.core.igt import AgentType  # noqa: E402
from repro.engine import (  # noqa: E402
    AgentBackend,
    CountBackend,
    ImitationModel,
    LogitResponseModel,
    WeightedCountBackend,
    igt_action_model,
    igt_model,
    protocol_model,
    weights_from_spec,
)
from repro.engine.topology import ring_graph  # noqa: E402
from repro.population.scheduler import (  # noqa: E402
    GraphScheduler,
    WeightedScheduler,
)

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"
HISTORY = OUTPUT.parent / "BENCH_history.jsonl"

#: When the count backend never catches the agent backend inside the
#: measured grid, the crossover is recorded as this sentinel ("never in
#: practical range") rather than extrapolated.
CROSSOVER_CEILING = 100_000_000


def host_metadata() -> dict:
    """The machine coordinates a throughput number is meaningless without."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    }


def crossover_n(points) -> int:
    """Smallest ``n`` where count throughput matches agent throughput.

    ``points`` is ``[(n, agent_ips, count_ips), ...]`` sorted by ``n``.
    Log-linear interpolation of ``log(count/agent)`` between the last
    agent-won size and the first count-won size; the first grid point if
    count already wins there, :data:`CROSSOVER_CEILING` if it never does.
    """
    previous = None
    for n, agent_ips, count_ips in points:
        if count_ips >= agent_ips:
            if previous is None:
                return int(n)
            n0, a0, c0 = previous
            gap0 = math.log(c0 / a0)
            gap1 = math.log(count_ips / agent_ips)
            t = -gap0 / (gap1 - gap0) if gap1 != gap0 else 1.0
            return int(round(math.exp(
                math.log(n0) + t * (math.log(n) - math.log(n0)))))
        previous = (n, agent_ips, count_ips)
    return CROSSOVER_CEILING


# ----------------------------------------------------------------------
# Seed baselines: the pre-engine per-interaction loops, frozen.
# ----------------------------------------------------------------------
def seed_simulator_loop(states, table, steps, rng):
    """The seed ``Simulator.run`` inner loop (per-interaction, NumPy)."""
    n = states.size
    counts = np.bincount(states, minlength=table.shape[0]).astype(np.int64)
    block = 65536
    done = 0
    while done < steps:
        batch = min(block, steps - done)
        initiators = rng.integers(0, n, size=batch)
        responders = rng.integers(0, n - 1, size=batch)
        responders = responders + (responders >= initiators)
        for offset in range(batch):
            i = initiators[offset]
            j = responders[offset]
            u = states[i]
            v = states[j]
            new_u = table[u, v, 0]
            new_v = table[u, v, 1]
            if new_u != u:
                states[i] = new_u
                counts[u] -= 1
                counts[new_u] += 1
            if new_v != v:
                states[j] = new_v
                counts[v] -= 1
                counts[new_v] += 1
        done += batch
    return counts


def seed_igt_loop(types, indices, counts, k, steps, rng):
    """The seed ``IGTSimulation.run`` fast path (per-interaction, NumPy)."""
    n = types.size
    block = 65536
    done = 0
    while done < steps:
        batch = min(block, steps - done)
        first = rng.integers(0, n, size=batch)
        second = rng.integers(0, n - 1, size=batch)
        second = second + (second >= first)
        for offset in range(batch):
            i = first[offset]
            if types[i] == AgentType.GTFT:
                j = second[offset]
                partner = types[j]
                old = indices[i]
                if partner == AgentType.AD:
                    new = old - 1 if old > 0 else old
                else:
                    new = old + 1 if old < k - 1 else old
                if new != old:
                    indices[i] = new
                    counts[old] -= 1
                    counts[new] += 1
        done += batch
    return counts


def timed(fn, repeats: int = 1) -> float:
    """Wall time of ``fn()`` — the fastest of ``repeats`` fresh calls.

    Short cases are dominated by timer noise and host jitter; best-of-N
    keeps the regression gate stable without lengthening the runs.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


#: Observation / stop-check cadence of the observed mixing workload.
OBSERVE_EVERY = 2500


def perstep_observed_run(model, counts, steps, stop_when, seed) -> None:
    """The PR 1 per-step-batch path for an observed/checked count run.

    Before cross-boundary batching, ``check_stop_every=1`` capped every
    birthday batch at a single interaction and evaluated the predicate
    after each one; single-step ``run`` calls with an external check
    reproduce exactly that work profile (``vectorized=False`` pins the
    birthday path the PR 1 engine actually ran).
    """
    backend = CountBackend(model, counts, seed=seed, vectorized=False)
    for _ in range(steps):
        backend.run(1)
        if stop_when(backend.counts_live):
            break


def action_setting():
    """The RDSetting of the action workload (donation game, delta=0.9)."""
    from repro.core.equilibrium import RDSetting

    return RDSetting(b=4.0, c=1.0, delta=0.9, s1=0.5)


def agent_action_run(n: int, steps: int, seed: int) -> None:
    """Agent-backend action mode: real Monte-Carlo game per interaction."""
    from repro.core.igt import GenerosityGrid
    from repro.core.population_igt import IGTSimulation, PopulationShares

    shares = PopulationShares(alpha=0.3, beta=0.2, gamma=0.5)
    grid = GenerosityGrid(k=GRID.k, g_max=GRID.g_max)
    sim = IGTSimulation(n=n, shares=shares, grid=grid, seed=seed,
                        mode="action", setting=action_setting(),
                        initial_indices=0, backend="agent")
    sim.run(steps)


#: Hard RSS ceiling (MB) of the n = 10^9 streamed observation case.
#: The count chain is O(k) state and the JsonlSink is O(batch) memory,
#: so the footprint is the interpreter + numpy baseline (~110 MB
#: measured) regardless of n or checkpoint count; the assertion is the
#: tentpole's constant-memory claim, enforced on every bench run.
STREAM_RSS_CEILING_MB = 256

#: Subprocess driver of the streamed case: a fresh interpreter so the
#: peak RSS measures this run alone, not the bench harness's own
#: high-water mark.  ``VmHWM`` (reset on exec) rather than
#: ``ru_maxrss`` (inherited across fork+exec, so it would report the
#: parent's footprint); the getrusage fallback covers /proc-less
#: hosts, where the harness parent must then stay slim itself.
#: argv: n steps observe_every k jsonl_path.
STREAM_DRIVER = """
import json, resource, sys, time
import numpy as np
from repro.engine import CountBackend, JsonlSink, igt_model

def peak_rss_kb():
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

n, steps, every, k = (int(a) for a in sys.argv[1:5])
counts = np.full(k + 2, n // (k + 2), dtype=np.int64)
counts[0] += n - counts.sum()
sink = JsonlSink(sys.argv[5])
backend = CountBackend(igt_model(k), counts, seed=1)
start = time.perf_counter()
backend.run(steps, observe_every=every, observe=sink)
seconds = time.perf_counter() - start
position = sink.position()
sink.close()
print(json.dumps({
    "seconds": seconds,
    "max_rss_kb": peak_rss_kb(),
    "records": position["records"], "bytes": position["bytes"]}))
"""


def stream_memory_probe(n: int, steps: int, every: int) -> dict:
    """Run the streamed n = 10^9 case in a child and parse its stats."""
    import subprocess
    import tempfile

    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = str(pathlib.Path(repro.__file__).resolve()
                            .parents[1])
    with tempfile.TemporaryDirectory() as scratch:
        jsonl = str(pathlib.Path(scratch) / "stream.jsonl")
        completed = subprocess.run(
            [sys.executable, "-c", STREAM_DRIVER, str(n), str(steps),
             str(every), str(GRID.k), jsonl],
            env=env, capture_output=True, text=True, timeout=600,
            check=True)
    return json.loads(completed.stdout)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=("reduced CI matrix: no seed-loop baselines, no n=10^7, "
              "fewer interactions per case"))
    parser.add_argument(
        "--output", type=pathlib.Path, default=OUTPUT,
        help=f"output JSON path (default {OUTPUT}; non-default paths "
             "skip the BENCH_history.jsonl append")
    args = parser.parse_args(argv)

    results = []

    def record(workload, backend, n, steps, seconds, baseline=None,
               perstep_baseline=None, agent_seq_baseline=None,
               resolved=None):
        entry = {
            "workload": workload,
            "backend": backend,
            "n": n,
            "interactions": steps,
            "seconds": round(seconds, 4),
            "interactions_per_sec": round(steps / seconds),
        }
        if resolved is not None:
            entry["resolved"] = resolved
        if baseline is not None:
            entry["speedup_vs_seed_loop"] = round(steps / seconds / baseline,
                                                  2)
        if perstep_baseline is not None:
            entry["speedup_vs_perstep"] = round(
                steps / seconds / perstep_baseline, 2)
        if agent_seq_baseline is not None:
            entry["speedup_vs_agent_seq"] = round(
                steps / seconds / agent_seq_baseline, 2)
        results.append(entry)
        per_sec = steps / seconds
        extra = ""
        if agent_seq_baseline is not None:
            extra = f"  ({entry['speedup_vs_agent_seq']}x agent-seq)"
        elif baseline is not None:
            extra = f"  ({entry['speedup_vs_seed_loop']}x seed)"
        elif perstep_baseline is not None:
            extra = f"  ({entry['speedup_vs_perstep']}x per-step)"
        elif resolved is not None:
            extra = f"  (-> {resolved})"
        print(f"{workload:>12} {backend:>13}  n=10^{len(str(n)) - 1}  "
              f"{per_sec:>12,.0f}/s{extra}")
        return per_sec

    # Engine cases always run the full interaction budget: every backend
    # now clears ~6M interactions/s, so 10^6 steps cost CI milliseconds,
    # and workloads with absorbing dynamics (epidemic) would otherwise
    # report budget-dependent throughput that breaks the smoke-vs-full
    # regression comparison.  Only the slow *baselines* shrink in smoke.
    steps = 1_000_000
    perstep_steps = 20_000 if args.smoke else 50_000
    action_agent_steps = 5_000 if args.smoke else 20_000
    generic_seq_steps = 100_000 if args.smoke else 200_000
    repeats = 3 if args.smoke else 1
    population_sizes = ((1000, 10_000, 100_000) if args.smoke
                        else (1000, 10_000, 100_000, 10_000_000))
    with_seed_loops = not args.smoke
    strategy_points = []
    action_points = []
    weighted_points = []
    igt_case_throughput = {}
    # Fixed payoff matrix of the generic-model workloads (8 strategies,
    # deterministic across runs).
    generic_payoffs = np.random.default_rng(0).normal(size=(8, 8))
    for n in population_sizes:
        # Small-n cases finish in milliseconds where jitter dominates;
        # best-of-3 stabilizes them even in full mode.
        n_repeats = max(repeats, 3 if n <= 10_000 else 1)
        # --- k-IGT workload ------------------------------------------
        model = igt_model(GRID.k)
        states = igt_states(n)
        if with_seed_loops and n <= 100_000:  # seed loop too slow beyond
            types = np.empty(n, dtype=np.int64)
            types[:n // 2] = AgentType.GTFT
            types[n // 2:n // 2 + (3 * n) // 10] = AgentType.AC
            types[n // 2 + (3 * n) // 10:] = AgentType.AD
            indices = np.where(states < GRID.k, states, 0)
            counts = np.bincount(indices[types == AgentType.GTFT],
                                 minlength=GRID.k).astype(np.int64)
            rng = np.random.default_rng(0)
            baseline = steps / timed(
                lambda: seed_igt_loop(types, indices, counts, GRID.k, steps,
                                      rng))
            record("igt", "seed-loop", n, steps, steps / baseline)
        else:
            baseline = None
        agent_seq = record(
            "igt", "agent-seq", n, steps,
            timed(lambda: AgentBackend(model, states, seed=1,
                                       vectorized=False).run(steps),
                  n_repeats),
            baseline)
        agent_ips = record(
            "igt", "agent", n, steps,
            timed(lambda: AgentBackend(model, states, seed=1).run(steps),
                  n_repeats),
            baseline, agent_seq_baseline=agent_seq)
        start_counts = np.bincount(states, minlength=GRID.k + 2)
        count_ips = record(
            "igt", "count", n, steps,
            timed(lambda: CountBackend(model, start_counts,
                                       seed=1).run(steps), n_repeats),
            baseline)
        strategy_points.append((n, agent_ips, count_ips))
        igt_case_throughput[n] = {"agent": agent_ips, "count": count_ips}

        # --- observed mixing workload (E4/E13 shape) -----------------
        model = igt_model(GRID.k)
        start_counts = np.bincount(igt_states(n), minlength=GRID.k + 2)
        m = int(start_counts[:GRID.k].sum())
        index_vector = np.arange(GRID.k)
        unreachable = (GRID.k - 1) * m  # all GTFT at the top index

        def observed_stop(counts):
            return float(index_vector @ counts[:GRID.k]) >= unreachable

        perstep = perstep_steps / timed(
            lambda: perstep_observed_run(model, start_counts, perstep_steps,
                                         observed_stop, seed=1), n_repeats)
        record("igt-observed", "count-perstep", n, perstep_steps,
               perstep_steps / perstep)
        record("igt-observed", "count", n, steps,
               timed(lambda: CountBackend(model, start_counts, seed=1).run(
                   steps, stop_when=observed_stop,
                   observe_every=OBSERVE_EVERY,
                   check_stop_every=OBSERVE_EVERY), n_repeats),
               perstep_baseline=perstep)

        # --- action-observed workload --------------------------------
        from repro.core.igt import GenerosityGrid as _Grid

        action_model = igt_action_model(_Grid(k=GRID.k, g_max=GRID.g_max),
                                        action_setting())
        action_agent = None
        if n <= 10_000:  # the game-playing loop is ~30 µs/interaction
            action_agent = record(
                "igt-action", "agent", n, action_agent_steps,
                timed(lambda: agent_action_run(n, action_agent_steps,
                                               seed=1), n_repeats))
        action_count = record(
            "igt-action", "count", n, steps,
            timed(lambda: CountBackend(action_model, start_counts,
                                       seed=1).run(steps), n_repeats))
        if action_agent is not None:
            action_points.append((n, action_agent, action_count))

        # --- generic epidemic protocol -------------------------------
        model = protocol_model(EPIDEMIC)
        states = epidemic_states(n)
        if with_seed_loops and n <= 100_000:
            table = EPIDEMIC.transition_table()
            rng = np.random.default_rng(0)
            scratch = states.copy()
            baseline = steps / timed(
                lambda: seed_simulator_loop(scratch, table, steps, rng))
            record("epidemic", "seed-loop", n, steps, steps / baseline)
        else:
            baseline = None
        record("epidemic", "agent", n, steps,
               timed(lambda: AgentBackend(model, states, seed=1).run(steps),
                     n_repeats),
               baseline)
        start_counts = np.bincount(states, minlength=3)
        record("epidemic", "count", n, steps,
               timed(lambda: CountBackend(model, start_counts,
                                          seed=1).run(steps), n_repeats),
               baseline)

        # --- generic stochastic models: per-interaction loop vs the
        # batched kernel path (vectorized=True, law-identical) --------
        for workload, generic_model in (
                ("logit", LogitResponseModel(generic_payoffs)),
                ("imitation", ImitationModel(generic_payoffs))):
            generic_states = (np.arange(n) % 8).astype(np.int64)
            sequential = record(
                workload, "agent-seq", n, generic_seq_steps,
                timed(lambda: AgentBackend(
                    generic_model, generic_states,
                    seed=1).run(generic_seq_steps), n_repeats))
            record(workload, "agent", n, steps,
                   timed(lambda: AgentBackend(
                       generic_model, generic_states, seed=1,
                       vectorized=True).run(steps), n_repeats),
                   agent_seq_baseline=sequential)

    # --- weighted k-IGT workload (heterogeneous activity) ------------
    # Measured on its own size grid: the alias-table + heterogeneous-
    # birthday claims live at n = 10^6 (the smoke-gated size — proxy
    # ceiling) and n = 10^7 (full mode — birthday territory), beyond
    # the shared matrix's smoke sizes.
    # Backends are constructed *outside* the timed lambdas here, unlike
    # the uniform workloads: the weighted samplers pay a one-time O(n)
    # alias-table build (seconds at n = 10^7, dominated by first-touch
    # page faults, amortized over any real run), which would otherwise
    # swamp the 10^6-interaction probe and report setup latency instead
    # of steady-state throughput.  Re-running one instance is sound —
    # the per-interaction cost of these chains is stationary.
    weighted_sizes = tuple(sorted(set(population_sizes) | {1_000_000}))
    for n in weighted_sizes:
        # With construction hoisted, every probe is sub-second even at
        # n = 10^7 — best-of-3 everywhere, the first call additionally
        # absorbing the cache-cold pass over freshly built tables.
        n_repeats = max(repeats, 3)
        model = igt_model(GRID.k)
        states = igt_states(n)
        activity = weights_from_spec("powerlaw", n)
        agent_backend = AgentBackend(
            model, states, scheduler=WeightedScheduler(activity, seed=1))
        weighted_agent = record(
            "igt-weighted", "agent", n, steps,
            timed(lambda: agent_backend.run(steps), n_repeats))
        count_backend = WeightedCountBackend.from_agent_states(
            model, states, activity, seed=1)
        weighted_count = record(
            "igt-weighted", "count", n, steps,
            timed(lambda: count_backend.run(steps), n_repeats))
        weighted_points.append((n, weighted_agent, weighted_count))
        if n == 10_000_000:
            # The O(k)-memory strategy beyond WEIGHTED_PROXY_MAX_N,
            # forced at the largest measured size.  Ungated (not an
            # "agent"/"count" backend name): a baseline for the
            # heterogeneous-birthday claim, not a dispatch target here.
            birthday_backend = WeightedCountBackend.from_agent_states(
                model, states, activity, seed=1, vectorized=False)
            record(
                "igt-weighted", "count-birthday", n, steps,
                timed(lambda: birthday_backend.run(steps), n_repeats))

    # --- graph-restricted workload (ring topology) -------------------
    # Same hoisting rationale as the weighted section: the CSR edge
    # table is a one-time O(n) build that would otherwise swamp the
    # probe.  No crossover feeds dispatch from here — under a topology
    # ``auto`` always resolves to "agent" (quenched semantics); the
    # count case records the annealed chain's throughput for the
    # explicit-opt-in route.
    topology_sizes = (population_sizes if args.smoke
                      else tuple(sorted(
                          (set(population_sizes) | {1_000_000})
                          - {10_000_000})))
    for n in topology_sizes:
        n_repeats = max(repeats, 3)
        model = igt_model(GRID.k)
        states = igt_states(n)
        graph = ring_graph(n, half_width=2)
        agent_backend = AgentBackend(
            model, states, scheduler=GraphScheduler(graph, seed=1))
        record("igt-topology", "agent", n, steps,
               timed(lambda: agent_backend.run(steps), n_repeats))
        count_backend = CountBackend(
            model, np.bincount(states, minlength=model.n_states),
            scheduler=GraphScheduler(graph, seed=1))
        record("igt-topology", "count", n, steps,
               timed(lambda: count_backend.run(steps), n_repeats))

    # --- constant-memory streaming at n = 10^9 -----------------------
    # The tentpole claim measured, not asserted on faith: a count-chain
    # run at n = 10^9 streaming >= 10^4 observation checkpoints through
    # a JsonlSink, in a child process whose peak RSS must stay under a
    # fixed ceiling.  "count-stream" is not a gated backend name — the
    # throughput gate compares agent/count cases; this case gates
    # *memory*, right here, on every run including smoke.
    stream_steps, stream_every = ((100_000, 10) if args.smoke
                                  else (1_000_000, 100))
    stream_n = 1_000_000_000
    probe = stream_memory_probe(stream_n, stream_steps, stream_every)
    max_rss_mb = probe["max_rss_kb"] / 1024.0
    assert probe["records"] == stream_steps // stream_every + 1
    assert max_rss_mb < STREAM_RSS_CEILING_MB, (
        f"streamed n=10^9 run peaked at {max_rss_mb:.0f} MB RSS — over "
        f"the {STREAM_RSS_CEILING_MB} MB constant-memory ceiling")
    record("igt-stream", "count-stream", stream_n, stream_steps,
           probe["seconds"])
    results[-1].update({
        "max_rss_mb": round(max_rss_mb, 1),
        "rss_ceiling_mb": STREAM_RSS_CEILING_MB,
        "stream_records": probe["records"],
        "stream_bytes": probe["bytes"],
    })
    print(f"{'igt-stream':>12} {'max-rss':>13}  n=10^9  "
          f"{max_rss_mb:>9.1f} MB  (ceiling {STREAM_RSS_CEILING_MB} MB, "
          f"{probe['records']} checkpoints)")

    thresholds = {
        "strategy_crossover_n": crossover_n(strategy_points),
        "action_crossover_n": crossover_n(action_points)
        if action_points else 1000,
        "weighted_crossover_n": crossover_n(weighted_points),
    }
    # The dispatcher's pick per size, annotated for the record (the
    # timing is the resolved case's — dispatch itself is a dict lookup).
    for n, agent_ips, count_ips in strategy_points:
        resolved = ("count" if n >= thresholds["strategy_crossover_n"]
                    else "agent")
        ips = igt_case_throughput[n][resolved]
        record("igt", "auto", n, steps, steps / ips, resolved=resolved)

    payload = {
        "interactions_per_case": steps,
        "mode": "smoke" if args.smoke else "full",
        "timestamp": round(time.time(), 2),
        "host": host_metadata(),
        "auto_thresholds": thresholds,
        "cases": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"auto thresholds: {thresholds}")
    print(f"wrote {args.output}")
    if args.output.resolve() == OUTPUT:
        with HISTORY.open("a") as history:
            history.write(json.dumps(payload) + "\n")
        print(f"appended to {HISTORY}")


if __name__ == "__main__":
    main()
