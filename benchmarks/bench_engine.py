"""Engine throughput benchmark — emits machine-readable BENCH_engine.json.

Measures interactions/second of the simulation engines across population
sizes ``n ∈ {10^3, 10^5, 10^7}`` on two workloads, and compares them
against faithful reimplementations of the *seed* (pre-engine)
per-interaction loops:

* ``igt`` — the paper's k-IGT dynamics (k = 8, the headline workload);
  seed baseline: the ``IGTSimulation`` fast-path loop.
* ``epidemic`` — a generic 3-state one-way protocol; seed baseline: the
  ``Simulator`` table loop.

Run with::

    PYTHONPATH=src python benchmarks/bench_engine.py

and commit the regenerated ``BENCH_engine.json`` (repo root) so later PRs
can track the performance trajectory.  Not collected by pytest — this is a
standalone timing script.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from bench_workloads import (  # noqa: E402
    EPIDEMIC,
    GRID,
    epidemic_states,
    igt_states,
)

from repro.core.igt import AgentType  # noqa: E402
from repro.engine import (  # noqa: E402
    AgentBackend,
    CountBackend,
    igt_model,
    protocol_model,
)

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"


# ----------------------------------------------------------------------
# Seed baselines: the pre-engine per-interaction loops, frozen.
# ----------------------------------------------------------------------
def seed_simulator_loop(states, table, steps, rng):
    """The seed ``Simulator.run`` inner loop (per-interaction, NumPy)."""
    n = states.size
    counts = np.bincount(states, minlength=table.shape[0]).astype(np.int64)
    block = 65536
    done = 0
    while done < steps:
        batch = min(block, steps - done)
        initiators = rng.integers(0, n, size=batch)
        responders = rng.integers(0, n - 1, size=batch)
        responders = responders + (responders >= initiators)
        for offset in range(batch):
            i = initiators[offset]
            j = responders[offset]
            u = states[i]
            v = states[j]
            new_u = table[u, v, 0]
            new_v = table[u, v, 1]
            if new_u != u:
                states[i] = new_u
                counts[u] -= 1
                counts[new_u] += 1
            if new_v != v:
                states[j] = new_v
                counts[v] -= 1
                counts[new_v] += 1
        done += batch
    return counts


def seed_igt_loop(types, indices, counts, k, steps, rng):
    """The seed ``IGTSimulation.run`` fast path (per-interaction, NumPy)."""
    n = types.size
    block = 65536
    done = 0
    while done < steps:
        batch = min(block, steps - done)
        first = rng.integers(0, n, size=batch)
        second = rng.integers(0, n - 1, size=batch)
        second = second + (second >= first)
        for offset in range(batch):
            i = first[offset]
            if types[i] == AgentType.GTFT:
                j = second[offset]
                partner = types[j]
                old = indices[i]
                if partner == AgentType.AD:
                    new = old - 1 if old > 0 else old
                else:
                    new = old + 1 if old < k - 1 else old
                if new != old:
                    indices[i] = new
                    counts[old] -= 1
                    counts[new] += 1
        done += batch
    return counts


def timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def main() -> None:
    results = []

    def record(workload, backend, n, steps, seconds, baseline=None):
        entry = {
            "workload": workload,
            "backend": backend,
            "n": n,
            "interactions": steps,
            "seconds": round(seconds, 4),
            "interactions_per_sec": round(steps / seconds),
        }
        if baseline is not None:
            entry["speedup_vs_seed_loop"] = round(steps / seconds / baseline,
                                                  2)
        results.append(entry)
        per_sec = steps / seconds
        extra = (f"  ({entry['speedup_vs_seed_loop']}x seed)"
                 if baseline is not None else "")
        print(f"{workload:>9} {backend:>10}  n=10^{len(str(n)) - 1}  "
              f"{per_sec:>12,.0f}/s{extra}")
        return per_sec

    steps = 1_000_000
    for n in (1000, 100_000, 10_000_000):
        # --- k-IGT workload ------------------------------------------
        model = igt_model(GRID.k)
        states = igt_states(n)
        if n <= 100_000:  # the seed loop is too slow beyond this
            types = np.empty(n, dtype=np.int64)
            types[:n // 2] = AgentType.GTFT
            types[n // 2:n // 2 + (3 * n) // 10] = AgentType.AC
            types[n // 2 + (3 * n) // 10:] = AgentType.AD
            indices = np.where(states < GRID.k, states, 0)
            counts = np.bincount(indices[types == AgentType.GTFT],
                                 minlength=GRID.k).astype(np.int64)
            rng = np.random.default_rng(0)
            baseline = steps / timed(
                lambda: seed_igt_loop(types, indices, counts, GRID.k, steps,
                                      rng))
            record("igt", "seed-loop", n, steps, steps / baseline)
        else:
            baseline = None
        record("igt", "agent", n, steps,
               timed(lambda: AgentBackend(model, states, seed=1).run(steps)),
               baseline)
        start_counts = np.bincount(states, minlength=GRID.k + 2)
        record("igt", "count", n, steps,
               timed(lambda: CountBackend(model, start_counts,
                                          seed=1).run(steps)),
               baseline)

        # --- generic epidemic protocol -------------------------------
        model = protocol_model(EPIDEMIC)
        states = epidemic_states(n)
        if n <= 100_000:
            table = EPIDEMIC.transition_table()
            rng = np.random.default_rng(0)
            scratch = states.copy()
            baseline = steps / timed(
                lambda: seed_simulator_loop(scratch, table, steps, rng))
            record("epidemic", "seed-loop", n, steps, steps / baseline)
        else:
            baseline = None
        record("epidemic", "agent", n, steps,
               timed(lambda: AgentBackend(model, states, seed=1).run(steps)),
               baseline)
        start_counts = np.bincount(states, minlength=3)
        record("epidemic", "count", n, steps,
               timed(lambda: CountBackend(model, start_counts,
                                          seed=1).run(steps)),
               baseline)

    OUTPUT.write_text(json.dumps({"interactions_per_case": steps,
                                  "cases": results}, indent=2) + "\n")
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
