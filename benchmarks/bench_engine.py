"""Engine throughput benchmark — emits machine-readable BENCH_engine.json.

Measures interactions/second of the simulation engines across population
sizes ``n ∈ {10^3, 10^5, 10^7}`` on three workloads, and compares them
against faithful reimplementations of the *seed* (pre-engine)
per-interaction loops:

* ``igt`` — the paper's k-IGT dynamics (k = 8, the headline workload);
  seed baseline: the ``IGTSimulation`` fast-path loop.
* ``epidemic`` — a generic 3-state one-way protocol; seed baseline: the
  ``Simulator`` table loop.
* ``igt-observed`` — the E4/E13 mixing shape: the k-IGT count chain with
  an observation snapshot and a stop-predicate check every 2 500
  interactions; baseline: the PR 1 per-step-batch path (observation/stop
  cadences used to cap every count-backend batch, so ``check_stop_every``
  near 1 collapsed it to one-interaction batches — emulated here by
  single-step ``run`` calls).

Run with::

    PYTHONPATH=src python benchmarks/bench_engine.py

and commit the regenerated ``BENCH_engine.json`` (repo root) so later PRs
can track the performance trajectory.  ``--smoke`` runs a reduced matrix
(no seed loops, no ``n = 10^7``, fewer interactions) for CI, where
``scripts/check_bench_regression.py`` gates count-backend throughput
against the committed file; ``--output`` redirects the JSON.  Not
collected by pytest — this is a standalone timing script.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from bench_workloads import (  # noqa: E402
    EPIDEMIC,
    GRID,
    epidemic_states,
    igt_states,
)

from repro.core.igt import AgentType  # noqa: E402
from repro.engine import (  # noqa: E402
    AgentBackend,
    CountBackend,
    igt_model,
    protocol_model,
)

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"


# ----------------------------------------------------------------------
# Seed baselines: the pre-engine per-interaction loops, frozen.
# ----------------------------------------------------------------------
def seed_simulator_loop(states, table, steps, rng):
    """The seed ``Simulator.run`` inner loop (per-interaction, NumPy)."""
    n = states.size
    counts = np.bincount(states, minlength=table.shape[0]).astype(np.int64)
    block = 65536
    done = 0
    while done < steps:
        batch = min(block, steps - done)
        initiators = rng.integers(0, n, size=batch)
        responders = rng.integers(0, n - 1, size=batch)
        responders = responders + (responders >= initiators)
        for offset in range(batch):
            i = initiators[offset]
            j = responders[offset]
            u = states[i]
            v = states[j]
            new_u = table[u, v, 0]
            new_v = table[u, v, 1]
            if new_u != u:
                states[i] = new_u
                counts[u] -= 1
                counts[new_u] += 1
            if new_v != v:
                states[j] = new_v
                counts[v] -= 1
                counts[new_v] += 1
        done += batch
    return counts


def seed_igt_loop(types, indices, counts, k, steps, rng):
    """The seed ``IGTSimulation.run`` fast path (per-interaction, NumPy)."""
    n = types.size
    block = 65536
    done = 0
    while done < steps:
        batch = min(block, steps - done)
        first = rng.integers(0, n, size=batch)
        second = rng.integers(0, n - 1, size=batch)
        second = second + (second >= first)
        for offset in range(batch):
            i = first[offset]
            if types[i] == AgentType.GTFT:
                j = second[offset]
                partner = types[j]
                old = indices[i]
                if partner == AgentType.AD:
                    new = old - 1 if old > 0 else old
                else:
                    new = old + 1 if old < k - 1 else old
                if new != old:
                    indices[i] = new
                    counts[old] -= 1
                    counts[new] += 1
        done += batch
    return counts


def timed(fn, repeats: int = 1) -> float:
    """Wall time of ``fn()`` — the fastest of ``repeats`` fresh calls.

    Smoke mode shortens every case to a fraction of a second, where timer
    noise and CI-host jitter dominate a single sample; best-of-3 keeps the
    regression gate stable without lengthening the runs.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


#: Observation / stop-check cadence of the observed mixing workload.
OBSERVE_EVERY = 2500


def perstep_observed_run(model, counts, steps, stop_when, seed) -> None:
    """The PR 1 per-step-batch path for an observed/checked count run.

    Before cross-boundary batching, ``check_stop_every=1`` capped every
    birthday batch at a single interaction and evaluated the predicate
    after each one; single-step ``run`` calls with an external check
    reproduce exactly that work profile.
    """
    backend = CountBackend(model, counts, seed=seed)
    for _ in range(steps):
        backend.run(1)
        if stop_when(backend.counts_live):
            break


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=("reduced CI matrix: no seed-loop baselines, no n=10^7, "
              "fewer interactions per case"))
    parser.add_argument(
        "--output", type=pathlib.Path, default=OUTPUT,
        help=f"output JSON path (default {OUTPUT})")
    args = parser.parse_args(argv)

    results = []

    def record(workload, backend, n, steps, seconds, baseline=None,
               perstep_baseline=None):
        entry = {
            "workload": workload,
            "backend": backend,
            "n": n,
            "interactions": steps,
            "seconds": round(seconds, 4),
            "interactions_per_sec": round(steps / seconds),
        }
        if baseline is not None:
            entry["speedup_vs_seed_loop"] = round(steps / seconds / baseline,
                                                  2)
        if perstep_baseline is not None:
            entry["speedup_vs_perstep"] = round(
                steps / seconds / perstep_baseline, 2)
        results.append(entry)
        per_sec = steps / seconds
        extra = ""
        if baseline is not None:
            extra = f"  ({entry['speedup_vs_seed_loop']}x seed)"
        elif perstep_baseline is not None:
            extra = f"  ({entry['speedup_vs_perstep']}x per-step)"
        print(f"{workload:>12} {backend:>13}  n=10^{len(str(n)) - 1}  "
              f"{per_sec:>12,.0f}/s{extra}")
        return per_sec

    steps = 200_000 if args.smoke else 1_000_000
    perstep_steps = 20_000 if args.smoke else 50_000
    repeats = 3 if args.smoke else 1
    population_sizes = ((1000, 100_000) if args.smoke
                        else (1000, 100_000, 10_000_000))
    with_seed_loops = not args.smoke
    for n in population_sizes:
        # --- k-IGT workload ------------------------------------------
        model = igt_model(GRID.k)
        states = igt_states(n)
        if with_seed_loops and n <= 100_000:  # seed loop too slow beyond
            types = np.empty(n, dtype=np.int64)
            types[:n // 2] = AgentType.GTFT
            types[n // 2:n // 2 + (3 * n) // 10] = AgentType.AC
            types[n // 2 + (3 * n) // 10:] = AgentType.AD
            indices = np.where(states < GRID.k, states, 0)
            counts = np.bincount(indices[types == AgentType.GTFT],
                                 minlength=GRID.k).astype(np.int64)
            rng = np.random.default_rng(0)
            baseline = steps / timed(
                lambda: seed_igt_loop(types, indices, counts, GRID.k, steps,
                                      rng))
            record("igt", "seed-loop", n, steps, steps / baseline)
        else:
            baseline = None
        record("igt", "agent", n, steps,
               timed(lambda: AgentBackend(model, states, seed=1).run(steps),
                     repeats),
               baseline)
        start_counts = np.bincount(states, minlength=GRID.k + 2)
        record("igt", "count", n, steps,
               timed(lambda: CountBackend(model, start_counts,
                                          seed=1).run(steps), repeats),
               baseline)

        # --- observed mixing workload (E4/E13 shape) -----------------
        model = igt_model(GRID.k)
        start_counts = np.bincount(igt_states(n), minlength=GRID.k + 2)
        m = int(start_counts[:GRID.k].sum())
        index_vector = np.arange(GRID.k)
        unreachable = (GRID.k - 1) * m  # all GTFT at the top index

        def observed_stop(counts):
            return float(index_vector @ counts[:GRID.k]) >= unreachable

        perstep = perstep_steps / timed(
            lambda: perstep_observed_run(model, start_counts, perstep_steps,
                                         observed_stop, seed=1), repeats)
        record("igt-observed", "count-perstep", n, perstep_steps,
               perstep_steps / perstep)
        record("igt-observed", "count", n, steps,
               timed(lambda: CountBackend(model, start_counts, seed=1).run(
                   steps, stop_when=observed_stop,
                   observe_every=OBSERVE_EVERY,
                   check_stop_every=OBSERVE_EVERY), repeats),
               perstep_baseline=perstep)

        # --- generic epidemic protocol -------------------------------
        model = protocol_model(EPIDEMIC)
        states = epidemic_states(n)
        if with_seed_loops and n <= 100_000:
            table = EPIDEMIC.transition_table()
            rng = np.random.default_rng(0)
            scratch = states.copy()
            baseline = steps / timed(
                lambda: seed_simulator_loop(scratch, table, steps, rng))
            record("epidemic", "seed-loop", n, steps, steps / baseline)
        else:
            baseline = None
        record("epidemic", "agent", n, steps,
               timed(lambda: AgentBackend(model, states, seed=1).run(steps),
                     repeats),
               baseline)
        start_counts = np.bincount(states, minlength=3)
        record("epidemic", "count", n, steps,
               timed(lambda: CountBackend(model, start_counts,
                                          seed=1).run(steps), repeats),
               baseline)

    args.output.write_text(
        json.dumps({"interactions_per_case": steps,
                    "mode": "smoke" if args.smoke else "full",
                    "cases": results}, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
