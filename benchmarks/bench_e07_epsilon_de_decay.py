"""Benchmark E7 — Theorem 2.9 (epsilon-DE, epsilon = O(1/k)).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E7.txt) and asserts its shape checks.
"""


def test_e7_epsilon_de_decay(experiment_runner):
    experiment_runner("E7")
