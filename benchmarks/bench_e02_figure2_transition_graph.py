"""Benchmark E2 — Figure 2 ((3,a,b,m)-Ehrenfest transition graph).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E2.txt) and asserts its shape checks.
"""


def test_e2_figure2_transition_graph(experiment_runner):
    experiment_runner("E2")
