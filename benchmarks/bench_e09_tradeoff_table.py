"""Benchmark E9 — Sections 2.4-2.5 (time/space/approximation trade-off).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E9.txt) and asserts its shape checks.
"""


def test_e9_tradeoff_table(experiment_runner):
    experiment_runner("E9")
