"""Shared helpers for the benchmark harness.

Each experiment benchmark runs its registered experiment once (timed by
pytest-benchmark), prints the regenerated table (visible with ``-s``), and
writes it to ``benchmarks/results/<id>.txt`` so the tables survive stdout
capture.  Every benchmark also asserts the experiment's shape checks, so
``pytest benchmarks/ --benchmark-only`` doubles as a full reproduction run.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def experiment_runner(benchmark):
    """Run an experiment under the benchmark timer and persist its report."""

    def run(experiment_id: str, fast: bool = True, seed: int = 12345):
        from repro.experiments import run_experiment

        report = benchmark.pedantic(
            run_experiment, args=(experiment_id,),
            kwargs={"fast": fast, "seed": seed}, rounds=1, iterations=1)
        RESULTS_DIR.mkdir(exist_ok=True)
        text = report.render()
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")
        print()
        print(text)
        assert report.all_checks_pass, (
            f"{experiment_id} checks failed:\n{text}")
        return report

    return run
