"""Benchmark E13 — Remark 2.6 (cutoff profiles).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E13.txt) and asserts its shape checks.
"""


def test_e13_cutoff_profile(experiment_runner):
    experiment_runner("E13")
