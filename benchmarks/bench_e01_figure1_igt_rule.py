"""Benchmark E1 — Figure 1 (k-IGT update rule, k=6).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E1.txt) and asserts its shape checks.
"""


def test_e1_figure1_igt_rule(experiment_runner):
    experiment_runner("E1")
