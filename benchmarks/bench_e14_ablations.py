"""Benchmark E14 — Ablations (action rule, strict rule, noise, other games).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E14.txt) and asserts its shape checks.
"""


def test_e14_ablations(experiment_runner):
    experiment_runner("E14")
