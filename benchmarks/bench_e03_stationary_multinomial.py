"""Benchmark E3 — Theorem 2.4 (multinomial stationary distributions).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E3.txt) and asserts its shape checks.
"""


def test_e3_stationary_multinomial(experiment_runner):
    experiment_runner("E3")
