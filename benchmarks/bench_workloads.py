"""Shared benchmark workload definitions.

Both the pytest-benchmark cases (``bench_micro_substrate.py``) and the
standalone throughput script (``bench_engine.py``) measure the same two
workloads; defining them once keeps the numbers comparable across the two
harnesses.  Importable from either context: pytest inserts this directory
on ``sys.path`` when collecting the bench files, and running
``python benchmarks/bench_engine.py`` makes it ``sys.path[0]``.
"""

import numpy as np

from repro.core.igt import GenerosityGrid
from repro.population.protocol import TransitionFunctionProtocol

#: The paper's headline workload: k-IGT on a k = 8 generosity grid.
GRID = GenerosityGrid(k=8, g_max=0.6)

#: Generic 3-state one-way protocol (epidemic of the maximum).
EPIDEMIC = TransitionFunctionProtocol(
    n_states=3, fn=lambda u, v: (max(u, v), v))


def igt_states(n: int) -> np.ndarray:
    """k-IGT agent states over ``{g_1..g_8, AC, AD}``.

    Half the population is GTFT at the bottom grid index, 30% AC, the
    rest AD — the same composition in every engine benchmark.
    """
    k = GRID.k
    states = np.empty(n, dtype=np.int64)
    states[:n // 2] = 0
    states[n // 2:n // 2 + (3 * n) // 10] = k
    states[n // 2 + (3 * n) // 10:] = k + 1
    return states


def igt_counts(n: int) -> np.ndarray:
    """The count-vector view of :func:`igt_states`."""
    return np.bincount(igt_states(n), minlength=GRID.k + 2)


def epidemic_states(n: int) -> np.ndarray:
    """Epidemic population: a handful of maximal-state seeds."""
    states = np.zeros(n, dtype=np.int64)
    states[:max(n // 2000, 1)] = 2
    return states
