"""Benchmark E12 — Corollary C.1 (generosity lower bound).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E12.txt) and asserts its shape checks.
"""


def test_e12_generosity_bound(experiment_runner):
    experiment_runner("E12")
