"""Benchmark E16 — extension: ZD strategies and the tournament landscape.

Regenerates the tournament/ZD table (written to benchmarks/results/E16.txt)
and asserts its shape checks.
"""


def test_e16_zd_tournament(experiment_runner):
    experiment_runner("E16")
