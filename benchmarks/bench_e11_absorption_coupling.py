"""Benchmark E11 — Prop. A.7 / Lemma A.8 (absorption and coupling).

Regenerates the paper artifact as a theory-vs-measured table (written to
benchmarks/results/E11.txt) and asserts its shape checks.
"""


def test_e11_absorption_coupling(experiment_runner):
    experiment_runner("E11")
