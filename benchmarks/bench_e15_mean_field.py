"""Benchmark E15 — extension: mean-field flow of the k-IGT dynamics.

Regenerates the agent-level vs mean-field comparison table (written to
benchmarks/results/E15.txt) and asserts its shape checks.
"""


def test_e15_mean_field(experiment_runner):
    experiment_runner("E15")
