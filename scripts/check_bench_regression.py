"""Gate engine throughput against a committed benchmark baseline.

Compares a freshly generated ``BENCH_engine.json`` (typically from
``benchmarks/bench_engine.py --smoke`` in CI) against the baseline file
committed at the repo root.  Cases are matched on
``(workload, backend, n)`` and the ``"count"`` and ``"agent"`` entries
are gated — they carry the engine's performance claims across every
workload (including the ``igt-observed`` / ``igt-action`` count cases,
the ``igt-weighted`` heterogeneous-activity cases on both backends,
the ``igt-topology`` graph-restricted cases on both backends, and
the ``logit`` / ``imitation`` generic-model vectorized cases);
seed-loop, ``agent-seq``, and per-step entries are baselines by
construction, and ``auto`` rows duplicate whichever gated case the
dispatcher resolved to.  A case fails when its throughput drops below
``baseline / factor``; the default factor 2 absorbs the gap between CI
runners and the machine that committed the baseline while still
catching real regressions (the work this guards delivered 5x-600x).

Usage::

    python scripts/check_bench_regression.py CURRENT BASELINE [--factor F]

Exits 1 on any regression (or when the files share no comparable cases,
which would make the gate vacuous).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

GATED_BACKENDS = ("agent", "count")

#: Cases that must be present in BOTH files for the gate to pass at all
#: — the headline performance claims whose silent disappearance from
#: either matrix would otherwise un-gate them.  The weighted pair sits
#: at the proxy ceiling (n = 10^6), the largest size the smoke matrix
#: measures; the topology pair sits at n = 10^5, the largest size its
#: smoke matrix shares with the full run.
REQUIRED_CASES = (
    ("igt-weighted", "agent", 1_000_000),
    ("igt-weighted", "count", 1_000_000),
    ("igt-topology", "agent", 100_000),
    ("igt-topology", "count", 100_000),
)


def load_cases(path: pathlib.Path) -> dict:
    """Map ``(workload, backend, n) -> interactions_per_sec`` of a file."""
    payload = json.loads(path.read_text())
    return {
        (case["workload"], case["backend"], case["n"]): case[
            "interactions_per_sec"
        ]
        for case in payload["cases"]
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="allowed slowdown factor before failing (default 2.0)",
    )
    args = parser.parse_args(argv)

    current = load_cases(args.current)
    baseline = load_cases(args.baseline)
    compared = 0
    regressions = 0
    for key in sorted(current):
        workload, backend, n = key
        if backend not in GATED_BACKENDS or key not in baseline:
            continue
        compared += 1
        floor = baseline[key] / args.factor
        verdict = "ok"
        if current[key] < floor:
            verdict = f"REGRESSION (floor {floor:,.0f}/s)"
            regressions += 1
        print(
            f"{workload:>14} {backend:>8} n={n:<10} "
            f"baseline {baseline[key]:>12,}/s  current "
            f"{current[key]:>12,}/s  {verdict}"
        )
    if compared == 0:
        print("no comparable gated cases; the gate would be vacuous")
        return 1
    missing = [key for key in REQUIRED_CASES
               if key not in current or key not in baseline]
    if missing:
        for workload, backend, n in missing:
            print(f"required case missing: {workload}/{backend} n={n}")
        return 1
    if regressions:
        print(f"{regressions}/{compared} gated case(s) regressed")
        return 1
    print(f"all {compared} gated case(s) within {args.factor}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
