"""Multi-process chaos smoke: kill things mid-sweep, resume, byte-compare.

The crash-safety contract, exercised end to end with real SIGKILLs:

1. **Baseline** — ``repro sweep`` over a small E4 grid, records to
   JSONL.  E4's relaxation runs several snapshot segments at this
   size, so every task genuinely checkpoints.
2. **Local crash, twice** — the same sweep with ``--cache``/
   ``--resume`` and injected faults
   (:mod:`repro.testing.faults`): first
   ``snapshot.post-save:3:kill`` SIGKILLs the executor mid-task right
   after a checkpoint lands (nothing cached, checkpoints on disk),
   then the rerun resumes that task from its snapshot and dies again
   via ``executor.post-cache:2:kill`` — after exactly two cells were
   persisted to the cache.
3. **Local resume** — the third run must finish, serve both pre-crash
   cells from the cache (zero re-execution), execute the rest, clear
   the snapshot directory, and produce records **byte-identical** to
   the baseline once provenance (``seconds``/``from_cache``/
   ``source``/``worker``) is stripped.
4. **Streamed trajectory kill** — a ``repro simulate`` run streaming
   its trajectory to a JSONL observer sink with ``--snapshots`` is
   SIGKILLed right after a checkpoint lands, leaving a partial stream
   file on disk.  Rerunning the same command resumes from the
   snapshot, truncates the stream back to the checkpointed position,
   and finishes — the resulting JSONL must be **byte-identical** to an
   uninterrupted run's, and the snapshot directory cleared.
5. **Fabric crash** — a coordinator plus two workers; the victim
   worker carries the same injected fault, posts checkpoints to
   ``/snapshot``, and SIGKILLs itself mid-task.  The replacement
   worker receives the latest checkpoint with the re-leased task and
   continues the trajectory.
6. **Fabric verdicts** — the remote sweep finishes despite the murder
   and its stripped records equal the baseline; the coordinator's
   snapshot store is empty once results land; the survivor and the
   coordinator drain with exit code 0.

Usage::

    python scripts/run_chaos_smoke.py [--keep DIR]

Exits non-zero (with a diagnostic) on the first violated contract.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: 4 tasks, each relaxing for several snapshot segments (n = 2e5 puts
#: the birthday run well past one 8-check segment) — long enough that a
#: mid-task kill leaves a meaningful checkpoint, short enough for CI.
GRID_ARGUMENTS = ["E4", "--grid", "n=2e5", "--grid", "seed=0:3:4"]

#: Record fields that legitimately differ between runs.
PROVENANCE_FIELDS = ("seconds", "from_cache", "source", "worker")

#: Fault specs injected into the processes that must die: SIGKILL self
#: right after the Nth snapshot save (mid-task) or the Nth cache write
#: (between tasks).
MID_TASK_FAULT = "snapshot.post-save:3:kill"
POST_CACHE_FAULT = "executor.post-cache:2:kill"
WORKER_FAULT = "snapshot.post-save:2:kill"
STREAM_FAULT = "snapshot.post-save:2:kill"

#: The streamed-trajectory scenario: big enough that the run spans
#: several snapshot segments (so the kill lands mid-stream with rows
#: both before and after the last checkpoint), small enough for CI.
def stream_arguments(stream_path: pathlib.Path,
                     snapshots_dir: pathlib.Path) -> list[str]:
    return ["simulate", "--n", "20000", "--k", "3", "--steps", "240000",
            "--backend", "count", "--seed", "11",
            "--observe-every", "5000",
            "--observe", f"jsonl:{stream_path}",
            "--snapshots", str(snapshots_dir)]


def repro(*arguments: str) -> list[str]:
    return [sys.executable, "-m", "repro.cli", *arguments]


def child_environment(faults: str | None = None) -> dict:
    environment = dict(os.environ)
    source = str(REPO_ROOT / "src")
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        f"{source}{os.pathsep}{existing}" if existing else source
    )
    environment.pop("REPRO_FAULTS", None)
    if faults is not None:
        environment["REPRO_FAULTS"] = faults
    return environment


def read_until(stream, needle: str, deadline: float) -> str:
    """Echo ``stream`` lines until one contains ``needle``; return it."""
    while time.monotonic() < deadline:
        line = stream.readline()
        if not line:
            raise SystemExit(
                f"process stream closed before {needle!r} appeared"
            )
        print(f"    | {line.rstrip()}", flush=True)
        if needle in line:
            return line
    raise SystemExit(f"timed out waiting for {needle!r}")


def load_records(path: pathlib.Path) -> list[dict]:
    return [
        json.loads(line) for line in path.read_text().splitlines() if line
    ]


def stripped(records: list[dict]) -> list[dict]:
    return [
        {
            name: value
            for name, value in record.items()
            if name not in PROVENANCE_FIELDS
        }
        for record in records
    ]


def snapshot_files(root: pathlib.Path) -> list[str]:
    if not root.exists():
        return []
    return sorted(p.name for p in root.iterdir() if p.suffix != ".tmp")


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"CHAOS SMOKE FAILED: {message}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--keep",
        metavar="DIR",
        default=None,
        help="work under DIR and keep it (default: a temp dir, removed)",
    )
    args = parser.parse_args(argv)

    if args.keep is not None:
        work = pathlib.Path(args.keep)
        work.mkdir(parents=True, exist_ok=True)
    else:
        work = pathlib.Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    children: list[subprocess.Popen] = []

    def spawn(
        *arguments: str, faults: str | None = None, pipe: bool = False
    ) -> subprocess.Popen:
        process = subprocess.Popen(
            repro(*arguments),
            cwd=REPO_ROOT,
            env=child_environment(faults),
            stdout=subprocess.PIPE if pipe else None,
            stderr=subprocess.STDOUT if pipe else None,
            text=pipe or None,
        )
        children.append(process)
        return process

    try:
        print("[1/6] baseline sweep", flush=True)
        baseline_path = work / "baseline.jsonl"
        subprocess.run(
            repro("sweep", *GRID_ARGUMENTS, "--output", str(baseline_path)),
            cwd=REPO_ROOT,
            env=child_environment(),
            check=True,
        )
        baseline = load_records(baseline_path)
        check(len(baseline) == 4, f"expected 4 baseline records, "
                                  f"got {len(baseline)}")

        print(f"[2/6] resumable sweep dies mid-task ({MID_TASK_FAULT}), "
              f"its rerun dies between tasks ({POST_CACHE_FAULT})",
              flush=True)
        cache_dir = work / "cache"
        snapshots_dir = cache_dir / "snapshots"
        resumable = ["sweep", *GRID_ARGUMENTS, "--cache", str(cache_dir),
                     "--resume"]

        def cached_cells() -> int:
            return len(list(cache_dir.glob("*/*.json")))

        crashed = subprocess.run(
            repro(*resumable),
            cwd=REPO_ROOT,
            env=child_environment(MID_TASK_FAULT),
        )
        check(crashed.returncode != 0,
              "fault-injected sweep exited 0 — the kill never fired")
        leftovers = snapshot_files(snapshots_dir)
        check(len(leftovers) > 0,
              "the killed sweep left no snapshot behind")
        check(cached_cells() == 0,
              "the mid-task kill fired after a cell completed")
        print(f"    died mid-task (exit {crashed.returncode}) leaving "
              f"checkpoints {leftovers}", flush=True)

        crashed_again = subprocess.run(
            repro(*resumable),
            cwd=REPO_ROOT,
            env=child_environment(POST_CACHE_FAULT),
        )
        check(crashed_again.returncode != 0,
              "second fault-injected sweep exited 0 — the kill never "
              "fired")
        check(cached_cells() == 2,
              f"expected exactly 2 cached cells after the post-cache "
              f"kill, found {cached_cells()} — completed cells must be "
              f"persisted the moment they finish")
        print("    resumed the interrupted task, cached 2 cells, died "
              "again", flush=True)

        print("[3/6] third run must finish: cached cells stay cached, "
              "records match the baseline", flush=True)
        resumed_path = work / "resumed.jsonl"
        resumed = subprocess.run(
            repro(*resumable, "--output", str(resumed_path)),
            cwd=REPO_ROOT,
            env=child_environment(),
        )
        check(resumed.returncode == 0, "resumed sweep failed")
        records = load_records(resumed_path)
        check(stripped(records) == stripped(baseline),
              "resumed records differ from the baseline "
              "(beyond provenance)")
        from_cache = [r for r in records if r["source"] == "cache"]
        check(len(from_cache) == 2,
              f"2 cell(s) were cached before the kill but "
              f"{len(from_cache)} came from cache on resume — completed "
              f"cells must never re-execute")
        check(snapshot_files(snapshots_dir) == [],
              f"completed tasks left snapshots: "
              f"{snapshot_files(snapshots_dir)}")
        print(f"    byte-identical; {len(from_cache)} cached / "
              f"{len(records) - len(from_cache)} executed, snapshots "
              f"cleared", flush=True)

        print(f"[4/6] streamed simulate killed mid-trajectory "
              f"({STREAM_FAULT}); rerun resumes byte-identically",
              flush=True)
        reference_stream = work / "stream-reference.jsonl"
        subprocess.run(
            repro(*stream_arguments(reference_stream,
                                    work / "stream-snaps-ref")),
            cwd=REPO_ROOT,
            env=child_environment(),
            check=True,
        )
        victim_stream = work / "stream-victim.jsonl"
        victim_snaps = work / "stream-snaps"
        stream_args = stream_arguments(victim_stream, victim_snaps)
        killed = subprocess.run(
            repro(*stream_args),
            cwd=REPO_ROOT,
            env=child_environment(STREAM_FAULT),
        )
        check(killed.returncode != 0,
              "fault-injected simulate exited 0 — the kill never fired")
        check(victim_stream.exists() and victim_stream.stat().st_size > 0,
              "the killed run streamed nothing before dying")
        check(victim_stream.read_bytes()
              != reference_stream.read_bytes(),
              "the killed run's stream is already complete — the kill "
              "fired too late to test resumption")
        check(len(snapshot_files(victim_snaps)) > 0,
              "the killed streaming run left no snapshot behind")
        partial = victim_stream.stat().st_size
        print(f"    died mid-trajectory with {partial} bytes streamed",
              flush=True)
        resumed_stream = subprocess.run(
            repro(*stream_args),
            cwd=REPO_ROOT,
            env=child_environment(),
        )
        check(resumed_stream.returncode == 0,
              "resumed streaming simulate failed")
        check(victim_stream.read_bytes()
              == reference_stream.read_bytes(),
              "resumed stream differs from the uninterrupted run — "
              "crash-equals-uninterrupted violated for JSONL streams")
        check(snapshot_files(victim_snaps) == [],
              f"completed streaming run left snapshots: "
              f"{snapshot_files(victim_snaps)}")
        print(f"    resumed: stream byte-identical "
              f"({victim_stream.stat().st_size} bytes), snapshots "
              f"cleared", flush=True)

        print("[5/6] fabric: victim worker dies mid-task "
              f"({WORKER_FAULT}); replacement continues", flush=True)
        coordinator = spawn(
            "serve",
            "--cache", str(work / "shared-cache"),
            "--checkpoint", str(work / "fabric-checkpoint.json"),
            "--port", "0",
            "--lease-ttl", "2",
            pipe=True,
        )
        listening = read_until(
            coordinator.stdout,
            "fabric coordinator listening on ",
            time.monotonic() + 30,
        )
        url = listening.rsplit(" ", 1)[-1].strip()
        print(f"    coordinator at {url}", flush=True)

        victim = spawn(
            "worker", "--remote", url, "--id", "victim", "--poll", "0.1",
            faults=WORKER_FAULT,
        )
        remote_path = work / "remote.jsonl"
        sweep = spawn(
            "sweep", *GRID_ARGUMENTS, "--remote", url,
            "--output", str(remote_path),
        )
        check(victim.wait(timeout=120) != 0,
              "victim worker exited cleanly — the kill never fired")
        print("    victim worker died mid-task after posting a "
              "checkpoint", flush=True)
        fabric_snapshots = snapshot_files(work / "shared-cache" /
                                          "snapshots")
        check(len(fabric_snapshots) > 0,
              "no checkpoint reached the coordinator before the kill")
        survivor = spawn(
            "worker", "--remote", url, "--id", "survivor", "--poll", "0.1",
            "--max-idle", "5",
        )

        print("[6/6] remote sweep must finish and match the baseline",
              flush=True)
        check(sweep.wait(timeout=300) == 0,
              "remote sweep did not complete after the worker kill")
        remote_records = load_records(remote_path)
        check(stripped(remote_records) == stripped(baseline),
              "fabric records differ from the baseline "
              "(beyond provenance)")
        check(snapshot_files(work / "shared-cache" / "snapshots") == [],
              "the coordinator kept snapshots for completed tasks")
        subprocess.run(
            repro("sweep", *GRID_ARGUMENTS, "--remote", url, "--shutdown"),
            cwd=REPO_ROOT,
            env=child_environment(),
            check=True,
        )
        check(survivor.wait(timeout=30) == 0,
              f"surviving worker exited {survivor.returncode}")
        coordinator_exit = coordinator.wait(timeout=30)
        for line in coordinator.stdout:
            print(f"    | {line.rstrip()}", flush=True)
        check(coordinator_exit == 0,
              f"coordinator exited {coordinator_exit}")

        print("chaos smoke passed: local kill+resume byte-identity, "
              "zero re-execution, streamed-trajectory byte-identity, "
              "fabric mid-task continuation, clean drain")
        return 0
    finally:
        for process in children:
            if process.poll() is None:
                process.kill()
        if args.keep is None:
            shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
