"""Execute every ``bash`` command block in docs/TUTORIAL.md.

The tutorial promises that its command blocks are copy-pasteable; this
script is what makes the promise enforceable.  It extracts every fenced
code block whose info string is exactly ``bash`` (blocks tagged
``bash skip-smoke`` are documented-but-not-run, for paper-scale
commands that take minutes) and runs each command line in order,
stopping at the first failure.

Lines are executed through the shell so the tutorial can use pipes,
redirections, and ``rm -rf`` cleanup exactly as a reader would type
them; backslash continuations are joined and ``#`` comment lines are
skipped.  Runs from the repository root with ``PYTHONPATH=src``
prepended, so neither an installed package nor a console script is
required.

Usage::

    python scripts/run_tutorial_smoke.py [--doc docs/TUTORIAL.md]

Exits non-zero on the first failing command (its output goes straight
to the terminal) or when the document yields no commands at all, which
would make the smoke vacuous.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import shlex
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Fenced code blocks, keeping the info string (``bash``,
#: ``bash skip-smoke``, ``text``, ...) for filtering.
_FENCE = re.compile(r"^```([^\n`]*)\n(.*?)^```\s*$",
                    re.MULTILINE | re.DOTALL)

#: A ``repro`` invocation, possibly behind leading ``VAR=value``
#: environment assignments (``REPRO_FAULTS="..." repro sweep ...``).
_REPRO_COMMAND = re.compile(
    r"^(?:[A-Za-z_]\w*=(?:\"[^\"]*\"|'[^']*'|\S*)\s+)*(repro)\s"
)


def extract_commands(markdown: str) -> list[str]:
    """Command lines of every runnable ``bash`` block, in order."""
    commands: list[str] = []
    for match in _FENCE.finditer(markdown):
        if match.group(1).strip() != "bash":
            continue
        pending = ""
        for raw in match.group(2).splitlines():
            line = pending + raw.strip()
            if line.endswith("\\"):
                pending = line[:-1] + " "
                continue
            pending = ""
            if line and not line.startswith("#"):
                commands.append(line)
    return commands


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--doc", type=pathlib.Path,
                        default=REPO_ROOT / "docs" / "TUTORIAL.md",
                        help="markdown file whose bash blocks to run")
    args = parser.parse_args(argv)

    commands = extract_commands(args.doc.read_text(encoding="utf-8"))
    if not commands:
        print(f"no runnable bash blocks found in {args.doc} — "
              "the smoke would be vacuous")
        return 1

    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else
                         str(REPO_ROOT / "src"))
    # The tutorial writes ``repro ...``; resolve it to the module CLI so
    # the smoke also works without the console script on PATH.
    repro = f"{shlex.quote(sys.executable)} -m repro.cli"

    for index, command in enumerate(commands, start=1):
        invocation = _REPRO_COMMAND.match(command)
        resolved = (
            command[: invocation.start(1)]
            + repro
            + command[invocation.end(1):]
            if invocation
            else command
        )
        print(f"[{index}/{len(commands)}] $ {command}", flush=True)
        started = time.monotonic()
        result = subprocess.run(resolved, shell=True, cwd=REPO_ROOT,
                                env=env)
        elapsed = time.monotonic() - started
        if result.returncode != 0:
            print(f"FAILED (exit {result.returncode}, {elapsed:.1f}s): "
                  f"{command}")
            return result.returncode
        print(f"    ok ({elapsed:.1f}s)", flush=True)

    print(f"all {len(commands)} tutorial commands passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
