"""Multi-process fault-injection smoke for the distributed sweep fabric.

The scenario CI runs on every push — the whole fabric as separate OS
processes, with a worker murdered mid-task:

1. **Local baseline** — ``repro sweep`` over a small E4 grid with
   ``--jobs 2``, records to JSONL.
2. **Coordinator** — ``repro serve`` on an ephemeral localhost port
   (URL parsed from its ``listening on`` line), short lease TTL so the
   kill recovers quickly, checkpoint enabled.
3. **Two workers** — ``repro worker --remote URL``; one is SIGKILLed
   right after it leases its first task (we watch its stdout for the
   ``leased`` line, so the kill is genuinely mid-task).
4. **Remote sweep** — ``repro sweep --remote URL`` over the same grid
   must finish despite the murder, and its records must be
   **byte-identical** to the local baseline once the provenance fields
   (``seconds``/``source``/``worker``/``from_cache``) are stripped.
5. **Resubmission** — a second ``repro sweep --remote`` must be served
   entirely from the coordinator's shared cache: every record carries
   ``"source": "cache"`` and no worker attribution.
6. **Drain** — ``--shutdown`` stops the coordinator; the surviving
   worker and the coordinator both exit 0.

Usage::

    python scripts/run_fabric_smoke.py [--keep DIR]

Exits non-zero (with a diagnostic) on the first violated contract.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The swept grid: 12 tasks of a few hundred ms each — long enough that
#: killing a worker mid-task is meaningful, short enough for CI.
GRID_ARGUMENTS = ["E4", "--grid", "n=2e5,3e5", "--grid", "seed=0:5:6"]

#: Record fields that legitimately differ between local and fabric runs.
PROVENANCE_FIELDS = ("seconds", "from_cache", "source", "worker")


def repro(*arguments: str) -> list[str]:
    return [sys.executable, "-m", "repro.cli", *arguments]


def child_environment() -> dict:
    environment = dict(os.environ)
    source = str(REPO_ROOT / "src")
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        f"{source}{os.pathsep}{existing}" if existing else source
    )
    return environment


def read_until(stream, needle: str, deadline: float) -> str:
    """Echo ``stream`` lines until one contains ``needle``; return it."""
    while time.monotonic() < deadline:
        line = stream.readline()
        if not line:
            raise SystemExit(
                f"process stream closed before {needle!r} appeared"
            )
        print(f"    | {line.rstrip()}", flush=True)
        if needle in line:
            return line
    raise SystemExit(f"timed out waiting for {needle!r}")


def load_records(path: pathlib.Path) -> list[dict]:
    return [
        json.loads(line) for line in path.read_text().splitlines() if line
    ]


def stripped(records: list[dict]) -> list[dict]:
    return [
        {
            name: value
            for name, value in record.items()
            if name not in PROVENANCE_FIELDS
        }
        for record in records
    ]


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FABRIC SMOKE FAILED: {message}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--keep",
        metavar="DIR",
        default=None,
        help="work under DIR and keep it (default: a temp dir, removed)",
    )
    args = parser.parse_args(argv)

    if args.keep is not None:
        work = pathlib.Path(args.keep)
        work.mkdir(parents=True, exist_ok=True)
    else:
        work = pathlib.Path(tempfile.mkdtemp(prefix="fabric-smoke-"))
    environment = child_environment()
    children: list[subprocess.Popen] = []

    def spawn(*arguments: str, pipe: bool = False) -> subprocess.Popen:
        process = subprocess.Popen(
            repro(*arguments),
            cwd=REPO_ROOT,
            env=environment,
            stdout=subprocess.PIPE if pipe else None,
            stderr=subprocess.STDOUT if pipe else None,
            text=pipe or None,
        )
        children.append(process)
        return process

    try:
        print("[1/6] local baseline sweep (--jobs 2)", flush=True)
        local_records_path = work / "local.jsonl"
        subprocess.run(
            repro(
                "sweep",
                *GRID_ARGUMENTS,
                "--jobs",
                "2",
                "--output",
                str(local_records_path),
            ),
            cwd=REPO_ROOT,
            env=environment,
            check=True,
        )

        print("[2/6] starting coordinator (ephemeral port)", flush=True)
        coordinator = spawn(
            "serve",
            "--cache",
            str(work / "shared-cache"),
            "--checkpoint",
            str(work / "fabric-checkpoint.json"),
            "--port",
            "0",
            "--lease-ttl",
            "2",
            pipe=True,
        )
        listening = read_until(
            coordinator.stdout,
            "fabric coordinator listening on ",
            time.monotonic() + 30,
        )
        url = listening.rsplit(" ", 1)[-1].strip()
        print(f"    coordinator at {url}", flush=True)

        print("[3/6] starting two workers; killing one mid-task", flush=True)
        victim = spawn(
            "worker", "--remote", url, "--id", "victim", "--poll", "0.1",
            pipe=True,
        )
        survivor = spawn(
            "worker", "--remote", url, "--id", "survivor", "--poll", "0.1",
        )

        remote_records_path = work / "remote.jsonl"
        sweep = spawn(
            "sweep",
            *GRID_ARGUMENTS,
            "--remote",
            url,
            "--output",
            str(remote_records_path),
        )
        # Wait for the victim to actually hold a lease, then murder it.
        read_until(victim.stdout, "leased", time.monotonic() + 60)
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=10)
        print("    victim worker SIGKILLed while holding a lease", flush=True)

        print("[4/6] remote sweep must finish despite the kill", flush=True)
        check(
            sweep.wait(timeout=300) == 0,
            "remote sweep did not complete after the worker kill",
        )
        local_records = load_records(local_records_path)
        remote_records = load_records(remote_records_path)
        check(
            len(remote_records) == len(local_records) > 0,
            f"record count mismatch: {len(remote_records)} remote "
            f"vs {len(local_records)} local",
        )
        check(
            stripped(remote_records) == stripped(local_records),
            "remote records differ from the local baseline "
            "(beyond provenance)",
        )
        executed = [r for r in remote_records if r["source"] == "executed"]
        check(
            len(executed) == len(remote_records),
            "first remote sweep should have executed every task",
        )
        check(
            all(r["worker"] for r in executed),
            "executed records must carry worker attribution",
        )
        print(
            f"    byte-identical: {len(remote_records)} records "
            f"(workers: {sorted({r['worker'] for r in executed})})",
            flush=True,
        )

        print("[5/6] resubmission must be served from cache", flush=True)
        cached_records_path = work / "remote-cached.jsonl"
        resweep = subprocess.run(
            repro(
                "sweep",
                *GRID_ARGUMENTS,
                "--remote",
                url,
                "--output",
                str(cached_records_path),
                "--shutdown",
            ),
            cwd=REPO_ROOT,
            env=environment,
        )
        check(resweep.returncode == 0, "cached resubmission sweep failed")
        cached_records = load_records(cached_records_path)
        re_executed = [
            r for r in cached_records if r["source"] != "cache"
        ]
        check(
            not re_executed,
            f"{len(re_executed)} task(s) re-executed on resubmission "
            f"(expected 0 — everything should come from the cache)",
        )
        check(
            all(r["worker"] is None for r in cached_records),
            "cache-served records must not carry worker attribution",
        )
        check(
            stripped(cached_records) == stripped(local_records),
            "cache-served records drifted from the baseline",
        )

        print("[6/6] draining: survivor and coordinator must exit 0")
        check(
            survivor.wait(timeout=30) == 0,
            f"surviving worker exited {survivor.returncode}",
        )
        coordinator_exit = coordinator.wait(timeout=30)
        for line in coordinator.stdout:
            print(f"    | {line.rstrip()}", flush=True)
        check(coordinator_exit == 0, f"coordinator exited {coordinator_exit}")

        print("fabric smoke passed: kill-recovery, byte-identity, "
              "cache-served resubmission, clean drain")
        return 0
    finally:
        for process in children:
            if process.poll() is None:
                process.kill()
        if args.keep is None:
            shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
